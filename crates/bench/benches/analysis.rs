//! Compile-time cost of the ADDS pipeline itself: parsing, summaries,
//! path-matrix analysis, and the strip-mine transformation.

use adds_core::{analyze_function, compile, Summaries};
use adds_lang::programs;
use adds_lang::types::check_source;
use criterion::{criterion_group, criterion_main, Criterion};

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis_pipeline");
    g.bench_function("parse_typecheck_barnes_hut", |b| {
        b.iter(|| check_source(programs::BARNES_HUT).unwrap());
    });
    g.bench_function("summaries_barnes_hut", |b| {
        let tp = check_source(programs::BARNES_HUT).unwrap();
        b.iter(|| Summaries::compute(&tp));
    });
    g.bench_function("path_matrix_bhl1", |b| {
        let tp = check_source(programs::BARNES_HUT).unwrap();
        let sums = Summaries::compute(&tp);
        b.iter(|| analyze_function(&tp, &sums, "bhl1").unwrap());
    });
    g.bench_function("path_matrix_insert_particle", |b| {
        let tp = check_source(programs::BARNES_HUT).unwrap();
        let sums = Summaries::compute(&tp);
        b.iter(|| analyze_function(&tp, &sums, "insert_particle").unwrap());
    });
    g.bench_function("full_compile_barnes_hut", |b| {
        b.iter(|| compile(programs::BARNES_HUT).unwrap());
    });
    g.bench_function("parallelize_barnes_hut", |b| {
        b.iter(|| adds_core::parallelize_program(programs::BARNES_HUT).unwrap());
    });
    g.finish();
}

fn scaling(c: &mut Criterion) {
    // Analysis cost as the analyzed loop nest grows.
    let mut g = c.benchmark_group("analysis_scaling");
    for vars in [2usize, 6, 12] {
        let mut body = String::new();
        let mut decls = String::new();
        for i in 0..vars {
            decls.push_str(&format!("var q{i}: L*;\n"));
            body.push_str(&format!("q{i} = p; "));
        }
        let src = format!(
            "type L [X] {{ int v; L *next is uniquely forward along X; }};
            procedure f(head: L*) {{
                var p: L*;
                {decls}
                p = head;
                while p <> NULL {{
                    {body}
                    p->v = p->v + 1;
                    p = p->next;
                }}
            }}"
        );
        let tp = check_source(&src).unwrap();
        let sums = Summaries::compute(&tp);
        g.bench_function(format!("live_vars_{vars}"), |b| {
            b.iter(|| analyze_function(&tp, &sums, "f").unwrap());
        });
    }
    g.finish();
}

/// P1 — analysis cost of the §2.1 baselines vs the paper's pipeline, on
/// the ladder programs. The baselines iterate storage-graph fixpoints;
/// ADDS+GPM pays for summaries + the path-matrix fixpoint. Shapes, not
/// absolutes, are the claim: all are trivially compile-time cheap.
fn prior_work(c: &mut Criterion) {
    use adds_klimit::{analyze_function as klimit_analyze, programs, Mode};
    let mut g = c.benchmark_group("prior_work_cost");
    for (name, src, func) in programs::ladder_programs() {
        let short: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let tp = check_source(src).unwrap();
        for mode in [Mode::Blob, Mode::KLimit(3), Mode::AllocSite] {
            g.bench_function(format!("{short}/{}", mode.name()), |b| {
                b.iter(|| klimit_analyze(&tp, func, mode).unwrap());
            });
        }
        let twin = programs::adds_twin(src);
        let ttp = check_source(&twin).unwrap();
        let sums = Summaries::compute(&ttp);
        g.bench_function(format!("{short}/adds_gpm"), |b| {
            b.iter(|| analyze_function(&ttp, &sums, func).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Bounded sampling: full-precision runs are unnecessary for the shape
    // claims and keep `cargo bench --workspace` under a few minutes.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = pipeline, scaling, prior_work
}
criterion_main!(benches);
