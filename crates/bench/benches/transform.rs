//! X1/X2 — the extension transformations: executed cost of unrolled and
//! software-pipelined list loops on the simulated machine, versus the
//! original.

use adds_core::transform::{pipeline::pipeline_loop, unroll::unroll_loop};
use adds_core::{check_function, compile};
use adds_lang::programs;
use adds_lang::types::check_source;
use adds_machine::{CostModel, Interp, MachineConfig, Value};
use criterion::{criterion_group, criterion_main, Criterion};

/// Interpret `scale` over an n-node list and return simulated cycles.
fn cycles_of(src: &str, n: usize) -> u64 {
    let tp = check_source(src).unwrap();
    let cfg = MachineConfig {
        pes: 1,
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let mut it = Interp::new(&tp, cfg);
    let mut head = Value::Null;
    for i in (0..n).rev() {
        let node = it.host_alloc("ListNode");
        it.host_store(node, "coef", 0, Value::Int(i as i64));
        it.host_store(node, "next", 0, head);
        head = Value::Ptr(node);
    }
    it.call("scale", &[head, Value::Int(3)]).unwrap();
    it.clock
}

fn variants() -> (String, String, String) {
    let c = compile(programs::LIST_SCALE_ADDS).unwrap();
    let an = c.analysis("scale").unwrap();
    let checks = check_function(&c.tp, &c.summaries, an, "scale");
    let pat = checks[0].pattern.clone().unwrap();
    let f = c.tp.program.func("scale").unwrap();

    let unrolled = unroll_loop(f, &pat, 4).unwrap();
    let pipelined = pipeline_loop(f, &checks[0], "q").unwrap();

    let mk = |fun: &adds_lang::ast::FunDecl| {
        let mut prog = c.tp.program.clone();
        *prog.funcs.iter_mut().find(|g| g.name == "scale").unwrap() = fun.clone();
        adds_lang::pretty::program(&prog)
    };
    (
        adds_lang::pretty::program(&c.tp.program),
        mk(&unrolled),
        mk(&pipelined),
    )
}

fn transform_exec(c: &mut Criterion) {
    let (orig, unrolled, pipelined) = variants();
    let n = 2_000;

    // Report simulated cycles once (they are deterministic).
    let co = cycles_of(&orig, n);
    let cu = cycles_of(&unrolled, n);
    let cp = cycles_of(&pipelined, n);
    println!("simulated cycles over {n} nodes: original={co} unrolled(4)={cu} pipelined={cp}");
    // On this machine model the transformations are cycle-NEUTRAL: stores
    // may not be speculative (§3.2 covers loads only), so every unrolled
    // step keeps its NULL guard, and an `if` condition charges exactly what
    // a `while` condition does. The value of unrolling/pipelining in the
    // paper's programme ([HG92], [HHN92]) is the scheduling freedom of the
    // restructured body, not abstract cycle count — the wall-clock groups
    // below measure the interpreter cost of each form.
    assert_eq!(cu, co, "guarded unrolling must be cycle-neutral");
    assert_eq!(cp, co, "software pipelining must be cycle-neutral");

    let mut g = c.benchmark_group("transform_exec");
    g.sample_size(10);
    g.bench_function("interp_original", |b| b.iter(|| cycles_of(&orig, 500)));
    g.bench_function("interp_unrolled4", |b| b.iter(|| cycles_of(&unrolled, 500)));
    g.bench_function("interp_pipelined", |b| {
        b.iter(|| cycles_of(&pipelined, 500))
    });
    g.finish();
}

fn transform_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_apply");
    g.bench_function("strip_mine_barnes_hut", |b| {
        b.iter(|| adds_core::parallelize_program(programs::BARNES_HUT).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Bounded sampling: full-precision runs are unnecessary for the shape
    // claims and keep `cargo bench --workspace` under a few minutes.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = transform_exec, transform_cost
}
criterion_main!(benches);
