//! B1 + E1-adjacent microbenchmarks: Barnes–Hut vs direct-sum crossover
//! (the §4.1 O(N log N) vs O(N²) claim) and sequential vs strip-parallel
//! force phases.

use adds_nbody::{gen, Octree, SimParams, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bh_vs_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("bh_vs_direct");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let params = SimParams {
            theta: 0.7,
            dt: 0.001,
            eps: 1e-3,
        };
        g.bench_with_input(BenchmarkId::new("barnes_hut", n), &n, |b, &n| {
            let mut sim = Simulation::new(gen::plummer(n, 1), params);
            b.iter(|| sim.step_sequential());
        });
        g.bench_with_input(BenchmarkId::new("direct_n2", n), &n, |b, &n| {
            let mut sim = Simulation::new(gen::plummer(n, 1), params);
            b.iter(|| sim.step_direct());
        });
    }
    g.finish();
}

fn seq_vs_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_vs_parallel_step");
    g.sample_size(10);
    let n = 2048;
    let params = SimParams {
        theta: 0.7,
        dt: 0.001,
        eps: 1e-3,
    };
    g.bench_function("seq", |b| {
        let mut sim = Simulation::new(gen::plummer(n, 1), params);
        b.iter(|| sim.step_sequential());
    });
    for threads in [4usize, 7] {
        g.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &t| {
            let mut sim = Simulation::new(gen::plummer(n, 1), params);
            b.iter(|| sim.step_parallel(t));
        });
    }
    g.finish();
}

fn tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for n in [256usize, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let plist = gen::plummer(n, 1);
            b.iter(|| Octree::build(&plist));
        });
    }
    g.finish();
}

/// W1 — the §4.2 aside: arrays-and-iteration O(N²) Water vs the pointer
/// tree-code, sequential cost and slice-parallel step cost.
fn water(c: &mut Criterion) {
    use adds_nbody::water::{lattice, WaterParams};
    let mut g = c.benchmark_group("water_arrays");
    for n in [128usize, 512] {
        g.bench_with_input(BenchmarkId::new("seq_step", n), &n, |b, &n| {
            let mut w = lattice(n, 7, WaterParams::default());
            w.run(1, 1); // prime forces
            b.iter(|| w.step_sequential());
        });
        g.bench_with_input(BenchmarkId::new("par4_step", n), &n, |b, &n| {
            let mut w = lattice(n, 7, WaterParams::default());
            w.run(1, 1);
            b.iter(|| w.step_parallel(4));
        });
        g.bench_with_input(BenchmarkId::new("newton3_step", n), &n, |b, &n| {
            let mut w = lattice(n, 7, WaterParams::default());
            w.run(1, 1);
            b.iter(|| w.step_sequential_newton3());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Bounded sampling: full-precision runs are unnecessary for the shape
    // claims and keep `cargo bench --workspace` under a few minutes.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bh_vs_direct, seq_vs_parallel, tree_build, water
}
criterion_main!(benches);
