//! Machine engine benchmarks: the tree-walking interpreter vs the
//! slot-resolved bytecode VM on the corpus workloads at 4 PEs, plus the
//! compile pass itself. The checked-in perf baseline is produced by the
//! `bench_machine` binary; this criterion bench is the interactive /
//! CI-smoke view of the same comparison (`cargo bench --bench machine`,
//! smoke: `cargo bench --bench machine -- --test`).

use adds_lang::programs;
use adds_lang::types::{check_source, TypedProgram};
use adds_machine::diff::workloads;
use adds_machine::{CompiledProgram, CostModel, Exec, Interp, MachineConfig, Value, Vm};
use criterion::{criterion_group, criterion_main, Criterion};

const PES: usize = 4;

fn cfg(detect: bool) -> MachineConfig {
    MachineConfig {
        pes: PES,
        detect_conflicts: detect,
        cost: CostModel::sequent(),
        ..MachineConfig::default()
    }
}

fn parallelized(src: &str) -> TypedProgram {
    let out = adds_core::parallelize_to_source(src).expect("pipeline runs");
    check_source(&out).expect("transformed source re-checks")
}

fn bench_engines(
    c: &mut Criterion,
    label: &str,
    tp: &TypedProgram,
    entry: &str,
    detect: bool,
    setup: impl Fn(&mut dyn Exec) -> Vec<Value>,
) {
    let compiled = CompiledProgram::compile(tp);
    let mut g = c.benchmark_group(label);
    g.sample_size(10);
    g.bench_function("interp", |b| {
        b.iter(|| {
            let mut it = Interp::new(tp, cfg(detect));
            let args = setup(&mut it);
            it.call(entry, &args).expect("workload runs");
            it.stats.stmts
        })
    });
    g.bench_function("vm", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&compiled, cfg(detect));
            let args = setup(&mut vm);
            vm.call(entry, &args).expect("workload runs");
            vm.stats.stmts
        })
    });
    g.finish();
}

fn machine_benches(c: &mut Criterion) {
    bench_engines(
        c,
        "machine/list_scale_adds@4pe",
        &parallelized(programs::LIST_SCALE_ADDS),
        "scale",
        false,
        |m| vec![workloads::scale_list(m, 5_000), Value::Int(3)],
    );
    bench_engines(
        c,
        "machine/list_scale_adds@4pe+conflicts",
        &parallelized(programs::LIST_SCALE_ADDS),
        "scale",
        true,
        |m| vec![workloads::scale_list(m, 5_000), Value::Int(3)],
    );
    bench_engines(
        c,
        "machine/orth_row_scale@4pe",
        &parallelized(programs::ORTH_ROW_SCALE),
        "scale_rows",
        false,
        |m| {
            let widths: Vec<usize> = (0..60).map(|r| 30 + (r % 17)).collect();
            vec![workloads::orth_rows(m, &widths), Value::Int(3)]
        },
    );
    bench_engines(
        c,
        "machine/barnes_hut@4pe",
        &parallelized(programs::BARNES_HUT),
        "simulate",
        false,
        |m| {
            let bodies = adds_machine::uniform_cloud(32, 7);
            let head = adds_machine::sequent::build_particles(m, &bodies);
            vec![head, Value::Int(1), Value::Real(0.7), Value::Real(0.01)]
        },
    );

    // The compile pass itself (per whole program).
    let tp = check_source(programs::BARNES_HUT).unwrap();
    c.bench_function("machine/compile/barnes_hut", |b| {
        b.iter(|| CompiledProgram::compile(&tp).code_len())
    });
}

criterion_group!(benches, machine_benches);
criterion_main!(benches);
