//! Structure-level benchmarks: list scaling (sequential vs strip-parallel),
//! orthogonal-list SpMV, range-tree queries, bignum multiplication.

use adds_structures::{Bignum, OrthList, Point, Polynomial, RangeTree2D};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn poly_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("poly_scale");
    // 10k terms keeps each iteration ~50 µs; this container's scheduler
    // penalizes long single-thread pointer-chasing bursts unpredictably at
    // larger sizes (observed: 100k-term runs exceeding their criterion
    // estimate by two orders of magnitude).
    let n = 10_000;
    g.bench_function("sequential", |b| {
        let mut p = Polynomial::from_terms((0..n).map(|i| (i as i64 + 1, i)));
        b.iter(|| p.scale_in_place(3));
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            let mut p = Polynomial::from_terms((0..n).map(|i| (i as i64 + 1, i)));
            b.iter(|| p.scale_parallel(3, t));
        });
    }
    g.finish();
}

fn spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("orthlist_spmv");
    let n = 2000;
    let m = OrthList::from_triplets(
        n,
        n,
        (0..n).flat_map(|i| {
            [
                (i, i, 2.0),
                (i, (i + 1) % n, -1.0),
                (i, (i + n - 1) % n, -1.0),
                (i, (i * 7 + 3) % n, 0.5),
            ]
        }),
    );
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    g.bench_function("sequential", |b| b.iter(|| m.spmv(&x)));
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| m.spmv_parallel(&x, t));
        });
    }
    g.finish();
}

fn range_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("rangetree");
    for n in [1_000usize, 10_000] {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point {
                x: (i as f64 * 0.618_033_988_75).fract() * 100.0,
                y: (i as f64 * 0.414_213_562_37).fract() * 100.0,
                id: i as u32,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| RangeTree2D::build(pts.clone()));
        });
        let t = RangeTree2D::build(pts);
        g.bench_with_input(BenchmarkId::new("rect_query", n), &t, |b, t| {
            b.iter(|| t.rectangle_count(10.0, 40.0, 20.0, 60.0));
        });
    }
    g.finish();
}

fn bignum(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum");
    let a = {
        let mut f = Bignum::from_u64(1);
        for k in 2..=40 {
            f = f.mul_small(k);
        }
        f
    };
    g.bench_function("mul_small", |b| b.iter(|| a.mul_small(997)));
    g.bench_function("mul_full", |b| b.iter(|| a.mul(&a)));
    g.bench_function("add", |b| b.iter(|| a.add(&a)));
    g.finish();
}

/// The §1 quadtree: build and rectangle-query cost vs a naive scan, at
/// growing N — pruning must beat the O(N) filter for selective queries.
fn quadtree(c: &mut Criterion) {
    use adds_structures::{QPoint, Quadtree};
    let mut g = c.benchmark_group("quadtree");
    for n in [256usize, 4096] {
        let pts: Vec<QPoint> = (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                QPoint {
                    x: (a.fract() * 1000.0).floor(),
                    y: ((a * 7.0).fract() * 1000.0).floor(),
                    id: i as u32,
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| Quadtree::build(pts.clone()));
        });
        let t = Quadtree::build(pts.clone());
        g.bench_with_input(BenchmarkId::new("rect_query", n), &n, |b, _| {
            b.iter(|| t.rectangle_query(100.0, 180.0, 700.0, 790.0));
        });
        g.bench_with_input(BenchmarkId::new("naive_filter", n), &n, |b, _| {
            b.iter(|| {
                pts.iter()
                    .filter(|p| p.x >= 100.0 && p.x <= 180.0 && p.y >= 700.0 && p.y <= 790.0)
                    .count()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Bounded sampling: full-precision runs are unnecessary for the shape
    // claims and keep `cargo bench --workspace` under a few minutes.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = poly_scale, spmv, range_queries, bignum, quadtree
}
criterion_main!(benches);
