//! # adds-bench — harness regenerating every table and figure of the paper
//!
//! Shared plumbing for the experiment binaries (see DESIGN.md §4 for the
//! experiment index):
//!
//! | binary            | artifacts |
//! |-------------------|-----------|
//! | `table_times`     | §4.4 TIMES + SPEEDUP, native threads (E1/E2) |
//! | `table_sequent`   | §4.4 TIMES + SPEEDUP, simulated Sequent (E1/E2) |
//! | `paper_matrices`  | §3.3.2 and §4.3.2 path matrices (PM1–PM4) |
//! | `figures`         | Figures 1–5 (F1–F5) |
//! | `validation_demo` | §3.3.1 / §4.3.2 validation episodes (V1/V2) |
//! | `transform_demo`  | §4.3.3 transformed code + equivalence run (T1) |
//! | `ablations`       | §4.4 caveats (A1–A4) |
//! | `prior_work`      | §2.1 precision ladder (P1) |
//! | `water_vs_tree`   | §4.1/4.2 arrays-vs-pointers narrative (W1) |

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A paper-style table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as headers).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given caption and columns.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render with right-aligned, width-fitted columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.title);
        let line = |s: &mut String, cells: &[String]| {
            s.push('|');
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:>width$} |", c, width = widths[i]);
            }
            s.push('\n');
        };
        line(&mut s, &self.headers);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(s, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut s, r);
        }
        s
    }
}

/// Wall-clock a closure.
pub fn time_it<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Median-of-`reps` wall-clock time.
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// seq / par as a ratio.
pub fn speedup(seq: Duration, par: Duration) -> f64 {
    seq.as_secs_f64() / par.as_secs_f64().max(1e-12)
}

/// Compact human-readable duration.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

/// The paper's experiment grid: N ∈ {128, 512, 1024}, 80 time steps,
/// sequential vs 4 vs 7 processors.
pub const PAPER_NS: [usize; 3] = [128, 512, 1024];
/// The paper's simulation length (§4.4: "simulation runs of 80 time steps").
pub const PAPER_STEPS: usize = 80;
/// The paper's processor counts.
pub const PAPER_PES: [usize; 2] = [4, 7];

/// The paper's reported numbers, for side-by-side comparison in the output.
pub struct PaperRow {
    /// Particle count.
    pub n: usize,
    /// Sequential seconds (paper).
    pub seq_s: f64,
    /// 4-processor seconds (paper).
    pub par4_s: f64,
    /// 7-processor seconds (paper).
    pub par7_s: f64,
}

/// The paper's §4.4 TIMES table, verbatim.
pub const PAPER_TIMES: [PaperRow; 3] = [
    PaperRow {
        n: 128,
        seq_s: 188.0,
        par4_s: 75.0,
        par7_s: 57.0,
    },
    PaperRow {
        n: 512,
        seq_s: 1496.0,
        par4_s: 548.0,
        par7_s: 369.0,
    },
    PaperRow {
        n: 1024,
        seq_s: 3768.0,
        par4_s: 1343.0,
        par7_s: 873.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("TIMES", &["N", "seq", "par(4)"]);
        t.row(vec!["128".into(), "188".into(), "75".into()]);
        let s = t.render();
        assert!(s.contains("TIMES"));
        assert!(s.contains("128"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn speedup_math() {
        assert!((speedup(Duration::from_secs(4), Duration::from_secs(1)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_speedups_match_reported() {
        // Sanity: the constants reproduce the paper's SPEEDUP table.
        let r = &PAPER_TIMES[0];
        assert!((r.seq_s / r.par4_s - 2.5).abs() < 0.02);
        assert!((r.seq_s / r.par7_s - 3.3).abs() < 0.02);
        let r = &PAPER_TIMES[2];
        assert!((r.seq_s / r.par4_s - 2.8).abs() < 0.02);
        assert!((r.seq_s / r.par7_s - 4.3).abs() < 0.02);
    }

    #[test]
    fn best_of_returns_a_measurement() {
        let d = best_of(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }
}
