//! P1 — the §2.1 precision ladder: prior structure-estimation analyses vs
//! ADDS + general path matrix analysis, on the same scaling loop with the
//! list coming from four different origins.
//!
//! The paper's motivation, made runnable:
//!
//! * **conservative** (approach 1) proves nothing;
//! * **k-limited** \[JM81, LH88, HPR89\] handles only structures that fit
//!   within `k` dereferences — its summary merge "introduces cycles in the
//!   abstraction", §2.1;
//! * **alloc-site (CWZ)** \[CWZ90\] "addressed this problem to some
//!   degree" — allocation-ordered edges keep the loop-built list acyclic —
//!   "however, their method fails … in the presence of general recursion";
//! * **ADDS + GPM** proves every case, because the declaration carries the
//!   shape across call and build boundaries.
//!
//! Usage: `prior_work [--graphs]` (`--graphs` additionally dumps the
//! storage graphs at each walk-loop head).

use adds_bench::Table;
use adds_klimit::{analysis, programs, verdict, Mode};

const MODES: [Mode; 4] = [
    Mode::Blob,
    Mode::KLimit(1),
    Mode::KLimit(3),
    Mode::AllocSite,
];

fn main() {
    let dump_graphs = std::env::args().any(|a| a == "--graphs");

    println!("== P1: §2.1 precision ladder ==");
    println!("(the §3.3.2 scaling loop; ✓ = analysis licenses strip-mining)\n");

    let mut headers: Vec<&str> = vec!["list origin"];
    let names: Vec<String> = MODES.iter().map(|m| m.name()).collect();
    headers.extend(names.iter().map(String::as_str));
    headers.push("ADDS+GPM");
    let mut t = Table::new("strip-mine legality of the walk loop", &headers);

    for (name, src, func) in programs::ladder_programs() {
        let mut row = vec![name.to_string()];
        for mode in MODES {
            let checks = verdict::check_source(src, func, mode).expect("program checks");
            let walk = checks
                .iter()
                .rfind(|c| c.pattern.is_some())
                .expect("walk loop found");
            row.push(mark(walk.parallelizable));
        }
        row.push(mark(adds_verdict(src, func)));
        t.row(row);
    }
    println!("{}", t.render());

    println!("why the baselines fail (first reason each):\n");
    for (name, src, func) in programs::ladder_programs() {
        for mode in MODES {
            let checks = verdict::check_source(src, func, mode).expect("program checks");
            let walk = checks.iter().rfind(|c| c.pattern.is_some()).unwrap();
            if let Some(r) = walk.reasons.first() {
                println!("  {:<20} {:<18} {r}", name, walk.mode.name());
            }
        }
    }

    if dump_graphs {
        println!("\nstorage graphs at the walk-loop head:\n");
        for (name, src, func) in programs::ladder_programs() {
            for mode in MODES {
                let fg = analysis::analyze_source(src, func, mode).expect("analyzes");
                let Some(lg) = fg.loops.values().next_back() else {
                    continue;
                };
                println!("--- {name} / {} ---", mode.name());
                println!("{}", lg.head.render());
            }
        }
    }

    println!("\npaper claim check:");
    println!("  - k-limited merge manufactures a `next` cycle on loop-built lists  ✓");
    println!("  - CWZ-style ordering rescues loop-built, loses to recursion/calls  ✓");
    println!("  - only the declared shape survives a call boundary (ADDS)          ✓");
}

fn mark(ok: bool) -> String {
    if ok {
        "✓".into()
    } else {
        "✗".into()
    }
}

/// The paper's own pipeline on the ADDS-declared twin of the same program.
fn adds_verdict(src: &str, func: &str) -> bool {
    let twin = programs::adds_twin(src);
    let c = adds_core::compile(&twin).expect("twin compiles");
    let an = c.analysis(func).expect("function analyzed");
    adds_core::check_function(&c.tp, &c.summaries, an, func)
        .iter()
        .rfind(|c| c.pattern.is_some())
        .map(|c| c.parallelizable)
        .unwrap_or(false)
}
