//! A1–A4 — ablations of the paper's four §4.4 speedup caveats:
//!
//! 1. "simple static scheduling is being used"            → `sched`
//! 2. "parallelism inherent in the independent subtree
//!    computations … is not yet being exploited"          → `subtree`
//! 3. "synchronization on a Sequent is rather slow"       → `sync`
//! 4. "no attempt is made to optimize the granularity"    → `gran`
//!
//! Usage: `ablations [sched|subtree|sync|gran] [--quick]`.

use adds_bench::{best_of, fmt_dur, speedup, Table};
use adds_lang::programs;
use adds_lang::types::check_source;
use adds_machine::{run_barnes_hut, uniform_cloud, CostModel};
use adds_nbody::{force_parallel_subtrees, gen, Octree, Schedule, SimParams, Simulation};

fn want(which: &str) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let named: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    named.is_empty() || named.iter().any(|a| *a == which || *a == "all")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 256 } else { 2048 };
    let steps = if quick { 2 } else { 10 };
    let reps = if quick { 1 } else { 3 };
    let params = SimParams {
        theta: 0.7,
        dt: 0.001,
        eps: 1e-3,
    };

    if want("sched") {
        println!("== A1: static strip vs dynamic self-scheduling (N={n}, {steps} steps) ==\n");
        let mut t = Table::new(
            "schedule ablation",
            &["threads", "static", "dynamic", "dyn/static"],
        );
        let seq = best_of(reps, || {
            let mut s = Simulation::new(gen::plummer(n, 3), params);
            s.run_sequential(steps);
        });
        for threads in [2usize, 4, 7, 8] {
            let st = best_of(reps, || {
                let mut s = Simulation::new(gen::plummer(n, 3), params);
                for _ in 0..steps {
                    s.step_parallel_sched(threads, Schedule::StaticStrip);
                }
            });
            let dy = best_of(reps, || {
                let mut s = Simulation::new(gen::plummer(n, 3), params);
                for _ in 0..steps {
                    s.step_parallel_sched(threads, Schedule::Dynamic);
                }
            });
            t.row(vec![
                threads.to_string(),
                format!("{} ({:.1}x)", fmt_dur(st), speedup(seq, st)),
                format!("{} ({:.1}x)", fmt_dur(dy), speedup(seq, dy)),
                format!("{:.2}", st.as_secs_f64() / dy.as_secs_f64()),
            ]);
        }
        println!("{}", t.render());
        println!("Dynamic scheduling requires flattening the list to an array first —");
        println!("the restructuring the paper's approach avoids.\n");
    }

    if want("subtree") {
        println!("== A2: subtree parallelism inside compute_force (paper future work) ==\n");
        let plist = gen::plummer(n.max(1024), 3);
        let tree = Octree::build(&plist);
        let seq = best_of(reps, || {
            let mut acc = 0.0;
            for p in 0..64u32 {
                acc += adds_nbody::accumulate_force(&tree, &plist, p, tree.root, 0.3, 1e-3).norm();
            }
            acc
        });
        let par = best_of(reps, || {
            let mut acc = 0.0;
            for p in 0..64u32 {
                acc += force_parallel_subtrees(&tree, &plist, p, 0.3, 1e-3).norm();
            }
            acc
        });
        println!("  64 force evaluations, theta=0.3, N={}:", plist.len());
        println!("  sequential subtrees: {}", fmt_dur(seq));
        println!(
            "  parallel subtrees:   {} ({:.2}x)",
            fmt_dur(par),
            speedup(seq, par)
        );
        println!("  (per-particle spawning is coarse; the paper lists this as");
        println!("   unexploited parallelism, worthwhile only for large subtrees)\n");
    }

    if want("sync") {
        println!("== A3: synchronization cost sweep on the simulated Sequent ==\n");
        let (prog, _) = adds_core::parallelize_program(programs::BARNES_HUT).expect("transform");
        let tp_par = check_source(&adds_lang::pretty::program(&prog)).expect("compile");
        let tp_seq = check_source(programs::BARNES_HUT).expect("compile");
        let bodies = uniform_cloud(if quick { 64 } else { 128 }, 5);
        let mut t = Table::new("sync ablation (4 PEs)", &["sync cycles", "speedup vs seq"]);
        let seqr = run_barnes_hut(
            &tp_seq,
            &bodies,
            2,
            0.7,
            0.001,
            1,
            CostModel::sequent(),
            false,
        )
        .expect("seq");
        for sync in [0u64, 500, 1500, 5000, 20000, 100000] {
            let cost = CostModel::sequent().with_sync(sync);
            let r = run_barnes_hut(&tp_par, &bodies, 2, 0.7, 0.001, 4, cost, false).expect("par");
            t.row(vec![
                sync.to_string(),
                format!("{:.2}", seqr.cycles as f64 / r.cycles as f64),
            ]);
        }
        println!("{}", t.render());
        println!("Slow barriers eat the speedup — the paper's caveat (3).\n");
    }

    if want("gran") {
        println!("== A4: granularity — PE count and theta sweeps (native, N={n}) ==\n");
        let seq = best_of(reps, || {
            let mut s = Simulation::new(gen::plummer(n, 3), params);
            s.run_sequential(steps);
        });
        let mut t = Table::new("PE sweep", &["threads", "time", "speedup", "efficiency"]);
        for threads in [1usize, 2, 4, 7, 8, 16] {
            let d = best_of(reps, || {
                let mut s = Simulation::new(gen::plummer(n, 3), params);
                s.run_parallel(steps, threads);
            });
            let sp = speedup(seq, d);
            t.row(vec![
                threads.to_string(),
                fmt_dur(d),
                format!("{sp:.2}"),
                format!("{:.0}%", 100.0 * sp / threads as f64),
            ]);
        }
        println!("{}", t.render());

        // θ=0 disables the well-separated cut (exact O(N²)-equivalent), so
        // that row runs at a smaller N to stay tractable — hence the N
        // column: visits/particle are comparable, absolute times are not.
        let mut t = Table::new(
            "theta sweep (seq)",
            &["theta", "N", "time", "avg visits/particle"],
        );
        for theta in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let p2 = SimParams { theta, ..params };
            let nn = if theta == 0.0 { n.min(512) } else { n };
            let d = best_of(1, || {
                let mut s = Simulation::new(gen::plummer(nn, 3), p2);
                s.run_sequential(1);
            });
            let plist = gen::plummer(nn, 3);
            let tree = Octree::build(&plist);
            let visits: usize = (0..plist.len() as u32)
                .map(|p| adds_nbody::force_visits(&tree, &plist, p, tree.root, theta, 1e-3))
                .sum();
            t.row(vec![
                format!("{theta:.1}"),
                nn.to_string(),
                fmt_dur(d),
                format!("{:.0}", visits as f64 / plist.len() as f64),
            ]);
        }
        println!("{}", t.render());
    }
}
