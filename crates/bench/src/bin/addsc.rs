//! `addsc` — the ADDS source-to-source compiler driver.
//!
//! The tool a downstream user runs on their own IL files:
//!
//! ```text
//! addsc check   prog.adds             # parse + ADDS well-formedness + types
//! addsc analyze prog.adds [func]      # path matrices, validation events
//! addsc loops   prog.adds             # parallelizability verdict per loop
//! addsc prior   prog.adds [func]      # §2.1 baseline verdicts (no ADDS used)
//! addsc par     prog.adds             # emit strip-mined source on stdout
//! addsc run     prog.adds main [pes]  # interpret (main takes no args)
//! ```
//!
//! With no file, reads from stdin; `-` also means stdin. The built-in demo
//! programs are reachable as `@barnes_hut`, `@scale`, `@scale_plain`,
//! `@subtree_move`, `@loop_built`, `@recursive_built`.

use adds_core::{check_function, compile};
use adds_lang::programs;
use std::io::Read;
use std::process::ExitCode;

fn load(path: &str) -> Result<String, String> {
    match path {
        "@barnes_hut" => Ok(programs::BARNES_HUT.to_string()),
        "@scale" => Ok(programs::LIST_SCALE_ADDS.to_string()),
        "@scale_plain" => Ok(programs::LIST_SCALE_PLAIN.to_string()),
        "@subtree_move" => Ok(programs::SUBTREE_MOVE.to_string()),
        "@loop_built" => Ok(adds_klimit::programs::LOOP_BUILT_SCALE.to_string()),
        "@recursive_built" => Ok(adds_klimit::programs::RECURSIVE_BUILT_SCALE.to_string()),
        "-" => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| e.to_string())?;
            Ok(s)
        }
        p => std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: addsc <check|analyze|loops|prior|par|run> <file|@demo|-> [args]\n\
         demos: @barnes_hut @scale @scale_plain @subtree_move @loop_built @recursive_built"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let src = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "check" => match adds_lang::check_source(&src) {
            Ok(tp) => {
                println!(
                    "ok: {} type(s), {} function(s)",
                    tp.adds.len(),
                    tp.program.funcs.len()
                );
                for t in tp.adds.types() {
                    println!("  type {} [{}]", t.name, t.dims.join("]["));
                }
                ExitCode::SUCCESS
            }
            Err(d) => {
                eprintln!("{}", d.render(&src));
                ExitCode::FAILURE
            }
        },
        "analyze" => {
            let c = match compile(&src) {
                Ok(c) => c,
                Err(d) => {
                    eprintln!("{}", d.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            let targets: Vec<String> = match args.get(2) {
                Some(f) => vec![f.clone()],
                None => c.analyses.keys().cloned().collect(),
            };
            for f in targets {
                let Some(an) = c.analysis(&f) else {
                    eprintln!("no such function `{f}`");
                    return ExitCode::FAILURE;
                };
                println!("== {f} ==");
                for (i, lp) in an.loops.iter().enumerate() {
                    println!("-- loop {} fixed-point path matrix --", i + 1);
                    println!("{}", lp.bottom.pm.render());
                }
                for e in &an.events {
                    println!("  {e}");
                }
                println!(
                    "  abstraction fully valid at exit: {}\n",
                    an.exit.fully_valid()
                );
            }
            ExitCode::SUCCESS
        }
        "loops" => {
            let c = match compile(&src) {
                Ok(c) => c,
                Err(d) => {
                    eprintln!("{}", d.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            for f in &c.tp.program.funcs {
                let Some(an) = c.analysis(&f.name) else {
                    continue;
                };
                for chk in check_function(&c.tp, &c.summaries, an, &f.name) {
                    let what = chk
                        .pattern
                        .as_ref()
                        .map(|p| format!("chase `{}` via `{}`", p.var, p.field))
                        .unwrap_or_else(|| "unrecognized".to_string());
                    if chk.parallelizable {
                        println!("{}: PARALLELIZABLE ({what})", f.name);
                    } else {
                        println!("{}: sequential ({what})", f.name);
                        for r in &chk.reasons {
                            println!("    - {r}");
                        }
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "prior" => {
            // The §2.1 baselines — deliberately blind to ADDS declarations.
            let tp = match adds_lang::check_source(&src) {
                Ok(tp) => tp,
                Err(d) => {
                    eprintln!("{}", d.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            use adds_klimit::Mode;
            let funcs: Vec<String> = match args.get(2) {
                Some(f) => vec![f.clone()],
                None => tp.program.funcs.iter().map(|f| f.name.clone()).collect(),
            };
            for f in funcs {
                println!("== {f} ==");
                for mode in [Mode::Blob, Mode::KLimit(2), Mode::AllocSite] {
                    for chk in adds_klimit::check_function(&tp, &f, mode) {
                        let what = chk
                            .pattern
                            .as_ref()
                            .map(|(v, fld)| format!("chase `{v}` via `{fld}`"))
                            .unwrap_or_else(|| "unrecognized".to_string());
                        if chk.parallelizable {
                            println!("  {:<18} PARALLELIZABLE ({what})", mode.name());
                        } else {
                            println!("  {:<18} sequential ({what})", mode.name());
                            for r in &chk.reasons {
                                println!("      - {r}");
                            }
                        }
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "par" => match adds_core::parallelize_to_source(&src) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(d) => {
                eprintln!("{}", d.render(&src));
                ExitCode::FAILURE
            }
        },
        "run" => {
            let Some(entry) = args.get(2) else {
                return usage();
            };
            let pes: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(4);
            let tp = match adds_lang::check_source(&src) {
                Ok(tp) => tp,
                Err(d) => {
                    eprintln!("{}", d.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            let cfg = adds_machine::MachineConfig {
                pes,
                ..Default::default()
            };
            let mut it = adds_machine::Interp::new(&tp, cfg);
            match it.call(entry, &[]) {
                Ok(v) => {
                    for line in &it.output {
                        println!("{line}");
                    }
                    println!("=> {v}   ({} cycles, {} stmts)", it.clock, it.stats.stmts);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
