//! W1 — the §4.1/§4.2 narrative quantified: arrays-and-iteration O(N²)
//! (SPLASH-Water-style) vs the pointer-structure O(N log N) tree-code.
//!
//! Three claims from the paper's prose, regenerated:
//!
//! 1. §4.1: the all-pairs algorithm is O(N²), Barnes–Hut O(N log N) — so
//!    the tree-code must overtake it as N grows (crossover table);
//! 2. §4.2: the array code parallelizes trivially ("most likely for ease
//!    of parallelization") — near-linear speedups with zero analysis;
//! 3. §4.2: the pointer code parallelizes *only* given shape knowledge —
//!    same strip-mined speedups, but licensed by the ADDS pipeline.
//!
//! Usage: `water_vs_tree [--quick]`.

use adds_bench::{best_of, fmt_dur, speedup, Table};
use adds_nbody::water::{lattice, WaterParams};
use adds_nbody::{gen, SimParams, Simulation};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let steps = if quick { 2 } else { 5 };
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let params = SimParams {
        theta: 0.7,
        dt: 0.001,
        eps: 1e-3,
    };

    // ---- claim 1: O(N²) vs O(N log N) crossover -----------------------
    println!("== W1a: all-pairs (arrays) vs tree-code (pointers), sequential ==\n");
    let mut t = Table::new(
        "sequential time per step",
        &["N", "water O(N^2)", "barnes-hut O(N log N)", "tree wins?"],
    );
    for &n in sizes {
        let wt = best_of(reps, || {
            let mut w = lattice(n, 7, WaterParams::default());
            w.run(steps, 1);
        });
        let bt = best_of(reps, || {
            let mut s = Simulation::new(gen::plummer(n, 7), params);
            s.run_sequential(steps);
        });
        t.row(vec![
            n.to_string(),
            fmt_dur(wt / steps as u32),
            fmt_dur(bt / steps as u32),
            if bt < wt {
                "yes".into()
            } else {
                "not yet".into()
            },
        ]);
    }
    println!("{}", t.render());

    // ---- claims 2+3: both parallelize; only one needed analysis -------
    let n = if quick { 512 } else { 2048 };
    println!("== W1b: speedups at N={n} ({steps} steps) ==\n");
    let mut t = Table::new("speedup (threads)", &["code", "1", "4", "7", "licensed by"]);
    let wseq = best_of(reps, || {
        let mut w = lattice(n, 7, WaterParams::default());
        w.run(steps, 1);
    });
    let w4 = best_of(reps, || {
        let mut w = lattice(n, 7, WaterParams::default());
        w.run(steps, 4);
    });
    let w7 = best_of(reps, || {
        let mut w = lattice(n, 7, WaterParams::default());
        w.run(steps, 7);
    });
    t.row(vec![
        "water (arrays, O(N^2))".into(),
        "1.0".into(),
        format!("{:.1}", speedup(wseq, w4)),
        format!("{:.1}", speedup(wseq, w7)),
        "index ranges alone".into(),
    ]);
    let bseq = best_of(reps, || {
        let mut s = Simulation::new(gen::plummer(n, 7), params);
        s.run_sequential(steps);
    });
    let b4 = best_of(reps, || {
        let mut s = Simulation::new(gen::plummer(n, 7), params);
        s.run_parallel(steps, 4);
    });
    let b7 = best_of(reps, || {
        let mut s = Simulation::new(gen::plummer(n, 7), params);
        s.run_parallel(steps, 7);
    });
    t.row(vec![
        "barnes-hut (pointers)".into(),
        "1.0".into(),
        format!("{:.1}", speedup(bseq, b4)),
        format!("{:.1}", speedup(bseq, b7)),
        "ADDS + path matrices".into(),
    ]);
    println!("{}", t.render());

    println!(
        "the paper's §4.2 point: the left column of work was historically\n\
         rewritten into the top row's style *because* compilers could prove\n\
         index-range disjointness but not pointer-structure disjointness.\n\
         With the ADDS declaration the bottom row parallelizes too — and\n\
         keeps its O(N log N) advantage."
    );
}
