//! T1 — the §4.3.3 transformation, end to end:
//! original BHL1/BHL2 → analysis → strip-mined source → interpreted
//! execution equivalence (sequential vs 4-PE parallel, conflict-checked).

use adds_lang::programs;
use adds_lang::types::check_source;
use adds_machine::{run_barnes_hut, uniform_cloud, CostModel};

fn main() {
    let tp_seq = check_source(programs::BARNES_HUT).expect("source compiles");
    println!("== original BHL1 ==\n");
    println!(
        "{}",
        adds_lang::pretty::function(tp_seq.program.func("bhl1").unwrap())
    );

    let (prog, reports) =
        adds_core::parallelize_program(programs::BARNES_HUT).expect("parallelization");
    println!("== transformed BHL1 (strip-mined by PEs, §4.3.3) ==\n");
    println!(
        "{}",
        adds_lang::pretty::function(prog.func("bhl1").unwrap())
    );
    println!(
        "{}",
        adds_lang::pretty::function(
            prog.funcs
                .iter()
                .find(|f| f.name.starts_with("_bhl1"))
                .unwrap()
        )
    );

    println!("== loops considered ==");
    for r in &reports {
        for p in &r.parallelized {
            println!(
                "  {}: PARALLELIZED (chase `{}` via `{}`)",
                r.func.name, p.var, p.field
            );
        }
        for s in &r.skipped {
            println!(
                "  {}: left sequential — {}",
                r.func.name,
                s.reasons
                    .first()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "?".to_string())
            );
        }
    }

    // Equivalence check on the simulated machine.
    let tp_par = check_source(&adds_lang::pretty::program(&prog)).expect("transformed compiles");
    let bodies = uniform_cloud(48, 7);
    let seq = run_barnes_hut(
        &tp_seq,
        &bodies,
        3,
        0.7,
        0.01,
        1,
        CostModel::uniform(),
        false,
    )
    .expect("seq run");
    let par = run_barnes_hut(
        &tp_par,
        &bodies,
        3,
        0.7,
        0.01,
        4,
        CostModel::uniform(),
        true,
    )
    .expect("par run");
    let max_err = seq
        .bodies
        .iter()
        .zip(&par.bodies)
        .map(|(a, b)| {
            (0..3)
                .map(|d| (a.pos[d] - b.pos[d]).abs())
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    println!("\n== execution equivalence (48 particles, 3 steps) ==");
    println!("  max trajectory deviation seq vs par(4): {max_err:.2e}");
    println!(
        "  conflicts detected in parallel run:     {}",
        par.conflict_count
    );
    println!(
        "  parallel rounds executed:               {}",
        par.parallel_rounds
    );
    println!(
        "  simulated cycles: seq {} vs par(4) {}  (speedup {:.2})",
        seq.cycles,
        par.cycles,
        seq.cycles as f64 / par.cycles as f64
    );
    assert_eq!(par.conflict_count, 0);
    assert!(max_err < 1e-9);
}
