//! M1 — machine engine throughput: the tree-walking interpreter vs the
//! slot-resolved bytecode VM on the corpus workloads, at 4 PEs where the
//! program parallelizes.
//!
//! Writes `BENCH_machine.json` (schema `adds.bench-machine/v3`) so the
//! repository carries a perf-trajectory baseline. `/v2` added the
//! `vm_profiled_ns` / `profiled_over_vm` columns: the same VM run with
//! opcode/parfor profiling enabled, so the cost of `adds-cli profile`'s
//! instrumentation is tracked alongside the engines. `/v3` (superblock
//! fusion + compile-time inlining) adds the `list_sum` parallelized
//! rows, a top-level `host_cpus`, and per-row `superblocks`,
//! `inlined_calls`, and `dispatch` (`"superblock"` when the compiled
//! program carries fused blocks, `"baseline"` otherwise):
//!
//! ```text
//! cargo run --release -p adds-bench --bin bench_machine          # regen
//! cargo run --release -p adds-bench --bin bench_machine -- --check
//! ```
//!
//! `--check` validates an existing file's schema and — on multi-core
//! hosts — enforces the `interp_over_vm >= 8` floor on the list
//! workloads (used by CI to keep the checked-in baseline from rotting
//! and the fusion speedup from regressing). Absolute nanosecond numbers
//! are machine-dependent and never compared. Mirroring `bench_serve`'s
//! host guard, the ratio gate reads the *recorded* `host_cpus` from the
//! file: a snapshot generated on a single-core container (where the VM's
//! tighter loops gain less over the interpreter's) documents that fact
//! in-band and is exempt.

use adds_bench::best_of;
use adds_lang::programs;
use adds_lang::types::{check_source, TypedProgram};
use adds_machine::diff::workloads;
use adds_machine::{CompiledProgram, CostModel, Exec, Interp, MachineConfig, Value, Vm};
use std::fmt::Write as _;

const OUT_PATH: &str = "BENCH_machine.json";
const SCHEMA: &str = "adds.bench-machine/v3";
const PES: usize = 4;
/// Timing repetitions per engine per row; the recorded value is the
/// minimum. The fused VM finishes the list workloads in ~200µs, so on a
/// noisy shared host the minimum needs this many samples to converge —
/// too few and a slow draw understates the VM (and the ratio) by 2x.
const REPS: usize = 21;

/// Floor on `interp_over_vm` for the list workloads, enforced by
/// `--check` when the recorded `host_cpus >= MIN_GATE_CPUS` (the
/// single-core escape hatch, mirroring `bench_serve`'s host guard).
const MIN_LIST_RATIO: f64 = 8.0;
const MIN_GATE_CPUS: f64 = 2.0;

struct Case {
    name: &'static str,
    variant: &'static str,
    tp: TypedProgram,
    entry: &'static str,
    setup: fn(&mut dyn Exec) -> Vec<Value>,
}

fn cases() -> Vec<Case> {
    let par = |src: &str| {
        let out = adds_core::parallelize_to_source(src).expect("pipeline runs");
        check_source(&out).expect("transformed source re-checks")
    };
    fn scale_args(m: &mut dyn Exec) -> Vec<Value> {
        vec![workloads::scale_list(m, 20_000), Value::Int(3)]
    }
    fn orth_args(m: &mut dyn Exec) -> Vec<Value> {
        let widths: Vec<usize> = (0..200).map(|r| 40 + (r % 37)).collect();
        vec![workloads::orth_rows(m, &widths), Value::Int(3)]
    }
    fn sum_args(m: &mut dyn Exec) -> Vec<Value> {
        vec![workloads::sum_list(m, 20_000)]
    }
    fn bh_args(m: &mut dyn Exec) -> Vec<Value> {
        let bodies = adds_machine::uniform_cloud(64, 7);
        let head = adds_machine::sequent::build_particles(m, &bodies);
        vec![head, Value::Int(1), Value::Real(0.7), Value::Real(0.01)]
    }
    vec![
        Case {
            name: "list_scale_adds",
            variant: "sequential",
            tp: check_source(programs::LIST_SCALE_ADDS).unwrap(),
            entry: "scale",
            setup: scale_args,
        },
        Case {
            name: "list_scale_adds",
            variant: "parallelized",
            tp: par(programs::LIST_SCALE_ADDS),
            entry: "scale",
            setup: scale_args,
        },
        Case {
            name: "orth_row_scale",
            variant: "sequential",
            tp: check_source(programs::ORTH_ROW_SCALE).unwrap(),
            entry: "scale_rows",
            setup: orth_args,
        },
        Case {
            name: "orth_row_scale",
            variant: "parallelized",
            tp: par(programs::ORTH_ROW_SCALE),
            entry: "scale_rows",
            setup: orth_args,
        },
        Case {
            name: "barnes_hut",
            variant: "sequential",
            tp: check_source(programs::BARNES_HUT).unwrap(),
            entry: "simulate",
            setup: bh_args,
        },
        Case {
            name: "barnes_hut",
            variant: "parallelized",
            tp: par(programs::BARNES_HUT),
            entry: "simulate",
            setup: bh_args,
        },
        Case {
            name: "list_sum",
            variant: "sequential",
            tp: check_source(programs::LIST_SUM).unwrap(),
            entry: "sum",
            setup: sum_args,
        },
        // `list_sum` does not strip-mine (carried scalar), so its
        // "parallelized" variant measures the pipeline's passthrough
        // output — the exact program production callers run after
        // `parallelize`, and the workload superblock fusion targets most.
        Case {
            name: "list_sum",
            variant: "parallelized",
            tp: par(programs::LIST_SUM),
            entry: "sum",
            setup: sum_args,
        },
    ]
}

fn config(detect: bool) -> MachineConfig {
    MachineConfig {
        pes: PES,
        cost: CostModel::sequent(),
        detect_conflicts: detect,
        ..MachineConfig::default()
    }
}

struct Row {
    name: &'static str,
    variant: &'static str,
    detect: bool,
    stmts: u64,
    cycles: u64,
    superblocks: usize,
    inlined_calls: u32,
    dispatch: &'static str,
    compile_ns: u64,
    interp_ns: u64,
    vm_ns: u64,
    vm_profiled_ns: u64,
}

/// Best (minimum) of `reps` samples of `f`'s reported duration — the
/// robust estimator on shared/noisy hosts, applied identically to both
/// engines.
fn best_ns(reps: usize, mut f: impl FnMut() -> std::time::Duration) -> u64 {
    (0..reps.max(1))
        .map(|_| f().as_nanos() as u64)
        .min()
        .expect("at least one sample")
}

fn measure(case: &Case, detect: bool) -> Row {
    // One instrumented run for the counters.
    let compiled = CompiledProgram::compile(&case.tp);
    let mut vm = Vm::new(&compiled, config(detect));
    let args = (case.setup)(&mut vm);
    vm.call(case.entry, &args).expect("workload runs");
    assert!(
        vm.conflicts.is_empty(),
        "corpus workloads are conflict-free"
    );
    let stmts = vm.stats.stmts;
    let cycles = vm.clock;
    let superblocks = compiled.superblock_count();
    let inlined_calls = compiled.inlined_calls();
    let dispatch = if superblocks > 0 {
        "superblock"
    } else {
        "baseline"
    };

    let compile_ns = best_of(REPS, || CompiledProgram::compile(&case.tp)).as_nanos() as u64;
    // Time only the IL execution — heap setup is identical host-side work
    // on both engines and compilation is reported separately.
    let vm_ns = best_ns(REPS, || {
        let mut vm = Vm::new(&compiled, config(detect));
        let args = (case.setup)(&mut vm);
        let t0 = std::time::Instant::now();
        vm.call(case.entry, &args).expect("workload runs");
        t0.elapsed()
    });
    let interp_ns = best_ns(REPS, || {
        let mut it = Interp::new(&case.tp, config(detect));
        let args = (case.setup)(&mut it);
        let t0 = std::time::Instant::now();
        it.call(case.entry, &args).expect("workload runs");
        t0.elapsed()
    });
    // The same VM run with opcode counting + parfor attribution on — the
    // instrumentation cost `adds-cli profile` pays.
    let vm_profiled_ns = best_ns(REPS, || {
        let mut vm = Vm::new(&compiled, config(detect));
        vm.enable_profiling();
        let args = (case.setup)(&mut vm);
        let t0 = std::time::Instant::now();
        vm.call(case.entry, &args).expect("workload runs");
        t0.elapsed()
    });

    Row {
        name: case.name,
        variant: case.variant,
        detect,
        stmts,
        cycles,
        superblocks,
        inlined_calls,
        dispatch,
        compile_ns,
        interp_ns,
        vm_ns,
        vm_profiled_ns,
    }
}

fn per_sec(count: u64, ns: u64) -> f64 {
    count as f64 / (ns.max(1) as f64 / 1e9)
}

fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pes\": {PES},");
    let _ = writeln!(s, "  \"cost_model\": \"sequent\",");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(s, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(s, "  \"programs\": [");
    for (i, r) in rows.iter().enumerate() {
        let ratio = r.interp_ns as f64 / r.vm_ns.max(1) as f64;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"variant\": \"{}\",", r.variant);
        let _ = writeln!(s, "      \"detect_conflicts\": {},", r.detect);
        let _ = writeln!(s, "      \"stmts\": {},", r.stmts);
        let _ = writeln!(s, "      \"cycles\": {},", r.cycles);
        let _ = writeln!(s, "      \"superblocks\": {},", r.superblocks);
        let _ = writeln!(s, "      \"inlined_calls\": {},", r.inlined_calls);
        let _ = writeln!(s, "      \"dispatch\": \"{}\",", r.dispatch);
        let _ = writeln!(s, "      \"compile_ns\": {},", r.compile_ns);
        let _ = writeln!(s, "      \"interp_ns\": {},", r.interp_ns);
        let _ = writeln!(s, "      \"vm_ns\": {},", r.vm_ns);
        let _ = writeln!(s, "      \"vm_profiled_ns\": {},", r.vm_profiled_ns);
        let _ = writeln!(
            s,
            "      \"interp_stmts_per_sec\": {:.0},",
            per_sec(r.stmts, r.interp_ns)
        );
        let _ = writeln!(
            s,
            "      \"vm_stmts_per_sec\": {:.0},",
            per_sec(r.stmts, r.vm_ns)
        );
        let _ = writeln!(
            s,
            "      \"vm_cycles_per_sec\": {:.0},",
            per_sec(r.cycles, r.vm_ns)
        );
        let _ = writeln!(
            s,
            "      \"profiled_over_vm\": {:.2},",
            r.vm_profiled_ns as f64 / r.vm_ns.max(1) as f64
        );
        let _ = writeln!(s, "      \"interp_over_vm\": {:.2}", ratio);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Keys every program entry must carry; `--check` fails on any miss.
const REQUIRED_KEYS: &[&str] = &[
    "\"name\"",
    "\"variant\"",
    "\"stmts\"",
    "\"cycles\"",
    "\"superblocks\"",
    "\"inlined_calls\"",
    "\"dispatch\"",
    "\"compile_ns\"",
    "\"interp_ns\"",
    "\"vm_ns\"",
    "\"vm_profiled_ns\"",
    "\"profiled_over_vm\"",
    "\"interp_stmts_per_sec\"",
    "\"vm_stmts_per_sec\"",
    "\"vm_cycles_per_sec\"",
    "\"interp_over_vm\"",
];

/// Extract the number following `"key": ` anywhere in `text`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    text.split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split(['\n', ',', '}']).next())
        .and_then(|v| v.trim().parse().ok())
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!(
            "`{path}` does not carry schema `{SCHEMA}` — regenerate it with \
             `cargo run --release -p adds-bench --bin bench_machine`"
        ));
    }
    let entries = text.matches("\"name\"").count();
    if entries < 2 {
        return Err(format!("`{path}` has {entries} program entries, need >= 2"));
    }
    for key in REQUIRED_KEYS {
        if text.matches(key).count() < entries {
            return Err(format!(
                "`{path}` is stale: key {key} missing from some program entries"
            ));
        }
    }
    // Ratio gate: the superblock/inlining speedup on the list workloads
    // must hold in the committed snapshot. The *recorded* host_cpus
    // gates enforcement — a baseline regenerated on a single-core
    // container documents that in-band and is exempt (the VM's tight
    // loops gain less there), mirroring `bench_serve`'s >=JOBS-cpu guard.
    let host_cpus = json_number(&text, "host_cpus").unwrap_or(0.0);
    if host_cpus >= MIN_GATE_CPUS {
        for entry in text.split("\"name\": ").skip(1) {
            let name = entry.split('"').nth(1).unwrap_or("");
            if !name.starts_with("list_") {
                continue;
            }
            // Detection rows measure the conflict table, not dispatch.
            if entry.contains("\"detect_conflicts\": true") {
                continue;
            }
            let variant = json_str(entry, "variant").unwrap_or_default();
            let ratio = json_number(entry, "interp_over_vm").ok_or(format!(
                "`{path}`: row {name} ({variant}) carries no parseable interp_over_vm"
            ))?;
            if ratio < MIN_LIST_RATIO {
                return Err(format!(
                    "`{path}` pins interp_over_vm at {ratio:.2}x < {MIN_LIST_RATIO}x on \
                     {name} ({variant}) with host_cpus={host_cpus} — the fused dispatch \
                     regressed; profile before re-baselining"
                ));
            }
        }
    }
    Ok(())
}

/// Extract the string following `"key": "` in `text`.
fn json_str<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    text.split(&format!("\"{key}\": \""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        match check(OUT_PATH) {
            Ok(()) => println!("{OUT_PATH}: schema ok"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let all = cases();
    let mut rows: Vec<Row> = Vec::new();
    for case in &all {
        rows.push(measure(case, false));
        // The production configuration for parallel runs: conflict
        // detection on (what `adds-cli run` and the validation tests use).
        if case.variant == "parallelized" {
            rows.push(measure(case, true));
        }
    }
    for r in &rows {
        println!(
            "{:<16} {:<13} detect={:<5} {:>9} stmts  interp {:>12.0} st/s  vm {:>12.0} st/s  ({:.1}x)",
            r.name,
            r.variant,
            r.detect,
            r.stmts,
            per_sec(r.stmts, r.interp_ns),
            per_sec(r.stmts, r.vm_ns),
            r.interp_ns as f64 / r.vm_ns.max(1) as f64,
        );
    }
    let doc = render(&rows);
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_machine.json");
    println!("wrote {OUT_PATH}");
}
