//! E1/E2 — §4.4 TIMES and SPEEDUP on the **simulated Sequent**.
//!
//! The original IL Barnes–Hut program is compiled, the §4.3.3 strip-mine
//! transformation applied by the analysis pipeline, and both versions run
//! on the cycle-accurate machine model (slow sync, static strip schedule,
//! 4 / 7 PEs). Cycle counts scale linearly in steps, so the default uses
//! fewer steps and reports the 80-step equivalent (see EXPERIMENTS.md);
//! pass `--full` for all 80 interpreted steps.

use adds_bench::{Table, PAPER_NS, PAPER_PES, PAPER_STEPS, PAPER_TIMES};
use adds_lang::programs;
use adds_lang::types::check_source;
use adds_machine::{run_barnes_hut, uniform_cloud, CostModel};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let quick = std::env::args().any(|a| a == "--quick");
    let steps: i64 = if full {
        PAPER_STEPS as i64
    } else if quick {
        1
    } else {
        4
    };
    let scale = PAPER_STEPS as f64 / steps as f64;
    println!(
        "Simulated Sequent-class machine: IL Barnes-Hut, {steps} interpreted step(s) \
         scaled to the paper's {PAPER_STEPS} (cycles are linear in steps)\n"
    );

    let tp_seq = check_source(programs::BARNES_HUT).expect("sequential program");
    let (par_prog, _) =
        adds_core::parallelize_program(programs::BARNES_HUT).expect("parallelization");
    let tp_par = check_source(&adds_lang::pretty::program(&par_prog)).expect("parallel program");

    let mut times = Table::new(
        "TIMES, simulated Mcycles (measured | paper seconds)",
        &["", "N = 128", "N = 512", "N = 1024"],
    );
    let mut speedups = Table::new(
        "SPEEDUP (measured | paper)",
        &["", "N = 128", "N = 512", "N = 1024"],
    );

    let cost = CostModel::sequent();
    let mut seq_cycles = Vec::new();
    let mut row = vec!["seq".to_string()];
    for (i, n) in PAPER_NS.iter().enumerate() {
        let bodies = uniform_cloud(*n, 1992);
        let r = run_barnes_hut(&tp_seq, &bodies, steps, 0.7, 0.001, 1, cost, false)
            .expect("sequential run");
        let mc = r.cycles as f64 * scale / 1e6;
        row.push(format!("{mc:.0} | {}s", PAPER_TIMES[i].seq_s));
        seq_cycles.push(r.cycles as f64);
    }
    times.row(row);
    speedups.row(vec![
        "seq".into(),
        "1 | 1".into(),
        "1 | 1".into(),
        "1 | 1".into(),
    ]);

    for pes in PAPER_PES {
        let mut trow = vec![format!("par({pes})")];
        let mut srow = vec![format!("par({pes})")];
        for (i, n) in PAPER_NS.iter().enumerate() {
            let bodies = uniform_cloud(*n, 1992);
            let r = run_barnes_hut(&tp_par, &bodies, steps, 0.7, 0.001, pes, cost, false)
                .expect("parallel run");
            assert_eq!(r.conflict_count, 0);
            let mc = r.cycles as f64 * scale / 1e6;
            let sp = seq_cycles[i] / r.cycles as f64;
            let (paper_t, paper_s) = if pes == 4 {
                (
                    PAPER_TIMES[i].par4_s,
                    PAPER_TIMES[i].seq_s / PAPER_TIMES[i].par4_s,
                )
            } else {
                (
                    PAPER_TIMES[i].par7_s,
                    PAPER_TIMES[i].seq_s / PAPER_TIMES[i].par7_s,
                )
            };
            trow.push(format!("{mc:.0} | {paper_t}s"));
            srow.push(format!("{sp:.1} | {paper_s:.1}"));
        }
        times.row(trow);
        speedups.row(srow);
    }

    println!("{}", times.render());
    println!("{}", speedups.render());
    println!(
        "The parallel runs are the OUTPUT of the analysis+transformation pipeline\n\
         (no hand-parallelized code), executed with static strip scheduling and\n\
         Sequent-slow barriers — the paper's machine mechanisms."
    );
}
