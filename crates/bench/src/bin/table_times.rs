//! E1/E2 — §4.4 TIMES and SPEEDUP tables on **native threads**.
//!
//! Runs the Barnes–Hut simulation (80 time steps; N = 128, 512, 1024)
//! sequentially and strip-mine-parallelized on 4 and 7 threads — the
//! paper's PE counts — and prints the same two tables, with the paper's
//! reported values alongside.
//!
//! Usage: `table_times [--quick]` (`--quick` shrinks to 8 steps for CI).

use adds_bench::{fmt_dur, speedup, Table, PAPER_NS, PAPER_PES, PAPER_STEPS, PAPER_TIMES};
use adds_nbody::{gen, SimParams, Simulation};
use std::time::Duration;

fn run(n: usize, steps: usize, threads: Option<usize>) -> Duration {
    let params = SimParams {
        theta: 0.7,
        dt: 0.001,
        eps: 1e-3,
    };
    let mut sim = Simulation::new(gen::plummer(n, 1992), params);
    let t0 = std::time::Instant::now();
    match threads {
        None => sim.run_sequential(steps),
        Some(t) => sim.run_parallel(steps, t),
    }
    t0.elapsed()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 8 } else { PAPER_STEPS };
    println!(
        "Barnes-Hut tree-code, {steps} time steps, Plummer model, theta=0.7 (native threads)\n"
    );

    let mut times = Table::new(
        "TIMES (measured | paper)",
        &["", "N = 128", "N = 512", "N = 1024"],
    );
    let mut speedups = Table::new(
        "SPEEDUP (measured | paper)",
        &["", "N = 128", "N = 512", "N = 1024"],
    );

    let mut seq_times = Vec::new();
    let mut row = vec!["seq".to_string()];
    for (i, n) in PAPER_NS.iter().enumerate() {
        let d = run(*n, steps, None);
        row.push(format!("{} | {}s", fmt_dur(d), PAPER_TIMES[i].seq_s));
        seq_times.push(d);
    }
    times.row(row);
    let mut srow = vec!["seq".to_string()];
    for _ in PAPER_NS {
        srow.push("1 | 1".to_string());
    }
    speedups.row(srow);

    for pes in PAPER_PES {
        let mut trow = vec![format!("par({pes})")];
        let mut srow = vec![format!("par({pes})")];
        for (i, n) in PAPER_NS.iter().enumerate() {
            let d = run(*n, steps, Some(pes));
            let paper = if pes == 4 {
                (
                    PAPER_TIMES[i].par4_s,
                    PAPER_TIMES[i].seq_s / PAPER_TIMES[i].par4_s,
                )
            } else {
                (
                    PAPER_TIMES[i].par7_s,
                    PAPER_TIMES[i].seq_s / PAPER_TIMES[i].par7_s,
                )
            };
            trow.push(format!("{} | {}s", fmt_dur(d), paper.0));
            srow.push(format!("{:.1} | {:.1}", speedup(seq_times[i], d), paper.1));
        }
        times.row(trow);
        speedups.row(srow);
    }

    println!("{}", times.render());
    println!("{}", speedups.render());
    println!(
        "Shape check: speedups must be sublinear, grow with N, and par(7) > par(4).\n\
         Absolute times differ from the paper's Sequent (see EXPERIMENTS.md)."
    );
}
