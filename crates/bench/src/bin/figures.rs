//! F1–F5 — the paper's figures regenerated from live structures — plus
//! `quadtree`, the §1 motivating structure (Figure 5 one dimension down).
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5|quadtree]` (default: all).

use adds_nbody::{gen, Octree};
use adds_structures::render::*;
use adds_structures::{
    cyclic_list, tournament, Bignum, OneWayList, OrthList, Point, Polynomial, QPoint, Quadtree,
    RangeTree2D,
};

fn want(which: &str) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.is_empty() || args.iter().any(|a| a == which || a == "all")
}

fn main() {
    if want("fig1") {
        println!("== Figure 1: other structures built from the same ListNode type ==\n");
        println!("(a) a proper one-way list:");
        println!(
            "{}\n",
            render_edges(&OneWayList::from_iter_back([1, 2, 3, 4]))
        );
        println!("(b) a cyclic list:");
        println!("{}\n", render_edges(&cyclic_list(4)));
        println!("(c) a tournament (shared successors):");
        println!("{}\n", render_edges(&tournament(3)));
    }

    if want("fig2") {
        println!("== Figure 2: the one-way linked list (§3.1.1) ==\n");
        let b = Bignum::from_decimal("3,298,991").unwrap();
        println!("bignum: {}\n", render_bignum(&b));
        let p = Polynomial::paper_example();
        println!("polynomial: {}\n", render_poly(&p));
    }

    if want("fig3") {
        println!("== Figure 3: an orthogonal list (sparse matrix) ==\n");
        let m = OrthList::from_triplets(
            4,
            5,
            [
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, 5.0),
                (2, 0, -1.0),
                (2, 2, 3.0),
                (2, 4, 8.0),
                (3, 3, 7.0),
            ],
        );
        m.validate_shape().expect("valid shape");
        println!("{}\n", render_orthlist(&m));
    }

    if want("fig4") {
        println!("== Figure 4: a two-dimensional range tree ==\n");
        let pts: Vec<Point> = (0..8)
            .map(|i| Point {
                x: i as f64,
                y: ((i * 37) % 8) as f64,
                id: i as u32,
            })
            .collect();
        let t = RangeTree2D::build(pts);
        t.validate_shape().expect("valid shape");
        println!("{}\n", render_rangetree(&t));
        let hits = t.rectangle_query(2.0, 5.0, 1.0, 6.0);
        println!(
            "query [2,5]x[1,6] -> {} points: {:?}\n",
            hits.len(),
            hits.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    if want("fig5") {
        println!("== Figure 5: an octree (leaves = particles, chained) ==\n");
        let plist = gen::uniform_cube(16, 42);
        let tree = Octree::build(&plist);
        tree.validate_shape(&plist).expect("valid shape");
        println!(
            "octree over 16 particles: {} nodes, depth {}, {} leaves",
            tree.len(),
            tree.depth(),
            tree.leaf_count()
        );
        println!("leaf chain (the `leaves` dimension):");
        let order: Vec<u32> = plist.iter_chain().collect();
        println!("  particles {:?} linked by next, -/ at the end", order);
        println!("down dimension: subtrees[8] per node, uniquely forward (disjoint).");
    }

    if want("quadtree") {
        println!("\n== §1 quadtree (computational geometry; Figure 5 in 2-D) ==\n");
        let pts: Vec<QPoint> = (0..12)
            .map(|i| QPoint {
                x: ((i * 37) % 12) as f64 * 3.0,
                y: ((i * 23) % 12) as f64 * 3.0,
                id: i as u32,
            })
            .collect();
        let t = Quadtree::build(pts);
        t.validate_shape().expect("valid shape");
        println!(
            "quadtree over 12 points: {} stored, leaf chain {:?}",
            t.len(),
            t.leaves().map(|p| p.id).collect::<Vec<_>>()
        );
        let hits = t.rectangle_query(5.0, 25.0, 5.0, 25.0);
        println!(
            "query [5,25]x[5,25] -> {} points: {:?}",
            hits.len(),
            hits.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        println!("{}", adds_structures::quadtree::ADDS_DECL);
    }
}
