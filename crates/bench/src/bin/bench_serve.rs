//! S1 — `adds-serve` throughput: requests/sec through a real in-process
//! HTTP server (TCP loopback), cold vs warm cache, serial vs parallel
//! evaluation.
//!
//! Writes `BENCH_serve.json` (schema `adds.bench-serve/v3`) next to
//! `BENCH_machine.json` so the repository carries a service-layer
//! perf-trajectory baseline. `/v2` added the `instrumentation` section:
//! the keep-alive healthz volley with metrics recording on (the default)
//! vs off (`instrument: false`), and the derived `overhead_pct`, which
//! `--check` pins at ≤ 2%. `/v3` adds `host_cpus`, the per-jobs cold
//! rows, and the `parallel` section comparing a cold multi-item batch at
//! `--jobs 1` vs `--jobs 4` (its `speedup` is only meaningful — and only
//! enforced by `--check` — on a host with ≥ 4 CPUs):
//!
//! ```text
//! cargo run --release -p adds-bench --bin bench_serve          # regen
//! cargo run --release -p adds-bench --bin bench_serve -- --check
//! ```
//!
//! `--check` validates an existing file's schema (used by CI to keep the
//! checked-in baseline from rotting); it does not compare numbers, which
//! are machine-dependent.
//!
//! Rows:
//! * `healthz` — the HTTP floor: connection setup + routing, no analysis.
//! * `healthz keepalive` — the same volley over persistent connections:
//!   routing cost without per-request TCP setup.
//! * `analyze cold@jobs=1|4` — every corpus program once against an
//!   empty cache (all misses: full parse/check/analyze per request), at
//!   both fan-out widths (per-function effects fan out within a request).
//! * `batch cold@jobs=1|4` — ONE `/v1/batch` request carrying the whole
//!   corpus against an empty cache: the parallel executor's headline
//!   number (items fan out across workers, merged in input order).
//! * `analyze warm` — repeated requests for one program (all hits: the
//!   content-addressed cache answers without recompute).
//! * `analyze warm+keepalive` — warm hits over persistent connections.
//! * `parallelize warm` — same as warm, for the transform endpoint.

use adds_serve::corpus;
use adds_serve::server::{ServeOptions, Server, ServerHandle};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const OUT_PATH: &str = "BENCH_serve.json";
const SCHEMA: &str = "adds.bench-serve/v3";
const JOBS: usize = 4;
const CLIENT_THREADS: usize = 4;
const WARM_REQUESTS: usize = 200;
const HEALTHZ_REQUESTS: usize = 400;
const REPS: usize = 3;

fn spawn_server() -> ServerHandle {
    spawn_server_with(true)
}

/// `instrument: false` is the bare baseline for the overhead row — no
/// latency histograms, gauges, or span checks on the request path.
fn spawn_server_with(instrument: bool) -> ServerHandle {
    spawn_server_jobs(JOBS, instrument)
}

/// A server at an explicit fan-out width (the serial-vs-parallel rows).
fn spawn_server_jobs(jobs: usize, instrument: bool) -> ServerHandle {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        instrument,
        ..ServeOptions::default()
    };
    Server::bind(&opts)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn workers")
}

/// One close-mode request: sends `Connection: close` explicitly (the
/// server holds HTTP/1.1 sockets open by default, so EOF framing needs
/// the header) and reads the response to EOF. Panics on a non-2xx status
/// so a broken server can't "win" the benchmark by failing fast.
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).expect("write");
    conn.write_all(body).expect("write body");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read");
    let status = raw
        .get(9..12)
        .and_then(|s| std::str::from_utf8(s).ok())
        .unwrap_or("???");
    assert!(
        status.starts_with('2'),
        "{method} {target} answered {status}"
    );
}

/// One request over an existing keep-alive connection; reads exactly one
/// response framed by `Content-Length` so the socket stays reusable.
fn request_keepalive(
    conn: &mut std::io::BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &[u8],
) {
    use std::io::BufRead;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    conn.get_mut().write_all(head.as_bytes()).expect("write");
    conn.get_mut().write_all(body).expect("write body");
    let mut status_line = String::new();
    conn.read_line(&mut status_line).expect("status line");
    assert!(
        status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or("???")
            .starts_with('2'),
        "{method} {target} answered {status_line}"
    );
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(": ") {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
}

/// Fan `total` identical requests over the client threads, each thread
/// holding ONE keep-alive connection; returns wall-clock nanoseconds.
fn volley_keepalive(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    total: usize,
) -> u64 {
    let body: Arc<Vec<u8>> = Arc::new(body.to_vec());
    let target = target.to_string();
    let method = method.to_string();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|i| {
            let n = total / CLIENT_THREADS + usize::from(i < total % CLIENT_THREADS);
            let (method, target, body) = (method.clone(), target.clone(), Arc::clone(&body));
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                // Requests are written as head + body; disable Nagle so
                // the body segment is not held for a delayed ACK.
                stream.set_nodelay(true).expect("nodelay");
                let mut conn = std::io::BufReader::new(stream);
                for _ in 0..n {
                    request_keepalive(&mut conn, &method, &target, &body);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    t0.elapsed().as_nanos() as u64
}

/// Fan `total` identical requests over `threads` client threads; returns
/// the wall-clock nanoseconds for the whole volley.
fn volley(addr: SocketAddr, method: &str, target: &str, body: &[u8], total: usize) -> u64 {
    let body: Arc<Vec<u8>> = Arc::new(body.to_vec());
    let target = target.to_string();
    let method = method.to_string();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|i| {
            let n = total / CLIENT_THREADS + usize::from(i < total % CLIENT_THREADS);
            let (method, target, body) = (method.clone(), target.clone(), Arc::clone(&body));
            std::thread::spawn(move || {
                for _ in 0..n {
                    request(addr, &method, &target, &body);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    t0.elapsed().as_nanos() as u64
}

struct Row {
    endpoint: &'static str,
    mode: &'static str,
    requests: usize,
    threads: usize,
    total_ns: u64,
}

/// The instrumentation-overhead measurement: the same keep-alive healthz
/// volley against a bare (`instrument: false`) and a default
/// (instrumented, tracing off) server.
struct Overhead {
    requests: usize,
    bare_ns: u64,
    instrumented_ns: u64,
}

impl Overhead {
    /// Percentage the instrumented volley is slower than bare (negative
    /// when measurement noise favours the instrumented run).
    fn pct(&self) -> f64 {
        (self.instrumented_ns as f64 - self.bare_ns as f64) / self.bare_ns.max(1) as f64 * 100.0
    }
}

impl Row {
    fn rps(&self) -> f64 {
        self.requests as f64 / (self.total_ns.max(1) as f64 / 1e9)
    }
}

/// The serial-vs-parallel cold-batch comparison, summarized so `--check`
/// can enforce the speedup without re-deriving it from rows.
struct Parallel {
    /// CPUs the measuring host exposed; a single-core host cannot show a
    /// wall-clock speedup no matter how well the executor scales, so
    /// `--check` only enforces the ratio when this is ≥ [`JOBS`].
    host_cpus: usize,
    serial_ns: u64,
    parallel_ns: u64,
}

impl Parallel {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// Volley size and rep count for the overhead pin. Larger and more
/// repeated than the throughput rows: the overhead ratio divides two
/// noisy numbers, so each side needs a volley long enough to amortize
/// scheduler jitter and enough reps for the min to reach the true floor.
/// 1000 keeps each client connection under the server's 256-request
/// keep-alive cap (4 client threads, one connection each).
const OVERHEAD_REQUESTS: usize = 1_000;
const OVERHEAD_REPS: usize = 15;

/// Min-of-reps keep-alive healthz volleys against a bare and an
/// instrumented server, interleaved rep by rep so slow host-load drift
/// lands on both flavours equally instead of biasing whichever side
/// happened to run later.
fn measure_overhead() -> Overhead {
    let bare = spawn_server_with(false);
    let instrumented = spawn_server_with(true);
    let sample = |server: &ServerHandle| {
        volley_keepalive(server.addr(), "GET", "/healthz", b"", OVERHEAD_REQUESTS)
    };
    // Discarded warm-up volley per server.
    sample(&bare);
    sample(&instrumented);
    let (mut bare_ns, mut instrumented_ns) = (u64::MAX, u64::MAX);
    for _ in 0..OVERHEAD_REPS {
        bare_ns = bare_ns.min(sample(&bare));
        instrumented_ns = instrumented_ns.min(sample(&instrumented));
    }
    bare.stop();
    instrumented.stop();
    Overhead {
        requests: OVERHEAD_REQUESTS,
        bare_ns,
        instrumented_ns,
    }
}

fn measure() -> Vec<Row> {
    let mut rows = Vec::new();

    // HTTP floor: no analysis, just accept/route/respond.
    let server = spawn_server();
    let healthz_ns = (0..REPS)
        .map(|_| volley(server.addr(), "GET", "/healthz", b"", HEALTHZ_REQUESTS))
        .min()
        .expect("reps");
    rows.push(Row {
        endpoint: "healthz",
        mode: "floor",
        requests: HEALTHZ_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: healthz_ns,
    });
    server.stop();

    // The same floor over persistent connections: one socket per client
    // thread, `Connection: keep-alive` framing.
    let server = spawn_server();
    let keepalive_ns = (0..REPS)
        .map(|_| volley_keepalive(server.addr(), "GET", "/healthz", b"", HEALTHZ_REQUESTS))
        .min()
        .expect("reps");
    rows.push(Row {
        endpoint: "healthz",
        mode: "keepalive",
        requests: HEALTHZ_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: keepalive_ns,
    });
    server.stop();

    // Cold: each corpus program once against an empty cache, at both
    // fan-out widths (per-function `effects` queries fan out within each
    // request). A fresh server per rep keeps every rep genuinely cold.
    for (jobs, mode) in [(1usize, "cold@jobs=1"), (JOBS, "cold@jobs=4")] {
        let cold_ns = (0..REPS)
            .map(|_| {
                let server = spawn_server_jobs(jobs, true);
                let mut total = 0u64;
                for e in corpus::CORPUS {
                    let t0 = std::time::Instant::now();
                    request(server.addr(), "POST", "/v1/analyze", e.source.as_bytes());
                    total += t0.elapsed().as_nanos() as u64;
                }
                server.stop();
                total
            })
            .min()
            .expect("reps");
        rows.push(Row {
            endpoint: "analyze",
            mode,
            requests: corpus::CORPUS.len(),
            threads: 1,
            total_ns: cold_ns,
        });
    }

    // Cold batch: ONE `/v1/batch` request carrying the whole corpus —
    // the parallel executor's headline number. Items fan out across the
    // session's workers and merge in input order; `jobs: 1` is the
    // serial baseline for the `parallel` section's speedup.
    let batch_body = {
        let items: Vec<String> = corpus::CORPUS
            .iter()
            .map(|e| format!(r#"{{"stage": "analyze", "program": "{}"}}"#, e.name))
            .collect();
        format!(r#"{{"items": [{}]}}"#, items.join(","))
    };
    for (jobs, mode) in [(1usize, "cold@jobs=1"), (JOBS, "cold@jobs=4")] {
        let batch_ns = (0..REPS)
            .map(|_| {
                let server = spawn_server_jobs(jobs, true);
                let t0 = std::time::Instant::now();
                request(server.addr(), "POST", "/v1/batch", batch_body.as_bytes());
                let ns = t0.elapsed().as_nanos() as u64;
                server.stop();
                ns
            })
            .min()
            .expect("reps");
        rows.push(Row {
            endpoint: "batch",
            mode,
            requests: corpus::CORPUS.len(),
            threads: jobs,
            total_ns: batch_ns,
        });
    }

    // Warm: repeated identical requests served from the cache.
    for (endpoint, target) in [
        ("analyze", "/v1/analyze"),
        ("parallelize", "/v1/parallelize"),
    ] {
        let server = spawn_server();
        let src = corpus::find("barnes_hut").expect("corpus").source;
        request(server.addr(), "POST", target, src.as_bytes()); // prime
        let warm_ns = (0..REPS)
            .map(|_| volley(server.addr(), "POST", target, src.as_bytes(), WARM_REQUESTS))
            .min()
            .expect("reps");
        let state = server.state();
        let stats = state.service.stats();
        assert_eq!(
            stats.get(&stats.misses),
            1,
            "warm volley must not recompute"
        );
        rows.push(Row {
            endpoint,
            mode: "warm",
            requests: WARM_REQUESTS,
            threads: CLIENT_THREADS,
            total_ns: warm_ns,
        });
        server.stop();
    }

    // Warm hits over persistent connections: cache answer + framing, no
    // per-request TCP setup.
    let server = spawn_server();
    let src = corpus::find("barnes_hut").expect("corpus").source;
    request(server.addr(), "POST", "/v1/analyze", src.as_bytes()); // prime
    let warm_ka_ns = (0..REPS)
        .map(|_| {
            volley_keepalive(
                server.addr(),
                "POST",
                "/v1/analyze",
                src.as_bytes(),
                WARM_REQUESTS,
            )
        })
        .min()
        .expect("reps");
    let state = server.state();
    let stats = state.service.stats();
    assert_eq!(
        stats.get(&stats.misses),
        1,
        "keep-alive warm volley must not recompute"
    );
    rows.push(Row {
        endpoint: "analyze",
        mode: "warm+keepalive",
        requests: WARM_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: warm_ka_ns,
    });
    server.stop();

    rows
}

fn render(rows: &[Row], overhead: &Overhead, parallel: &Parallel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"jobs\": {JOBS},");
    let _ = writeln!(s, "  \"host_cpus\": {},", parallel.host_cpus);
    let _ = writeln!(s, "  \"parallel\": {{");
    let _ = writeln!(s, "    \"endpoint\": \"batch\",");
    let _ = writeln!(s, "    \"items\": {},", corpus::CORPUS.len());
    let _ = writeln!(s, "    \"serial_ns\": {},", parallel.serial_ns);
    let _ = writeln!(s, "    \"parallel_ns\": {},", parallel.parallel_ns);
    let _ = writeln!(s, "    \"speedup\": {:.2}", parallel.speedup());
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"instrumentation\": {{");
    let _ = writeln!(s, "    \"endpoint\": \"healthz\",");
    let _ = writeln!(s, "    \"mode\": \"keepalive\",");
    let _ = writeln!(s, "    \"requests\": {},", overhead.requests);
    let _ = writeln!(s, "    \"bare_ns\": {},", overhead.bare_ns);
    let _ = writeln!(s, "    \"instrumented_ns\": {},", overhead.instrumented_ns);
    let _ = writeln!(s, "    \"overhead_pct\": {:.2}", overhead.pct());
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"endpoint\": \"{}\",", r.endpoint);
        let _ = writeln!(s, "      \"mode\": \"{}\",", r.mode);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"total_ns\": {},", r.total_ns);
        let _ = writeln!(s, "      \"requests_per_sec\": {:.0}", r.rps());
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Keys every row must carry; `--check` fails on any miss.
const REQUIRED_KEYS: &[&str] = &[
    "\"endpoint\"",
    "\"mode\"",
    "\"requests\"",
    "\"threads\"",
    "\"total_ns\"",
    "\"requests_per_sec\"",
];

/// The instrumentation-overhead ceiling `--check` enforces on the
/// committed baseline: metrics recording must stay within 2% of bare on
/// the healthz floor.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// The cold-batch speedup floor at 4 workers. Only enforced when the
/// baseline was measured on a host with ≥ [`JOBS`] CPUs — a narrower box
/// cannot show the wall-clock win however well the executor scales, so
/// there `--check` validates the section's shape but not the ratio.
const MIN_BATCH_SPEEDUP: f64 = 2.0;

/// Extract the number following `"key": ` anywhere in `text`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    text.split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split(['\n', ',', '}']).next())
        .and_then(|v| v.trim().parse().ok())
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!(
            "`{path}` does not carry schema `{SCHEMA}` — regenerate it with \
             `cargo run --release -p adds-bench --bin bench_serve`"
        ));
    }
    // `endpoint` appears once in the parallel header, once in the
    // instrumentation header, plus once per throughput row.
    let entries = text.matches("\"endpoint\"").count().saturating_sub(2);
    if entries < 2 {
        return Err(format!("`{path}` has {entries} rows, need >= 2"));
    }
    for key in REQUIRED_KEYS {
        if text.matches(key).count() < entries {
            return Err(format!(
                "`{path}` is stale: key {key} missing from some rows"
            ));
        }
    }
    let overhead = json_number(&text, "overhead_pct")
        .ok_or(format!("`{path}` carries no parseable overhead_pct"))?;
    if overhead > MAX_OVERHEAD_PCT {
        return Err(format!(
            "`{path}` pins instrumentation overhead at {overhead:.2}% > {MAX_OVERHEAD_PCT}% — \
             the disabled-instrumentation path regressed; profile it before re-baselining"
        ));
    }
    // The `parallel` section: shape always, ratio only when the baseline
    // host actually had the cores to show it.
    for key in ["serial_ns", "parallel_ns", "speedup", "host_cpus"] {
        if !text.contains(&format!("\"{key}\": ")) {
            return Err(format!(
                "`{path}` is stale: `{key}` missing — regenerate it with \
                 `cargo run --release -p adds-bench --bin bench_serve`"
            ));
        }
    }
    let host_cpus = json_number(&text, "host_cpus").unwrap_or(0.0);
    let speedup =
        json_number(&text, "speedup").ok_or(format!("`{path}` carries no parseable speedup"))?;
    if host_cpus >= JOBS as f64 && speedup < MIN_BATCH_SPEEDUP {
        return Err(format!(
            "`{path}` pins cold-batch speedup at {speedup:.2}x < {MIN_BATCH_SPEEDUP}x on a \
             {host_cpus}-cpu host — the parallel executor regressed; profile before re-baselining"
        ));
    }
    // Per-jobs cold rows present for both endpoints.
    for mode in ["cold@jobs=1", "cold@jobs=4"] {
        if text.matches(&format!("\"mode\": \"{mode}\"")).count() < 2 {
            return Err(format!(
                "`{path}` is stale: missing `{mode}` rows for analyze and batch"
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        match check(OUT_PATH) {
            Ok(()) => println!("{OUT_PATH}: schema ok"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let rows = measure();
    let overhead = measure_overhead();
    let batch_ns = |mode: &str| {
        rows.iter()
            .find(|r| r.endpoint == "batch" && r.mode == mode)
            .expect("batch row")
            .total_ns
    };
    let parallel = Parallel {
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_ns: batch_ns("cold@jobs=1"),
        parallel_ns: batch_ns("cold@jobs=4"),
    };
    for r in &rows {
        println!(
            "{:<12} {:<5} {:>5} requests x{} threads  {:>10.0} req/s",
            r.endpoint,
            r.mode,
            r.requests,
            r.threads,
            r.rps()
        );
    }
    println!(
        "instrumentation overhead (healthz keepalive): {:.2}% (bare {} ns, instrumented {} ns)",
        overhead.pct(),
        overhead.bare_ns,
        overhead.instrumented_ns
    );
    println!(
        "cold batch speedup at {JOBS} workers: {:.2}x on {} cpus (serial {} ns, parallel {} ns)",
        parallel.speedup(),
        parallel.host_cpus,
        parallel.serial_ns,
        parallel.parallel_ns
    );
    let doc = render(&rows, &overhead, &parallel);
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
}
