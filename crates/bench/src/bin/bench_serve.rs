//! S1 — `adds-serve` throughput and tail latency: requests/sec and
//! p50/p99/p999 through a real in-process HTTP server (TCP loopback),
//! cold vs warm cache, closed- vs open-loop arrival, and a many-
//! connection soak against the event-driven reactor engine.
//!
//! Writes `BENCH_serve.json` (schema `adds.bench-serve/v4`) next to
//! `BENCH_machine.json` so the repository carries a service-layer
//! perf-trajectory baseline. `/v2` added the `instrumentation` section
//! (metrics on vs off, pinned ≤ 2%); `/v3` added `host_cpus`, per-jobs
//! cold rows, and the serial-vs-parallel `parallel` section; `/v4` adds
//! per-row `latency_us` percentiles, the `open_loop` section (arrivals
//! scheduled at a fixed rate — latency is measured from the *scheduled*
//! send time, so queueing delay is not coordinated away), and the `soak`
//! section (thousands of concurrent keep-alive connections with churn,
//! probed for tail latency while the reactor holds them all):
//!
//! ```text
//! cargo run --release -p adds-bench --bin bench_serve               # regen
//! cargo run --release -p adds-bench --bin bench_serve -- --check
//! cargo run --release -p adds-bench --bin bench_serve -- --soak-smoke
//! ```
//!
//! `--check` validates an existing file's schema and invariant gates
//! (used by CI to keep the checked-in baseline from rotting); absolute
//! numbers are machine-dependent and not compared. The throughput gates
//! (open-loop ratio, batch speedup) are enforced only when the file was
//! baselined on a host with enough CPUs to show them.
//!
//! `--soak-smoke` runs a reduced live soak (no file written): open
//! `ADDS_SOAK_CONNS` connections (default 512) with churn for
//! `ADDS_SOAK_SECS` seconds (default 2) and fail unless every probe
//! succeeded and the reactor actually held the connections.
//!
//! Rows (all against the default reactor engine):
//! * `healthz floor` — close-mode: connection setup + routing per request.
//! * `healthz keepalive` — the same volley over persistent connections.
//! * `healthz open-loop` — keep-alive volley at a *scheduled* arrival
//!   rate targeting a multiple of the close-mode floor.
//! * `analyze cold@jobs=1|4`, `batch cold@jobs=1|4` — empty-cache
//!   analysis, serial vs fanned out.
//! * `analyze warm`, `parallelize warm`, `analyze warm+keepalive` —
//!   content-addressed cache hits.
//! * `healthz soak` — probe latency while thousands of idle/churning
//!   connections are parked on the reactor.

use adds_serve::corpus;
use adds_serve::server::{ServeOptions, Server, ServerHandle};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OUT_PATH: &str = "BENCH_serve.json";
const SCHEMA: &str = "adds.bench-serve/v4";
const JOBS: usize = 4;
const CLIENT_THREADS: usize = 4;
const WARM_REQUESTS: usize = 200;
const HEALTHZ_REQUESTS: usize = 400;
const REPS: usize = 3;

/// Open-loop arrival target, as a multiple of the measured close-mode
/// floor. The `--check` gate ([`MIN_OPEN_LOOP_RATIO`]) asks the achieved
/// rate to stay ≥ 10× the floor; targeting higher leaves headroom.
const OPEN_LOOP_TARGET_X: f64 = 16.0;
/// Cap on open-loop volley size so a fast host doesn't run forever.
const OPEN_LOOP_MAX_REQUESTS: usize = 60_000;
/// Paced keep-alive connections for the open-loop row.
const OPEN_LOOP_CONNS: usize = 16;

/// Full-run soak scale and duration (smoke mode shrinks via env).
const SOAK_CONNS: usize = 10_000;
const SOAK_SECS: u64 = 5;
/// Latency probers running during the soak.
const SOAK_PROBERS: usize = 4;
/// Per-prober pacing: one scheduled probe every 2ms (500/s/thread).
const PROBE_INTERVAL: Duration = Duration::from_millis(2);
/// Reconnect before the server's 256-requests-per-connection cap.
const KEEPALIVE_RECONNECT: usize = 250;

fn spawn_server() -> ServerHandle {
    spawn_server_with(true)
}

/// `instrument: false` is the bare baseline for the overhead row — no
/// latency histograms, gauges, or span checks on the request path.
fn spawn_server_with(instrument: bool) -> ServerHandle {
    spawn_server_jobs(JOBS, instrument)
}

/// A server at an explicit fan-out width (the serial-vs-parallel rows).
fn spawn_server_jobs(jobs: usize, instrument: bool) -> ServerHandle {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        instrument,
        ..ServeOptions::default()
    };
    Server::bind(&opts)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn workers")
}

/// One close-mode request: sends `Connection: close` explicitly (the
/// server holds HTTP/1.1 sockets open by default, so EOF framing needs
/// the header) and reads the response to EOF. Panics on a non-2xx status
/// so a broken server can't "win" the benchmark by failing fast.
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).expect("write");
    conn.write_all(body).expect("write body");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read");
    let status = raw
        .get(9..12)
        .and_then(|s| std::str::from_utf8(s).ok())
        .unwrap_or("???");
    assert!(
        status.starts_with('2'),
        "{method} {target} answered {status}"
    );
}

/// One request over an existing keep-alive connection; reads exactly one
/// response framed by `Content-Length` so the socket stays reusable.
fn request_keepalive(
    conn: &mut std::io::BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &[u8],
) {
    use std::io::BufRead;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    conn.get_mut().write_all(head.as_bytes()).expect("write");
    conn.get_mut().write_all(body).expect("write body");
    let mut status_line = String::new();
    conn.read_line(&mut status_line).expect("status line");
    assert!(
        status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or("???")
            .starts_with('2'),
        "{method} {target} answered {status_line}"
    );
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(": ") {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
}

fn keepalive_conn(addr: SocketAddr) -> std::io::BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    // Requests are written as head + body; disable Nagle so the body
    // segment is not held for a delayed ACK.
    stream.set_nodelay(true).expect("nodelay");
    std::io::BufReader::new(stream)
}

/// Latency percentiles in microseconds, computed from a full sample set
/// (no histogram bucketing — the sample counts here are small enough to
/// sort exactly).
#[derive(Clone, Copy, Default)]
struct Latency {
    p50: u64,
    p99: u64,
    p999: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl Latency {
    fn from_samples(mut us: Vec<u64>) -> Latency {
        us.sort_unstable();
        Latency {
            p50: percentile(&us, 0.50),
            p99: percentile(&us, 0.99),
            p999: percentile(&us, 0.999),
        }
    }
}

/// Fan `total` identical requests over the client threads, each thread
/// holding ONE keep-alive connection; returns wall-clock nanoseconds and
/// per-request latencies (closed-loop: measured from the send).
fn volley_keepalive(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    total: usize,
) -> (u64, Vec<u64>) {
    let body: Arc<Vec<u8>> = Arc::new(body.to_vec());
    let target = target.to_string();
    let method = method.to_string();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|i| {
            let n = total / CLIENT_THREADS + usize::from(i < total % CLIENT_THREADS);
            let (method, target, body) = (method.clone(), target.clone(), Arc::clone(&body));
            std::thread::spawn(move || {
                let mut conn = keepalive_conn(addr);
                let mut lat = Vec::with_capacity(n);
                for _ in 0..n {
                    let s = Instant::now();
                    request_keepalive(&mut conn, &method, &target, &body);
                    lat.push(s.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(total);
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    (t0.elapsed().as_nanos() as u64, lat)
}

/// Fan `total` identical requests over the client threads, one fresh
/// connection per request; returns wall-clock nanoseconds and
/// per-request latencies.
fn volley(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    total: usize,
) -> (u64, Vec<u64>) {
    let body: Arc<Vec<u8>> = Arc::new(body.to_vec());
    let target = target.to_string();
    let method = method.to_string();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|i| {
            let n = total / CLIENT_THREADS + usize::from(i < total % CLIENT_THREADS);
            let (method, target, body) = (method.clone(), target.clone(), Arc::clone(&body));
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(n);
                for _ in 0..n {
                    let s = Instant::now();
                    request(addr, &method, &target, &body);
                    lat.push(s.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(total);
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    (t0.elapsed().as_nanos() as u64, lat)
}

struct Row {
    endpoint: &'static str,
    mode: &'static str,
    requests: usize,
    threads: usize,
    total_ns: u64,
    lat: Latency,
}

impl Row {
    fn rps(&self) -> f64 {
        self.requests as f64 / (self.total_ns.max(1) as f64 / 1e9)
    }
}

/// The instrumentation-overhead measurement: the same keep-alive healthz
/// volley against a bare (`instrument: false`) and a default
/// (instrumented, tracing off) server.
struct Overhead {
    requests: usize,
    bare_ns: u64,
    instrumented_ns: u64,
}

impl Overhead {
    /// Percentage the instrumented volley is slower than bare (negative
    /// when measurement noise favours the instrumented run).
    fn pct(&self) -> f64 {
        (self.instrumented_ns as f64 - self.bare_ns as f64) / self.bare_ns.max(1) as f64 * 100.0
    }
}

/// The serial-vs-parallel cold-batch comparison, summarized so `--check`
/// can enforce the speedup without re-deriving it from rows.
struct Parallel {
    /// CPUs the measuring host exposed; a single-core host cannot show a
    /// wall-clock speedup no matter how well the executor scales, so
    /// `--check` only enforces the ratio when this is ≥ [`JOBS`].
    host_cpus: usize,
    serial_ns: u64,
    parallel_ns: u64,
}

impl Parallel {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// The open-loop result: arrivals were *scheduled* at `target_rps`
/// regardless of completions, and each latency is measured from its
/// scheduled arrival time — a backed-up server accrues queueing delay
/// instead of silently slowing the offered load (no coordinated
/// omission).
struct OpenLoop {
    floor_rps: f64,
    target_rps: f64,
    requests: usize,
    total_ns: u64,
    lat: Latency,
}

impl OpenLoop {
    fn achieved_rps(&self) -> f64 {
        self.requests as f64 / (self.total_ns.max(1) as f64 / 1e9)
    }
    fn ratio_vs_floor(&self) -> f64 {
        self.achieved_rps() / self.floor_rps.max(1.0)
    }
}

/// The soak result: probe latency while `connections` keep-alive sockets
/// (mostly idle, a slice churning) are parked on the reactor.
struct Soak {
    connections: usize,
    peak_open: u64,
    churned: usize,
    probe_requests: usize,
    total_ns: u64,
    lat: Latency,
}

/// Volley size and rep count for the overhead pin. Larger and more
/// repeated than the throughput rows: the overhead ratio divides two
/// noisy numbers, so each side needs a volley long enough to amortize
/// scheduler jitter and enough reps for the min to reach the true floor.
/// 1000 keeps each client connection under the server's 256-request
/// keep-alive cap (4 client threads, one connection each).
const OVERHEAD_REQUESTS: usize = 1_000;
const OVERHEAD_REPS: usize = 15;

/// Min-of-reps keep-alive healthz volleys against a bare and an
/// instrumented server, interleaved rep by rep so slow host-load drift
/// lands on both flavours equally instead of biasing whichever side
/// happened to run later.
fn measure_overhead() -> Overhead {
    let bare = spawn_server_with(false);
    let instrumented = spawn_server_with(true);
    let sample = |server: &ServerHandle| {
        volley_keepalive(server.addr(), "GET", "/healthz", b"", OVERHEAD_REQUESTS).0
    };
    // Discarded warm-up volley per server.
    sample(&bare);
    sample(&instrumented);
    let (mut bare_ns, mut instrumented_ns) = (u64::MAX, u64::MAX);
    for _ in 0..OVERHEAD_REPS {
        bare_ns = bare_ns.min(sample(&bare));
        instrumented_ns = instrumented_ns.min(sample(&instrumented));
    }
    bare.stop();
    instrumented.stop();
    Overhead {
        requests: OVERHEAD_REQUESTS,
        bare_ns,
        instrumented_ns,
    }
}

/// Min-of-reps wrapper keeping the latency samples of the fastest rep.
fn best_of(reps: usize, mut f: impl FnMut() -> (u64, Vec<u64>)) -> (u64, Vec<u64>) {
    let mut best: Option<(u64, Vec<u64>)> = None;
    for _ in 0..reps {
        let (ns, lat) = f();
        if best.as_ref().is_none_or(|(b, _)| ns < *b) {
            best = Some((ns, lat));
        }
    }
    best.expect("reps")
}

fn measure() -> Vec<Row> {
    let mut rows = Vec::new();

    // HTTP floor: no analysis, just accept/route/respond.
    let server = spawn_server();
    let (healthz_ns, lat) = best_of(REPS, || {
        volley(server.addr(), "GET", "/healthz", b"", HEALTHZ_REQUESTS)
    });
    rows.push(Row {
        endpoint: "healthz",
        mode: "floor",
        requests: HEALTHZ_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: healthz_ns,
        lat: Latency::from_samples(lat),
    });
    server.stop();

    // The same floor over persistent connections: one socket per client
    // thread, `Connection: keep-alive` framing.
    let server = spawn_server();
    let (keepalive_ns, lat) = best_of(REPS, || {
        volley_keepalive(server.addr(), "GET", "/healthz", b"", HEALTHZ_REQUESTS)
    });
    rows.push(Row {
        endpoint: "healthz",
        mode: "keepalive",
        requests: HEALTHZ_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: keepalive_ns,
        lat: Latency::from_samples(lat),
    });
    server.stop();

    // Cold: each corpus program once against an empty cache, at both
    // fan-out widths (per-function `effects` queries fan out within each
    // request). A fresh server per rep keeps every rep genuinely cold.
    for (jobs, mode) in [(1usize, "cold@jobs=1"), (JOBS, "cold@jobs=4")] {
        let (cold_ns, lat) = best_of(REPS, || {
            let server = spawn_server_jobs(jobs, true);
            let mut total = 0u64;
            let mut lat = Vec::new();
            for e in corpus::CORPUS {
                let t0 = Instant::now();
                request(server.addr(), "POST", "/v1/analyze", e.source.as_bytes());
                let ns = t0.elapsed().as_nanos() as u64;
                total += ns;
                lat.push(ns / 1_000);
            }
            server.stop();
            (total, lat)
        });
        rows.push(Row {
            endpoint: "analyze",
            mode,
            requests: corpus::CORPUS.len(),
            threads: 1,
            total_ns: cold_ns,
            lat: Latency::from_samples(lat),
        });
    }

    // Cold batch: ONE `/v1/batch` request carrying the whole corpus —
    // the parallel executor's headline number. Items fan out across the
    // session's workers and merge in input order; `jobs: 1` is the
    // serial baseline for the `parallel` section's speedup.
    let batch_body = {
        let items: Vec<String> = corpus::CORPUS
            .iter()
            .map(|e| format!(r#"{{"stage": "analyze", "program": "{}"}}"#, e.name))
            .collect();
        format!(r#"{{"items": [{}]}}"#, items.join(","))
    };
    for (jobs, mode) in [(1usize, "cold@jobs=1"), (JOBS, "cold@jobs=4")] {
        let (batch_ns, lat) = best_of(REPS, || {
            let server = spawn_server_jobs(jobs, true);
            let t0 = Instant::now();
            request(server.addr(), "POST", "/v1/batch", batch_body.as_bytes());
            let ns = t0.elapsed().as_nanos() as u64;
            server.stop();
            (ns, vec![ns / 1_000])
        });
        rows.push(Row {
            endpoint: "batch",
            mode,
            requests: corpus::CORPUS.len(),
            threads: jobs,
            total_ns: batch_ns,
            lat: Latency::from_samples(lat),
        });
    }

    // Warm: repeated identical requests served from the cache.
    for (endpoint, target) in [
        ("analyze", "/v1/analyze"),
        ("parallelize", "/v1/parallelize"),
    ] {
        let server = spawn_server();
        let src = corpus::find("barnes_hut").expect("corpus").source;
        request(server.addr(), "POST", target, src.as_bytes()); // prime
        let (warm_ns, lat) = best_of(REPS, || {
            volley(server.addr(), "POST", target, src.as_bytes(), WARM_REQUESTS)
        });
        let state = server.state();
        let stats = state.service.stats();
        assert_eq!(
            stats.get(&stats.misses),
            1,
            "warm volley must not recompute"
        );
        rows.push(Row {
            endpoint,
            mode: "warm",
            requests: WARM_REQUESTS,
            threads: CLIENT_THREADS,
            total_ns: warm_ns,
            lat: Latency::from_samples(lat),
        });
        server.stop();
    }

    // Warm hits over persistent connections: cache answer + framing, no
    // per-request TCP setup.
    let server = spawn_server();
    let src = corpus::find("barnes_hut").expect("corpus").source;
    request(server.addr(), "POST", "/v1/analyze", src.as_bytes()); // prime
    let (warm_ka_ns, lat) = best_of(REPS, || {
        volley_keepalive(
            server.addr(),
            "POST",
            "/v1/analyze",
            src.as_bytes(),
            WARM_REQUESTS,
        )
    });
    let state = server.state();
    let stats = state.service.stats();
    assert_eq!(
        stats.get(&stats.misses),
        1,
        "keep-alive warm volley must not recompute"
    );
    rows.push(Row {
        endpoint: "analyze",
        mode: "warm+keepalive",
        requests: WARM_REQUESTS,
        threads: CLIENT_THREADS,
        total_ns: warm_ka_ns,
        lat: Latency::from_samples(lat),
    });
    server.stop();

    rows
}

/// The open-loop volley: [`OPEN_LOOP_CONNS`] paced keep-alive
/// connections, arrival k scheduled at `t0 + k / target_rps` globally
/// (round-robin across connections). A thread that falls behind sends
/// immediately — the schedule never slows down — and each latency runs
/// from the scheduled time, so server backlog shows up as tail latency.
fn measure_open_loop(floor_rps: f64) -> OpenLoop {
    let target_rps = (floor_rps * OPEN_LOOP_TARGET_X).max(1000.0);
    // Two seconds of offered load, bounded.
    let total = ((target_rps * 2.0) as usize).clamp(1_000, OPEN_LOOP_MAX_REQUESTS);
    let server = spawn_server();
    let addr = server.addr();
    let interval_ns = 1e9 / target_rps;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..OPEN_LOOP_CONNS)
        .map(|i| {
            let n = total / OPEN_LOOP_CONNS + usize::from(i < total % OPEN_LOOP_CONNS);
            std::thread::spawn(move || {
                let mut conn = keepalive_conn(addr);
                let mut served = 0usize;
                let mut lat = Vec::with_capacity(n);
                for k in 0..n {
                    let sched = t0
                        + Duration::from_nanos(
                            ((i + k * OPEN_LOOP_CONNS) as f64 * interval_ns) as u64,
                        );
                    if let Some(wait) = sched.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    if served == KEEPALIVE_RECONNECT {
                        conn = keepalive_conn(addr);
                        served = 0;
                    }
                    request_keepalive(&mut conn, "GET", "/healthz", b"");
                    served += 1;
                    lat.push(Instant::now().saturating_duration_since(sched).as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(total);
    for h in handles {
        lat.extend(h.join().expect("open-loop thread"));
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    server.stop();
    OpenLoop {
        floor_rps,
        target_rps,
        requests: total,
        total_ns,
        lat: Latency::from_samples(lat),
    }
}

/// The soak: park `conns_target` (fd-clamped) keep-alive connections on
/// one reactor, churn a tenth of them continuously (connect + close),
/// and measure probe latency through the crowd. Returns the result; in
/// smoke mode the caller asserts on it instead of writing a file.
fn run_soak(conns_target: usize, secs: u64) -> Soak {
    // Every client connection costs 2 fds in this process (client end +
    // server end), plus headroom for everything else.
    let limit = adds_net::sys::raise_nofile_limit();
    let conns = conns_target
        .min(((limit.saturating_sub(200)) / 2) as usize)
        .max(16);
    let churn_pool = (conns / 10).max(1);
    let idle = conns.saturating_sub(churn_pool + SOAK_PROBERS);

    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: JOBS,
        max_connections: conns + 64,
        // Parked connections must survive the whole soak: the deadlines
        // are what's *not* under test here.
        read_timeout: Duration::from_secs(600),
        idle_timeout: Duration::from_secs(600),
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts).expect("bind").spawn().expect("spawn");
    let addr = server.addr();

    // Open the idle herd from a few threads (connect() blocks until the
    // kernel queues the connection, so this also paces the accept flood).
    const OPENERS: usize = 8;
    let opener_handles: Vec<_> = (0..OPENERS)
        .map(|i| {
            let n = idle / OPENERS + usize::from(i < idle % OPENERS);
            std::thread::spawn(move || {
                (0..n)
                    .map(|_| {
                        let c = TcpStream::connect(addr).expect("soak connect");
                        c.set_nodelay(true).unwrap();
                        c
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let idle_conns: Vec<Vec<TcpStream>> = opener_handles
        .into_iter()
        .map(|h| h.join().expect("opener"))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let churned = Arc::new(AtomicUsize::new(0));

    // Churn: two threads each cycle a half of the churn pool — close the
    // oldest, open a fresh one — for the whole soak.
    let churn_handles: Vec<_> = (0..2)
        .map(|i| {
            let n = churn_pool / 2 + usize::from(i < churn_pool % 2);
            let (stop, churned) = (Arc::clone(&stop), Arc::clone(&churned));
            std::thread::spawn(move || {
                let mut pool: std::collections::VecDeque<TcpStream> = (0..n)
                    .map(|_| TcpStream::connect(addr).expect("churn connect"))
                    .collect();
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(fresh) = TcpStream::connect(addr) {
                        pool.push_back(fresh);
                        drop(pool.pop_front());
                        churned.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    // Probers: paced keep-alive healthz, latency from the scheduled time.
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(secs);
    let probe_handles: Vec<_> = (0..SOAK_PROBERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = keepalive_conn(addr);
                let mut served = 0usize;
                let mut lat = Vec::new();
                let mut k = 0u32;
                loop {
                    let sched = t0 + PROBE_INTERVAL * k;
                    k += 1;
                    if sched >= deadline {
                        break;
                    }
                    if let Some(wait) = sched.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    if served == KEEPALIVE_RECONNECT {
                        conn = keepalive_conn(addr);
                        served = 0;
                    }
                    request_keepalive(&mut conn, "GET", "/healthz", b"");
                    served += 1;
                    lat.push(Instant::now().saturating_duration_since(sched).as_micros() as u64);
                }
                lat
            })
        })
        .collect();

    // Sample the reactor's open-connection gauge while the soak runs.
    let mut peak_open = 0u64;
    while Instant::now() < deadline {
        peak_open = peak_open.max(server.state().net.snapshot().open);
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut lat = Vec::new();
    for h in probe_handles {
        lat.extend(h.join().expect("prober"));
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    stop.store(true, Ordering::SeqCst);
    for h in churn_handles {
        let _ = h.join();
    }
    let probe_requests = lat.len();
    drop(idle_conns);
    server.stop();
    Soak {
        connections: conns,
        peak_open,
        churned: churned.load(Ordering::Relaxed),
        probe_requests,
        total_ns,
        lat: Latency::from_samples(lat),
    }
}

fn render(
    rows: &[Row],
    overhead: &Overhead,
    parallel: &Parallel,
    open_loop: &OpenLoop,
    soak: &Soak,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"engine\": \"reactor\",");
    let _ = writeln!(s, "  \"jobs\": {JOBS},");
    let _ = writeln!(s, "  \"host_cpus\": {},", parallel.host_cpus);
    let _ = writeln!(s, "  \"parallel\": {{");
    let _ = writeln!(s, "    \"endpoint\": \"batch\",");
    let _ = writeln!(s, "    \"items\": {},", corpus::CORPUS.len());
    let _ = writeln!(s, "    \"serial_ns\": {},", parallel.serial_ns);
    let _ = writeln!(s, "    \"parallel_ns\": {},", parallel.parallel_ns);
    let _ = writeln!(s, "    \"speedup\": {:.2}", parallel.speedup());
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"instrumentation\": {{");
    let _ = writeln!(s, "    \"endpoint\": \"healthz\",");
    let _ = writeln!(s, "    \"mode\": \"keepalive\",");
    let _ = writeln!(s, "    \"requests\": {},", overhead.requests);
    let _ = writeln!(s, "    \"bare_ns\": {},", overhead.bare_ns);
    let _ = writeln!(s, "    \"instrumented_ns\": {},", overhead.instrumented_ns);
    let _ = writeln!(s, "    \"overhead_pct\": {:.2}", overhead.pct());
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"open_loop\": {{");
    let _ = writeln!(s, "    \"endpoint\": \"healthz\",");
    let _ = writeln!(s, "    \"connections\": {OPEN_LOOP_CONNS},");
    let _ = writeln!(s, "    \"floor_rps\": {:.0},", open_loop.floor_rps);
    let _ = writeln!(s, "    \"target_rps\": {:.0},", open_loop.target_rps);
    let _ = writeln!(s, "    \"achieved_rps\": {:.0},", open_loop.achieved_rps());
    let _ = writeln!(
        s,
        "    \"ratio_vs_floor\": {:.2}",
        open_loop.ratio_vs_floor()
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"soak\": {{");
    let _ = writeln!(s, "    \"connections\": {},", soak.connections);
    let _ = writeln!(s, "    \"peak_open\": {},", soak.peak_open);
    let _ = writeln!(s, "    \"churned\": {},", soak.churned);
    let _ = writeln!(s, "    \"probe_requests\": {}", soak.probe_requests);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"endpoint\": \"{}\",", r.endpoint);
        let _ = writeln!(s, "      \"mode\": \"{}\",", r.mode);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"total_ns\": {},", r.total_ns);
        let _ = writeln!(s, "      \"requests_per_sec\": {:.0},", r.rps());
        let _ = writeln!(
            s,
            "      \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}",
            r.lat.p50, r.lat.p99, r.lat.p999
        );
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Keys every row must carry; `--check` fails on any miss.
const REQUIRED_KEYS: &[&str] = &[
    "\"endpoint\"",
    "\"mode\"",
    "\"requests\"",
    "\"threads\"",
    "\"total_ns\"",
    "\"requests_per_sec\"",
    "\"latency_us\"",
];

/// The instrumentation-overhead ceiling `--check` enforces on the
/// committed baseline: metrics recording must stay within 2% of bare on
/// the healthz floor.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// The cold-batch speedup floor at 4 workers. Only enforced when the
/// baseline was measured on a host with ≥ [`JOBS`] CPUs — a narrower box
/// cannot show the wall-clock win however well the executor scales, so
/// there `--check` validates the section's shape but not the ratio.
const MIN_BATCH_SPEEDUP: f64 = 2.0;

/// The open-loop floor: keep-alive event-driven serving must sustain at
/// least this multiple of the close-mode healthz floor. Like the batch
/// speedup, only enforced when the baseline host had ≥ 2 CPUs — with
/// client and server time-slicing one core, the achieved rate measures
/// the scheduler, not the reactor.
const MIN_OPEN_LOOP_RATIO: f64 = 10.0;

/// The soak row must have been measured over at least this many
/// concurrent connections for the baseline to mean anything.
const MIN_SOAK_CONNECTIONS: f64 = 256.0;

/// Extract the number following `"key": ` anywhere in `text`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    text.split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split(['\n', ',', '}']).next())
        .and_then(|v| v.trim().parse().ok())
}

/// Parse every row's `latency_us` block; returns (p50, p99, p999) per row.
fn latency_blocks(text: &str) -> Vec<(u64, u64, u64)> {
    text.split("\"latency_us\": {")
        .skip(1)
        .filter_map(|rest| {
            let block = rest.split('}').next()?;
            let field = |key: &str| -> Option<u64> {
                block
                    .split(&format!("\"{key}\": "))
                    .nth(1)?
                    .split([',', '}'])
                    .next()?
                    .trim()
                    .parse()
                    .ok()
            };
            Some((field("p50")?, field("p99")?, field("p999")?))
        })
        .collect()
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!(
            "`{path}` does not carry schema `{SCHEMA}` — regenerate it with \
             `cargo run --release -p adds-bench --bin bench_serve`"
        ));
    }
    // One `latency_us` block per throughput row.
    let entries = text.matches("\"latency_us\"").count();
    if entries < 2 {
        return Err(format!("`{path}` has {entries} rows, need >= 2"));
    }
    for key in REQUIRED_KEYS {
        if text.matches(key).count() < entries {
            return Err(format!(
                "`{path}` is stale: key {key} missing from some rows"
            ));
        }
    }
    // Percentiles must be populated and ordered on at least two rows
    // (sub-microsecond p50s can legitimately floor to 0 on loopback
    // healthz, but a baseline where *nothing* resolved is broken).
    let populated = latency_blocks(&text)
        .iter()
        .filter(|(p50, p99, p999)| *p50 > 0 && p99 >= p50 && p999 >= p99)
        .count();
    if populated < 2 {
        return Err(format!(
            "`{path}` has {populated} rows with populated ordered percentiles, need >= 2 — \
             the latency capture is broken; regenerate"
        ));
    }
    let overhead = json_number(&text, "overhead_pct")
        .ok_or(format!("`{path}` carries no parseable overhead_pct"))?;
    if overhead > MAX_OVERHEAD_PCT {
        return Err(format!(
            "`{path}` pins instrumentation overhead at {overhead:.2}% > {MAX_OVERHEAD_PCT}% — \
             the disabled-instrumentation path regressed; profile it before re-baselining"
        ));
    }
    // The `parallel` section: shape always, ratio only when the baseline
    // host actually had the cores to show it.
    for key in ["serial_ns", "parallel_ns", "speedup", "host_cpus"] {
        if !text.contains(&format!("\"{key}\": ")) {
            return Err(format!(
                "`{path}` is stale: `{key}` missing — regenerate it with \
                 `cargo run --release -p adds-bench --bin bench_serve`"
            ));
        }
    }
    let host_cpus = json_number(&text, "host_cpus").unwrap_or(0.0);
    let speedup =
        json_number(&text, "speedup").ok_or(format!("`{path}` carries no parseable speedup"))?;
    if host_cpus >= JOBS as f64 && speedup < MIN_BATCH_SPEEDUP {
        return Err(format!(
            "`{path}` pins cold-batch speedup at {speedup:.2}x < {MIN_BATCH_SPEEDUP}x on a \
             {host_cpus}-cpu host — the parallel executor regressed; profile before re-baselining"
        ));
    }
    // The `open_loop` section: shape always, the 10x-over-floor ratio
    // only on a host where client and server had separate cores.
    for key in ["floor_rps", "target_rps", "achieved_rps", "ratio_vs_floor"] {
        if !text.contains(&format!("\"{key}\": ")) {
            return Err(format!(
                "`{path}` is stale: open_loop `{key}` missing — regenerate"
            ));
        }
    }
    let ratio = json_number(&text, "ratio_vs_floor")
        .ok_or(format!("`{path}` carries no parseable ratio_vs_floor"))?;
    if host_cpus >= 2.0 && ratio < MIN_OPEN_LOOP_RATIO {
        return Err(format!(
            "`{path}` pins open-loop keep-alive throughput at {ratio:.2}x the close-mode floor \
             < {MIN_OPEN_LOOP_RATIO}x on a {host_cpus}-cpu host — the reactor regressed; \
             profile before re-baselining"
        ));
    }
    // The `soak` section: enough connections to mean anything. (Scoped
    // to the section — `open_loop` carries a `connections` key too.)
    let soak_text = text
        .split("\"soak\": {")
        .nth(1)
        .ok_or(format!("`{path}` is stale: `soak` section missing"))?;
    let soak_conns = json_number(soak_text, "connections")
        .ok_or(format!("`{path}` carries no parseable soak connections"))?;
    if soak_conns < MIN_SOAK_CONNECTIONS {
        return Err(format!(
            "`{path}` soaked only {soak_conns} connections, need >= {MIN_SOAK_CONNECTIONS}"
        ));
    }
    // Per-jobs cold rows present for both endpoints.
    for mode in ["cold@jobs=1", "cold@jobs=4"] {
        if text.matches(&format!("\"mode\": \"{mode}\"")).count() < 2 {
            return Err(format!(
                "`{path}` is stale: missing `{mode}` rows for analyze and batch"
            ));
        }
    }
    Ok(())
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The CI smoke: a reduced live soak (no file written). Fails unless the
/// reactor actually held the herd and every probe got an answer.
fn soak_smoke() {
    let conns = env_usize("ADDS_SOAK_CONNS", 512);
    let secs = env_usize("ADDS_SOAK_SECS", 2) as u64;
    let soak = run_soak(conns, secs);
    println!(
        "soak-smoke: {} connections (peak open {}), {} churned, {} probes, \
         p50 {}us p99 {}us p999 {}us",
        soak.connections,
        soak.peak_open,
        soak.churned,
        soak.probe_requests,
        soak.lat.p50,
        soak.lat.p99,
        soak.lat.p999
    );
    assert!(
        soak.peak_open as usize >= soak.connections * 9 / 10,
        "reactor held {} connections at peak, expected ~{}",
        soak.peak_open,
        soak.connections
    );
    assert!(soak.probe_requests > 0, "no probes completed");
    assert!(soak.churned > 0, "churn never cycled a connection");
    assert!(
        soak.lat.p999 >= soak.lat.p99 && soak.lat.p99 >= soak.lat.p50,
        "percentiles out of order"
    );
    println!("soak-smoke: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        match check(OUT_PATH) {
            Ok(()) => println!("{OUT_PATH}: schema ok"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--soak-smoke") {
        soak_smoke();
        return;
    }
    let rows = measure();
    let overhead = measure_overhead();
    let floor_rps = rows
        .iter()
        .find(|r| r.endpoint == "healthz" && r.mode == "floor")
        .expect("floor row")
        .rps();
    let open_loop = measure_open_loop(floor_rps);
    let soak = run_soak(SOAK_CONNS, SOAK_SECS);
    let batch_ns = |mode: &str| {
        rows.iter()
            .find(|r| r.endpoint == "batch" && r.mode == mode)
            .expect("batch row")
            .total_ns
    };
    let parallel = Parallel {
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_ns: batch_ns("cold@jobs=1"),
        parallel_ns: batch_ns("cold@jobs=4"),
    };
    let mut rows = rows;
    rows.push(Row {
        endpoint: "healthz",
        mode: "open-loop",
        requests: open_loop.requests,
        threads: OPEN_LOOP_CONNS,
        total_ns: open_loop.total_ns,
        lat: open_loop.lat,
    });
    rows.push(Row {
        endpoint: "healthz",
        mode: "soak",
        requests: soak.probe_requests,
        threads: SOAK_PROBERS,
        total_ns: soak.total_ns,
        lat: soak.lat,
    });
    for r in &rows {
        println!(
            "{:<12} {:<14} {:>6} requests x{:<2} threads  {:>10.0} req/s  \
             p50 {:>6}us p99 {:>6}us p999 {:>6}us",
            r.endpoint,
            r.mode,
            r.requests,
            r.threads,
            r.rps(),
            r.lat.p50,
            r.lat.p99,
            r.lat.p999
        );
    }
    println!(
        "instrumentation overhead (healthz keepalive): {:.2}% (bare {} ns, instrumented {} ns)",
        overhead.pct(),
        overhead.bare_ns,
        overhead.instrumented_ns
    );
    println!(
        "cold batch speedup at {JOBS} workers: {:.2}x on {} cpus (serial {} ns, parallel {} ns)",
        parallel.speedup(),
        parallel.host_cpus,
        parallel.serial_ns,
        parallel.parallel_ns
    );
    println!(
        "open-loop: offered {:.0} rps ({}x floor), achieved {:.0} rps ({:.2}x floor)",
        open_loop.target_rps,
        OPEN_LOOP_TARGET_X,
        open_loop.achieved_rps(),
        open_loop.ratio_vs_floor()
    );
    println!(
        "soak: {} connections (peak open {}), {} churned, {} probes",
        soak.connections, soak.peak_open, soak.churned, soak.probe_requests
    );
    let doc = render(&rows, &overhead, &parallel, &open_loop, &soak);
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
}
