//! V1/V2 — abstraction validation episodes (§3.3.1 and §4.3.2).
//!
//! Usage: `validation_demo [v1|v2]` (default: both).

use adds_core::compile;
use adds_lang::programs;

fn want(which: &str) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.is_empty() || args.iter().any(|a| a == which || a == "all")
}

fn main() {
    if want("v1") {
        println!("== V1 (§3.3.1): moving a subtree temporarily breaks the abstraction ==\n");
        println!("    p1->left = p2->left;   /* p1 and p2 now share a subtree */");
        println!("    p2->left = NULL;       /* violation repaired */\n");
        let c = compile(programs::SUBTREE_MOVE).expect("compile");
        let an = c.analysis("move_subtree").expect("analysis");
        for e in &an.events {
            println!("  {e}");
        }
        println!("\n  abstraction valid at exit: {}\n", an.exit.fully_valid());
    }

    if want("v2") {
        println!("== V2 (§4.3.2): insert_particle's temporary sharing during subdivision ==\n");
        println!("    m->subtrees[qc] = child;   /* competitor shared: cur AND m reach it */");
        println!("    cur->subtrees[q] = m;      /* new subtree replaces it: repaired  */\n");
        let c = compile(programs::BARNES_HUT).expect("compile");
        let an = c.analysis("insert_particle").expect("analysis");
        for e in &an.events {
            println!("  {e}");
        }
        let bt = c.analysis("build_tree").expect("analysis");
        println!(
            "\n  build_tree abstraction valid on return: {}",
            bt.exit.abstraction_valid("Octree", "next")
        );
        println!("  (the `next` chain is never touched, so the Octree declaration");
        println!("   is valid when BHL1 is reached — enabling the transformation)");
    }
}
