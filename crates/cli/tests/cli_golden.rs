//! Golden-file and smoke tests driving the `adds-cli` binary itself.
//!
//! The JSON reports are byte-stable by construction (fixed key order, no
//! timestamps), so `analyze --format json` output is compared verbatim
//! against checked-in goldens for three paper programs. Regenerate after an
//! intentional report change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p adds-cli --test cli_golden
//! ```
//!
//! With `UPDATE_GOLDEN=1` the golden assertions rewrite the files under
//! `crates/cli/tests/golden/` instead of comparing — review the diff before
//! committing.

use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adds-cli"))
}

fn run_ok(args: &[&str]) -> Output {
    let out = cli().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "adds-cli {args:?} failed (status {:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    let path = golden_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

/// Compare `actual` against the checked-in golden, or rewrite the golden
/// when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(golden_path(name), actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual,
        golden(name),
        "golden {name} differs — regenerate with \
         `UPDATE_GOLDEN=1 cargo test -p adds-cli --test cli_golden` and review the diff"
    );
}

#[test]
fn analyze_json_matches_golden_barnes_hut() {
    let out = run_ok(&["analyze", "--program", "barnes_hut", "--format", "json"]);
    assert_golden(
        "analyze_barnes_hut.json",
        &String::from_utf8_lossy(&out.stdout),
    );
}

#[test]
fn analyze_json_matches_golden_one_way_list() {
    let out = run_ok(&[
        "analyze",
        "--program",
        "list_scale_adds",
        "--format",
        "json",
    ]);
    assert_golden(
        "analyze_list_scale_adds.json",
        &String::from_utf8_lossy(&out.stdout),
    );
}

#[test]
fn analyze_json_matches_golden_orthogonal_list() {
    let out = run_ok(&["analyze", "--program", "orth_row_scale", "--format", "json"]);
    assert_golden(
        "analyze_orth_row_scale.json",
        &String::from_utf8_lossy(&out.stdout),
    );
}

#[test]
fn analyze_all_jobs4_json_is_valid_and_covers_corpus() {
    let out = run_ok(&["analyze", "--all", "--jobs", "4", "--format", "json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\n  \"schema\": \"adds.analyze/v2\""));
    // Every corpus program appears, and batch parallelism does not disturb
    // input order.
    let mut last = 0;
    for name in [
        "list_scale_plain",
        "list_scale_adds",
        "subtree_move",
        "orth_row_scale",
        "octree_decl",
        "barnes_hut",
        "list_sum",
    ] {
        let needle = format!("\"program\": \"{name}\"");
        let pos = text
            .find(&needle)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(pos > last, "{name} out of order");
        last = pos;
    }
    // And `--jobs 1` produces byte-identical output.
    let seq = run_ok(&["analyze", "--all", "--jobs", "1", "--format", "json"]);
    assert_eq!(out.stdout, seq.stdout);
}

#[test]
fn parse_pretty_reparses_through_the_binary() {
    // parse emits the pretty-printed program (text mode); feeding that back
    // through the binary must succeed and be stable — the roundtrip smoke
    // test, through the real executable.
    let out = run_ok(&["parse", "--program", "barnes_hut"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("roundtrip: stable"), "{text}");

    // Extract the pretty source (everything after the roundtrip line, before
    // the trailing summary line) and re-feed it as a file.
    let body: String = text
        .lines()
        .skip_while(|l| !l.starts_with("  roundtrip:"))
        .skip(1)
        .take_while(|l| !l.ends_with("ms"))
        .collect::<Vec<_>>()
        .join("\n");
    let dir = std::env::temp_dir().join("adds_cli_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("barnes_hut_pretty.il");
    std::fs::write(&path, &body).unwrap();

    let again = run_ok(&["parse", path.to_str().unwrap()]);
    let again_text = String::from_utf8_lossy(&again.stdout);
    assert!(again_text.contains("roundtrip: stable"), "{again_text}");

    // The twice-pretty-printed program is identical to the once-printed one.
    let body2: String = again_text
        .lines()
        .skip_while(|l| !l.starts_with("  roundtrip:"))
        .skip(1)
        .take_while(|l| !l.ends_with("ms"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(body, body2);
}

#[test]
fn check_rejects_bad_source_with_exit_1() {
    let dir = std::env::temp_dir().join("adds_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.il");
    std::fs::write(&path, "type T { int v; T *next is sideways along Q; };").unwrap();
    let out = cli()
        .args(["check", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn usage_errors_exit_2() {
    let out = cli().arg("frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["analyze"]) // no inputs selected
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn ladder_json_has_all_rungs() {
    let out = run_ok(&["ladder", "--format", "json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    for analysis in [
        "conservative",
        "k-limited(k=1)",
        "alloc-site (CWZ)",
        "adds_gpm",
    ] {
        assert!(text.contains(analysis), "missing {analysis}");
    }
    assert!(text.contains("\"schema\": \"adds.ladder/v1\""));
}

#[test]
fn run_rejects_all_flag() {
    let out = cli().args(["run", "--all"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--all"));
}

#[test]
fn ladder_rejects_input_selection() {
    let out = cli()
        .args(["ladder", "--program", "barnes_hut"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn boolean_flags_reject_inline_values() {
    let out = cli()
        .args(["analyze", "--all=false"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("takes no value"));
}

#[test]
fn repeated_program_flags_dedupe() {
    let out = run_ok(&[
        "analyze",
        "--program",
        "list_sum",
        "--program",
        "list_sum",
        "--format",
        "json",
    ]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("\"program\": \"list_sum\"").count(), 1);
}
