//! End-to-end tests for the `adds-cli store` maintenance commands and the
//! `serve --store` flag, driving the real binary over a real directory.

use adds::store::Store;
use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adds-cli"))
}

fn run_ok(args: &[&str]) -> Output {
    let out = cli().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "adds-cli {args:?} failed (status {:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adds_cli_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seed a store with `n` committed entries through the library, the same
/// code path the server's write-behind tier uses.
fn seed(dir: &PathBuf, n: u8) {
    let store = Store::open(dir).expect("open for seeding");
    for i in 0..n {
        let mut key = [0u8; 32];
        key[0] = i;
        assert!(store.put(&key, "analyze/v1", format!("value-{i}").as_bytes()));
    }
    store.commit().expect("commit seed");
}

#[test]
fn store_stats_compact_export_import_lifecycle() {
    let src = temp_dir("lifecycle_src");
    let dst = temp_dir("lifecycle_dst");
    let snap = std::env::temp_dir().join(format!("adds_cli_store_{}.snap", std::process::id()));
    seed(&src, 3);
    let src_s = src.to_str().unwrap();
    let dst_s = dst.to_str().unwrap();
    let snap_s = snap.to_str().unwrap();

    // stats: JSON mode carries the schema tag and the seeded entry count.
    let out = run_ok(&["store", "stats", "--store", src_s, "--format", "json"]);
    let stats = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stats.contains("\"schema\": \"adds.store-stats/v1\""),
        "{stats}"
    );
    assert!(stats.contains("\"entries\": 3"), "{stats}");
    assert!(stats.contains("\"recovered_records\": 3"), "{stats}");

    // export -> import into a fresh directory moves every entry.
    let out = run_ok(&["store", "export", "--store", src_s, snap_s]);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("exported 3"),
        "{out:?}"
    );
    let out = run_ok(&["store", "import", "--store", dst_s, snap_s]);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("imported 3"),
        "{out:?}"
    );
    let dst_store = Store::open(&dst).expect("open imported");
    let mut key = [0u8; 32];
    key[0] = 2;
    assert_eq!(
        dst_store.get(&key, "analyze/v1").as_deref(),
        Some(b"value-2".as_ref()),
        "imported store must serve the seeded values"
    );
    drop(dst_store);

    // compact succeeds and reports the live record count.
    let out = run_ok(&["store", "compact", "--store", src_s, "--format", "json"]);
    let compact = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        compact.contains("\"schema\": \"adds.store-compact/v1\""),
        "{compact}"
    );
    assert!(compact.contains("\"live_records\": 3"), "{compact}");

    // Text-mode stats still renders after compaction.
    let out = run_ok(&["store", "stats", "--store", src_s]);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("entries:             3"),
        "{out:?}"
    );

    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&dst);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn store_usage_errors_exit_2() {
    let out = cli()
        .args(["store", "stats"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "missing --store must be usage");
    let out = cli()
        .args(["store", "frobnicate", "--store", "d"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown action must be usage");
}

#[test]
fn store_import_rejects_garbage_snapshot_with_exit_1() {
    let dir = temp_dir("garbage");
    let snap = std::env::temp_dir().join(format!(
        "adds_cli_store_garbage_{}.snap",
        std::process::id()
    ));
    std::fs::write(&snap, b"not a snapshot").unwrap();
    let out = cli()
        .args([
            "store",
            "import",
            "--store",
            dir.to_str().unwrap(),
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("snapshot"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snap);
}
