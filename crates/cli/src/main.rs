//! `adds-cli` — the end-to-end driver for the ADDS pipeline.
//!
//! One binary takes loop-based pointer programs from IL source to analysis
//! verdicts, transformed source, and simulated-MIMD execution stats:
//!
//! ```text
//! adds-cli analyze --all --jobs 4 --format json   # whole corpus, parallel
//! adds-cli parallelize --program barnes_hut       # emit strip-mined source
//! adds-cli run --pes 2,4,7 --bodies 96            # §4 speedup experiment
//! adds-cli ladder --format json                   # §2 precision ladder
//! adds-cli profile --program barnes_hut           # VM hot-opcode/parfor table
//! adds-cli serve --addr 127.0.0.1:8199 --jobs 4   # long-running HTTP server
//! adds-cli serve --store .adds-store              # + crash-safe disk cache
//! adds-cli store stats --store .adds-store        # disk-cache counters
//! ```
//!
//! Every command accepts `--trace FILE` to record spans across the query,
//! machine, and serve layers and write Chrome `trace_event` JSON on exit
//! (load in chrome://tracing or Perfetto).
//!
//! The report model and the demand-driven, content-addressed analysis
//! session live in the `adds-query` crate (re-exported through
//! `adds-serve`), shared with the server mode and library consumers; this
//! binary is argument parsing, batch fan-out, and rendering.
//!
//! Exit codes: 0 = success, 1 = at least one program failed its stage,
//! 2 = usage error.

mod args;
mod batch;
mod ladder;
mod profile;

pub(crate) use adds_serve::{corpus, json, report};

use adds_serve::runner;
use adds_serve::server::{ServeOptions, Server};
use args::{Command, Format, ParsedArgs};
use json::Json;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(real_main(&argv));
}

/// Print to stderr, tolerating a vanished reader.
fn emit_err(s: &str) {
    use std::io::Write;
    // Ignore write errors entirely: the exit code still reports the failure
    // even when the stderr reader is gone.
    let _ = std::io::stderr().write_all(s.as_bytes());
}

/// Print to stdout, exiting quietly if the reader went away (`| head`):
/// Rust ignores SIGPIPE, so an unchecked `print!` would panic instead.
fn emit(s: &str) {
    use std::io::Write;
    if let Err(e) = std::io::stdout().write_all(s.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {e}");
    }
}

fn real_main(argv: &[String]) -> i32 {
    let args = match args::parse(argv) {
        Ok(ParsedArgs::Run(a)) => a,
        Ok(ParsedArgs::ListCorpus) => {
            emit(&corpus::list_table());
            return 0;
        }
        Err(e) if e.help_requested => {
            emit(args::USAGE);
            return 0;
        }
        Err(e) => {
            emit_err(&format!("{e}\n"));
            return 2;
        }
    };

    // `serve` owns its trace lifecycle (enable at bind, dump at
    // shutdown); every other command traces around its whole run here.
    let trace_here = args.command != Command::Serve && args.trace.is_some();
    if trace_here {
        adds::obs::trace::enable();
    }
    let code = run_command(&args);
    if trace_here {
        let path = args.trace.as_deref().expect("checked");
        if let Err(e) = adds::obs::trace::dump_to_file(path) {
            emit_err(&format!("error: cannot write trace `{path}`: {e}\n"));
            return 1;
        }
    }
    code
}

fn run_command(args: &args::Args) -> i32 {
    match args.command {
        Command::Parse | Command::Check | Command::Analyze | Command::Parallelize => {
            let units = match batch::collect_inputs(args) {
                Ok(u) => u,
                Err(msg) => {
                    emit_err(&format!("error: {msg}\n"));
                    return 2;
                }
            };
            let started = std::time::Instant::now();
            let reports = batch::run_batch(&units, args);
            let all_ok = reports.iter().all(|r| r.ok);
            match args.format {
                Format::Json => {
                    let doc = Json::obj([
                        (
                            "schema",
                            Json::str(args.command.stage().expect("batch command").schema()),
                        ),
                        ("ok", Json::Bool(all_ok)),
                        (
                            "programs",
                            Json::Arr(reports.iter().map(|r| r.to_json()).collect()),
                        ),
                    ]);
                    emit(&doc.pretty());
                }
                Format::Text => {
                    for r in &reports {
                        emit(&r.to_text());
                    }
                    let failed = reports.iter().filter(|r| !r.ok).count();
                    emit(&format!(
                        "{} program(s), {} failed, {:.1} ms\n",
                        reports.len(),
                        failed,
                        started.elapsed().as_secs_f64() * 1e3
                    ));
                }
            }
            if all_ok {
                0
            } else {
                1
            }
        }
        Command::Run => {
            let (name, source) = match run_input(args) {
                Ok(pair) => pair,
                Err(msg) => {
                    emit_err(&format!("error: {msg}\n"));
                    return 2;
                }
            };
            let opts = runner::RunOptions {
                pes: args.pes.clone(),
                bodies: args.bodies,
                steps: args.steps,
                theta: args.theta,
                dt: args.dt,
            };
            // One-shot through the query session (run_workload builds a
            // throwaway db and restores the display name).
            match runner::run_workload(&name, &source, &opts) {
                Ok(r) => {
                    match args.format {
                        Format::Json => emit(&runner::to_json(&r).pretty()),
                        Format::Text => emit(&runner::to_text(&r)),
                    }
                    let clean = r
                        .parallel
                        .iter()
                        .all(|p| p.conflicts == 0 && p.physics_matches);
                    if clean {
                        0
                    } else {
                        1
                    }
                }
                Err(msg) => {
                    emit_err(&format!("error: {msg}\n"));
                    1
                }
            }
        }
        Command::Ladder => {
            if args.all || !args.programs.is_empty() || !args.files.is_empty() {
                emit_err(
                    "error: `ladder` runs its own fixed program set; \
                     --all/--program/files are not supported here\n",
                );
                return 2;
            }
            let rows = ladder::run_ladder(&args.klimits);
            match args.format {
                Format::Json => emit(&ladder::to_json(&rows).pretty()),
                Format::Text => emit(&ladder::to_text(&rows)),
            }
            0
        }
        Command::Profile => profile::run_profile(args),
        Command::Serve => {
            if args.all || !args.programs.is_empty() || !args.files.is_empty() {
                emit_err(
                    "error: `serve` takes sources over HTTP; \
                     --all/--program/files are not supported here\n",
                );
                return 2;
            }
            let opts = ServeOptions {
                addr: args.addr.clone(),
                jobs: args.jobs,
                cache_capacity: args.cache_cap,
                log: args.log,
                store_dir: args.store.clone(),
                trace_path: args.trace.clone(),
                engine: args.engine,
                max_connections: args.max_conns,
                ..ServeOptions::default()
            };
            let server = match Server::bind(&opts) {
                Ok(s) => s,
                Err(e) => {
                    emit_err(&format!("error: cannot bind `{}`: {e}\n", opts.addr));
                    return 1;
                }
            };
            // With --log, stdout is the JSON access-log stream (one
            // parseable line per request) — keep the banner off it.
            let banner: fn(&str) = if args.log { emit_err } else { emit };
            match server.local_addr() {
                Ok(addr) => banner(&format!("adds-serve listening on http://{addr}\n")),
                Err(_) => banner(&format!("adds-serve listening on {}\n", opts.addr)),
            }
            match server.run() {
                Ok(()) => 0,
                Err(e) => {
                    emit_err(&format!("error: server failed: {e}\n"));
                    1
                }
            }
        }
        Command::Store => run_store(args),
    }
}

/// `store stats|compact|export|import` over a `--store` directory: the
/// same crash-safe segment store the server mounts, driven offline for
/// inspection, maintenance, and pre-warmed corpus snapshots.
fn run_store(args: &args::Args) -> i32 {
    use args::StoreAction;
    let dir = args.store.as_deref().expect("validated by args::parse");
    let store = match adds::store::Store::open(dir) {
        Ok(s) => s,
        Err(e) => {
            emit_err(&format!("error: cannot open store `{dir}`: {e}\n"));
            return 1;
        }
    };
    let action = args.store_action.expect("validated by args::parse");
    match action {
        StoreAction::Stats => {
            let s = store.stats();
            match args.format {
                Format::Json => emit(&store_stats_json(&s).pretty()),
                Format::Text => {
                    emit(&format!(
                        "store {dir}\n\
                           entries:             {}\n\
                           segments:            {}\n\
                           live bytes:          {}\n\
                           recovered records:   {}\n\
                           truncated bytes:     {}\n\
                           quarantined records: {}\n\
                           rotations:           {}\n\
                           compactions:         {}\n",
                        s.entries,
                        s.segments,
                        s.live_bytes,
                        s.recovered_records,
                        s.truncated_bytes,
                        s.quarantined_records,
                        s.rotations,
                        s.compactions,
                    ));
                }
            }
            0
        }
        StoreAction::Compact => match store.compact() {
            Ok(o) => {
                match args.format {
                    Format::Json => emit(
                        &Json::obj([
                            ("schema", Json::str("adds.store-compact/v1")),
                            ("segments_before", Json::UInt(o.segments_before)),
                            ("segments_after", Json::UInt(o.segments_after)),
                            ("live_records", Json::UInt(o.live_records)),
                            ("reclaimed_bytes", Json::UInt(o.reclaimed_bytes)),
                        ])
                        .pretty(),
                    ),
                    Format::Text => emit(&format!(
                        "compacted {dir}: {} -> {} segment(s), {} live record(s), \
                         {} byte(s) reclaimed\n",
                        o.segments_before, o.segments_after, o.live_records, o.reclaimed_bytes
                    )),
                }
                0
            }
            Err(e) => {
                emit_err(&format!("error: compact failed: {e}\n"));
                1
            }
        },
        StoreAction::Export | StoreAction::Import => {
            let file = args.files.first().expect("validated by args::parse");
            let result = if action == StoreAction::Export {
                std::fs::File::create(file)
                    .and_then(|mut f| store.export(&mut f))
                    .map(|n| format!("exported {n} entr(ies) to {file}\n"))
            } else {
                std::fs::File::open(file)
                    .and_then(|mut f| store.import(&mut f))
                    .map(|n| format!("imported {n} record(s) from {file}\n"))
            };
            match result {
                Ok(line) => {
                    emit(&line);
                    0
                }
                Err(e) => {
                    emit_err(&format!("error: snapshot {file}: {e}\n"));
                    1
                }
            }
        }
    }
}

/// Byte-stable JSON rendering of a store snapshot (`adds.store-stats/v1`),
/// field-for-field the server's `/v1/stats` `store` section.
fn store_stats_json(s: &adds::store::StoreSnapshot) -> Json {
    Json::obj([
        ("schema", Json::str("adds.store-stats/v1")),
        ("entries", Json::UInt(s.entries)),
        ("pending", Json::UInt(s.pending)),
        ("segments", Json::UInt(s.segments)),
        ("live_bytes", Json::UInt(s.live_bytes)),
        ("gets", Json::UInt(s.gets)),
        ("hits", Json::UInt(s.hits)),
        ("misses", Json::UInt(s.misses)),
        ("puts", Json::UInt(s.puts)),
        ("puts_ignored", Json::UInt(s.puts_ignored)),
        ("commits", Json::UInt(s.commits)),
        ("commit_failures", Json::UInt(s.commit_failures)),
        ("committed_records", Json::UInt(s.committed_records)),
        ("committed_bytes", Json::UInt(s.committed_bytes)),
        ("recovered_records", Json::UInt(s.recovered_records)),
        ("truncated_bytes", Json::UInt(s.truncated_bytes)),
        ("quarantined_records", Json::UInt(s.quarantined_records)),
        ("rotations", Json::UInt(s.rotations)),
        ("compactions", Json::UInt(s.compactions)),
    ])
}

/// `run` takes exactly one input; default is the built-in Barnes–Hut.
fn run_input(args: &args::Args) -> Result<(String, String), String> {
    if args.all {
        return Err("`run` executes one program; --all is not supported here".to_string());
    }
    let mut named: Vec<(String, String)> = Vec::new();
    for p in &args.programs {
        let e = corpus::find(p).ok_or_else(|| format!("unknown corpus program `{p}`"))?;
        named.push((e.name.to_string(), e.source.to_string()));
    }
    for f in &args.files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("cannot read `{f}`: {e}"))?;
        named.push((f.clone(), src));
    }
    match named.len() {
        0 => {
            let e = corpus::find("barnes_hut").expect("corpus has barnes_hut");
            Ok((e.name.to_string(), e.source.to_string()))
        }
        1 => Ok(named.pop().expect("len checked")),
        n => Err(format!("`run` takes one program, got {n}")),
    }
}
