//! Input collection and the rayon-parallel batch executor.
//!
//! Every selected program (built-in corpus entries and user files) becomes
//! an [`InputUnit`]; units run through the pipeline with `par_iter` on the
//! configured worker count and results come back in input order, so output
//! (and exit code aggregation) is deterministic regardless of `--jobs`.

use crate::args::Args;
use crate::corpus;
use crate::pipeline::{run_unit, InputUnit};
use crate::report::ProgramReport;
use rayon::prelude::*;

/// Resolve `--all`, `--program`, and file arguments into work units.
/// Order: corpus entries first (corpus order), then files (argument order).
pub fn collect_inputs(args: &Args) -> Result<Vec<InputUnit>, String> {
    let mut units = Vec::new();
    if args.all {
        for e in corpus::CORPUS {
            units.push(InputUnit {
                name: e.name.to_string(),
                origin: "builtin",
                source: e.source.to_string(),
            });
        }
    }
    for name in &args.programs {
        let Some(e) = corpus::find(name) else {
            return Err(format!(
                "unknown corpus program `{name}`; try --list for names"
            ));
        };
        // Skip entries already selected by --all or a repeated --program.
        if units
            .iter()
            .any(|u| u.origin == "builtin" && u.name == e.name)
        {
            continue;
        }
        units.push(InputUnit {
            name: e.name.to_string(),
            origin: "builtin",
            source: e.source.to_string(),
        });
    }
    for path in &args.files {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        units.push(InputUnit {
            name: path.clone(),
            origin: "file",
            source,
        });
    }
    if units.is_empty() {
        return Err("no inputs: pass --all, --program NAME, or one or more files".to_string());
    }
    Ok(units)
}

/// Run `units` through the pipeline in parallel on the configured pool.
pub fn run_batch(units: &[InputUnit], args: &Args) -> Vec<ProgramReport> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.jobs)
        .build_global()
        .expect("thread pool");
    units
        .par_iter()
        .map(|u| run_unit(u, args.command, args.matrices))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Args, Command};

    #[test]
    fn all_collects_whole_corpus_in_order() {
        let args = Args {
            all: true,
            ..Args::default()
        };
        let units = collect_inputs(&args).unwrap();
        assert_eq!(units.len(), corpus::CORPUS.len());
        assert_eq!(units[0].name, corpus::CORPUS[0].name);
    }

    #[test]
    fn unknown_program_is_an_error() {
        let args = Args {
            programs: vec!["nope".into()],
            ..Args::default()
        };
        assert!(collect_inputs(&args).is_err());
    }

    #[test]
    fn empty_selection_is_an_error() {
        assert!(collect_inputs(&Args::default()).is_err());
    }

    #[test]
    fn batch_is_deterministic_across_jobs() {
        let mk = |jobs| Args {
            command: Command::Analyze,
            all: true,
            jobs,
            ..Args::default()
        };
        let units = collect_inputs(&mk(1)).unwrap();
        let seq = run_batch(&units, &mk(1));
        let par = run_batch(&units, &mk(4));
        let render = |rs: &[crate::report::ProgramReport]| {
            rs.iter().map(|r| r.to_json().pretty()).collect::<String>()
        };
        assert_eq!(render(&seq), render(&par));
    }
}
