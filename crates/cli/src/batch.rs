//! Input collection and the rayon-parallel batch executor.
//!
//! Every selected program (built-in corpus entries and user files) becomes
//! an [`InputUnit`]; units run through the pipeline with `par_iter` on the
//! configured worker count and results come back in input order, so output
//! (and exit code aggregation) is deterministic regardless of `--jobs`.
//!
//! Analyze/parallelize reports depend only on the source text (plus the
//! per-invocation command and flags), so the executor memoizes by source
//! content: repeated files in a batch are computed once and their reports
//! cloned with the per-input name restored — the first concrete step
//! toward the ROADMAP's source-hash-keyed analysis server.

use crate::args::Args;
use crate::corpus;
use crate::pipeline::{run_unit, InputUnit};
use crate::report::ProgramReport;
use rayon::prelude::*;
use std::collections::HashMap;

/// Resolve `--all`, `--program`, and file arguments into work units.
/// Order: corpus entries first (corpus order), then files (argument order).
pub fn collect_inputs(args: &Args) -> Result<Vec<InputUnit>, String> {
    let mut units = Vec::new();
    if args.all {
        for e in corpus::CORPUS {
            units.push(InputUnit {
                name: e.name.to_string(),
                origin: "builtin",
                source: e.source.to_string(),
            });
        }
    }
    for name in &args.programs {
        let Some(e) = corpus::find(name) else {
            return Err(format!(
                "unknown corpus program `{name}`; try --list for names"
            ));
        };
        // Skip entries already selected by --all or a repeated --program.
        if units
            .iter()
            .any(|u| u.origin == "builtin" && u.name == e.name)
        {
            continue;
        }
        units.push(InputUnit {
            name: e.name.to_string(),
            origin: "builtin",
            source: e.source.to_string(),
        });
    }
    for path in &args.files {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        units.push(InputUnit {
            name: path.clone(),
            origin: "file",
            source,
        });
    }
    if units.is_empty() {
        return Err("no inputs: pass --all, --program NAME, or one or more files".to_string());
    }
    Ok(units)
}

/// Run `units` through the pipeline in parallel on the configured pool,
/// computing each distinct source once.
pub fn run_batch(units: &[InputUnit], args: &Args) -> Vec<ProgramReport> {
    run_batch_memo(units, args).0
}

/// [`run_batch`] exposing how many units were actually computed (the rest
/// were memo hits), for tests and diagnostics.
pub(crate) fn run_batch_memo(units: &[InputUnit], args: &Args) -> (Vec<ProgramReport>, usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.jobs)
        .build_global()
        .expect("thread pool");

    // Deduplicate by source content. The report depends only on the source
    // (name/origin are display fields, restored per input below).
    let mut memo_key: HashMap<&str, usize> = HashMap::new();
    let mut uniques: Vec<usize> = Vec::new();
    let keys: Vec<usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| {
            *memo_key.entry(u.source.as_str()).or_insert_with(|| {
                uniques.push(i);
                uniques.len() - 1
            })
        })
        .collect();

    let computed: Vec<ProgramReport> = uniques
        .par_iter()
        .map(|&i| run_unit(&units[i], args.command, args.matrices))
        .collect();

    let reports = units
        .iter()
        .zip(&keys)
        .map(|(u, &k)| {
            let mut r = computed[k].clone();
            r.name.clone_from(&u.name);
            r.origin = u.origin;
            r
        })
        .collect();
    (reports, uniques.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Args, Command};

    #[test]
    fn all_collects_whole_corpus_in_order() {
        let args = Args {
            all: true,
            ..Args::default()
        };
        let units = collect_inputs(&args).unwrap();
        assert_eq!(units.len(), corpus::CORPUS.len());
        assert_eq!(units[0].name, corpus::CORPUS[0].name);
    }

    #[test]
    fn unknown_program_is_an_error() {
        let args = Args {
            programs: vec!["nope".into()],
            ..Args::default()
        };
        assert!(collect_inputs(&args).is_err());
    }

    #[test]
    fn empty_selection_is_an_error() {
        assert!(collect_inputs(&Args::default()).is_err());
    }

    #[test]
    fn repeated_sources_are_computed_once() {
        let src = crate::corpus::find("list_scale_adds").unwrap().source;
        let unit = |name: &str, source: &str| InputUnit {
            name: name.into(),
            origin: "file",
            source: source.into(),
        };
        let units = vec![
            unit("a.il", src),
            unit("b.il", src),
            unit("c.il", crate::corpus::find("list_sum").unwrap().source),
            unit("d.il", src),
        ];
        let args = Args {
            command: Command::Analyze,
            ..Args::default()
        };
        let (reports, computed) = run_batch_memo(&units, &args);
        assert_eq!(computed, 2, "two distinct sources");
        assert_eq!(reports.len(), 4);
        // Names are per input; content is shared.
        assert_eq!(reports[0].name, "a.il");
        assert_eq!(reports[1].name, "b.il");
        assert_eq!(reports[3].name, "d.il");
        let mut renamed = reports[0].clone();
        renamed.name = "b.il".into();
        assert_eq!(renamed.to_json().pretty(), reports[1].to_json().pretty());
        // And memoized output equals the unmemoized single-unit run.
        let direct = run_unit(&units[1], Command::Analyze, false);
        assert_eq!(direct.to_json().pretty(), reports[1].to_json().pretty());
    }

    #[test]
    fn batch_is_deterministic_across_jobs() {
        let mk = |jobs| Args {
            command: Command::Analyze,
            all: true,
            jobs,
            ..Args::default()
        };
        let units = collect_inputs(&mk(1)).unwrap();
        let seq = run_batch(&units, &mk(1));
        let par = run_batch(&units, &mk(4));
        let render = |rs: &[crate::report::ProgramReport]| {
            rs.iter().map(|r| r.to_json().pretty()).collect::<String>()
        };
        assert_eq!(render(&seq), render(&par));
    }
}
