//! Input collection and the parallel batch executor.
//!
//! Every selected program (built-in corpus entries and user files) becomes
//! an [`InputUnit`]; units fan out through one shared analysis
//! [`Session`] on the `--jobs` worker budget (the session's deterministic
//! executor — per-worker deques with stealing, results merged in input
//! order), so output (and exit code aggregation) is byte-identical
//! regardless of `--jobs`.
//!
//! Reports depend only on the source bytes plus the query fingerprint, so
//! the batch memoizes through the same demand-driven session the server
//! mode uses: repeated files in a batch are computed once — even when two
//! workers pick them up concurrently (single flight) — and their reports
//! are cloned with the per-input name restored.

use crate::args::Args;
use crate::corpus;
use crate::report::ProgramReport;
use adds_serve::pipeline::InputUnit;
use adds_serve::service::{Session, StageRequest};

/// Resolve `--all`, `--program`, and file arguments into work units.
/// Order: corpus entries first (corpus order), then files (argument order).
pub fn collect_inputs(args: &Args) -> Result<Vec<InputUnit>, String> {
    let mut units = Vec::new();
    if args.all {
        for e in corpus::CORPUS {
            units.push(InputUnit {
                name: e.name.to_string(),
                origin: "builtin",
                source: e.source.to_string(),
            });
        }
    }
    for name in &args.programs {
        let Some(e) = corpus::find(name) else {
            return Err(format!(
                "unknown corpus program `{name}`; try --list for names"
            ));
        };
        // Skip entries already selected by --all or a repeated --program.
        if units
            .iter()
            .any(|u| u.origin == "builtin" && u.name == e.name)
        {
            continue;
        }
        units.push(InputUnit {
            name: e.name.to_string(),
            origin: "builtin",
            source: e.source.to_string(),
        });
    }
    for path in &args.files {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        units.push(InputUnit {
            name: path.clone(),
            origin: "file",
            source,
        });
    }
    if units.is_empty() {
        return Err("no inputs: pass --all, --program NAME, or one or more files".to_string());
    }
    Ok(units)
}

/// Run `units` through the session in parallel on the configured pool,
/// computing each distinct source once.
pub fn run_batch(units: &[InputUnit], args: &Args) -> Vec<ProgramReport> {
    run_batch_memo(units, args).0
}

/// [`run_batch`] exposing how many units were actually computed (the rest
/// were cache hits), for tests and diagnostics.
pub(crate) fn run_batch_memo(units: &[InputUnit], args: &Args) -> (Vec<ProgramReport>, usize) {
    let stage = args.command.stage().expect("batch command has a stage");
    let session = Session::with_jobs(args.jobs);
    let request = StageRequest {
        stage,
        matrices: args.matrices,
    };

    // The report cache key is (sha256(source), composed fingerprint); the
    // canonical cached report carries the content hash as its name, so
    // the display name/origin are restored per input below. Single flight
    // means two workers hitting the same source concurrently still
    // compute once.
    let reports = session.par_map(units, |u| {
        session.stage(&u.source, request).named(&u.name, u.origin)
    });
    let stats = session.stats();
    let computed = stats.get(&stats.misses) as usize;
    (reports, computed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Args, Command};
    use adds_serve::pipeline::{run_unit, Stage};

    #[test]
    fn all_collects_whole_corpus_in_order() {
        let args = Args {
            all: true,
            ..Args::default()
        };
        let units = collect_inputs(&args).unwrap();
        assert_eq!(units.len(), corpus::CORPUS.len());
        assert_eq!(units[0].name, corpus::CORPUS[0].name);
    }

    #[test]
    fn unknown_program_is_an_error() {
        let args = Args {
            programs: vec!["nope".into()],
            ..Args::default()
        };
        assert!(collect_inputs(&args).is_err());
    }

    #[test]
    fn empty_selection_is_an_error() {
        assert!(collect_inputs(&Args::default()).is_err());
    }

    #[test]
    fn repeated_sources_are_computed_once() {
        let src = crate::corpus::find("list_scale_adds").unwrap().source;
        let unit = |name: &str, source: &str| InputUnit {
            name: name.into(),
            origin: "file",
            source: source.into(),
        };
        let units = vec![
            unit("a.il", src),
            unit("b.il", src),
            unit("c.il", crate::corpus::find("list_sum").unwrap().source),
            unit("d.il", src),
        ];
        let args = Args {
            command: Command::Analyze,
            ..Args::default()
        };
        let (reports, computed) = run_batch_memo(&units, &args);
        assert_eq!(computed, 2, "two distinct sources");
        assert_eq!(reports.len(), 4);
        // Names are per input; content is shared.
        assert_eq!(reports[0].name, "a.il");
        assert_eq!(reports[1].name, "b.il");
        assert_eq!(reports[3].name, "d.il");
        let mut renamed = reports[0].clone();
        renamed.name = "b.il".into();
        assert_eq!(renamed.to_json().pretty(), reports[1].to_json().pretty());
        // And cached output equals the uncached single-unit run.
        let direct = run_unit(&units[1], Stage::Analyze, false);
        assert_eq!(direct.to_json().pretty(), reports[1].to_json().pretty());
    }

    #[test]
    fn batch_is_deterministic_across_jobs() {
        let mk = |jobs| Args {
            command: Command::Analyze,
            all: true,
            jobs,
            ..Args::default()
        };
        let units = collect_inputs(&mk(1)).unwrap();
        let seq = run_batch(&units, &mk(1));
        let par = run_batch(&units, &mk(4));
        let render = |rs: &[crate::report::ProgramReport]| {
            rs.iter().map(|r| r.to_json().pretty()).collect::<String>()
        };
        assert_eq!(render(&seq), render(&par));
    }
}
