//! Hand-rolled argument parsing (no `clap` available offline).
//!
//! Grammar: `adds-cli <command> [flags] [FILE...]`. Flags take their value
//! as the following argument (`--jobs 4`) or inline (`--jobs=4`).

use std::fmt;

/// Output format selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Human-readable text.
    Text,
    /// Machine-readable JSON (byte-stable; golden-tested).
    Json,
}

/// The CLI subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Parse and pretty-print, verifying the print→parse round trip.
    Parse,
    /// ADDS well-formedness + type check.
    Check,
    /// Path-matrix analysis with per-loop dependence verdicts.
    Analyze,
    /// Strip-mine parallelizable loops and emit transformed source.
    Parallelize,
    /// Execute on the simulated MIMD machine (sequential vs parallel).
    Run,
    /// Precision ladder: §2.1 baselines vs ADDS+GPM.
    Ladder,
    /// VM profiling: ranked hot-opcode / hot-parfor tables per workload.
    Profile,
    /// Long-running HTTP server over the batch executor.
    Serve,
    /// Inspect or maintain a persistent `--store` directory.
    Store,
}

/// Maintenance action for the `store` command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreAction {
    /// Print the store's counters and index shape.
    Stats,
    /// Rewrite live records into a fresh segment, dropping dead bytes.
    Compact,
    /// Write every committed entry to a snapshot file.
    Export,
    /// Load a snapshot file into the store.
    Import,
}

impl StoreAction {
    fn parse(s: &str) -> Option<StoreAction> {
        Some(match s {
            "stats" => StoreAction::Stats,
            "compact" => StoreAction::Compact,
            "export" => StoreAction::Export,
            "import" => StoreAction::Import,
            _ => return None,
        })
    }
}

impl Command {
    fn parse(s: &str) -> Option<Command> {
        Some(match s {
            "parse" => Command::Parse,
            "check" => Command::Check,
            "analyze" => Command::Analyze,
            "parallelize" => Command::Parallelize,
            "run" => Command::Run,
            "ladder" => Command::Ladder,
            "profile" => Command::Profile,
            "serve" => Command::Serve,
            "store" => Command::Store,
            _ => return None,
        })
    }

    /// The report-producing pipeline stage behind this command, if any
    /// (`run`/`ladder`/`serve` have their own drivers).
    pub fn stage(self) -> Option<adds_serve::pipeline::Stage> {
        use adds_serve::pipeline::Stage;
        Some(match self {
            Command::Parse => Stage::Parse,
            Command::Check => Stage::Check,
            Command::Analyze => Stage::Analyze,
            Command::Parallelize => Stage::Parallelize,
            Command::Run | Command::Ladder | Command::Profile | Command::Serve | Command::Store => {
                return None
            }
        })
    }
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// The subcommand to run.
    pub command: Command,
    /// Run over the whole built-in corpus.
    pub all: bool,
    /// Selected built-in corpus programs (by name).
    pub programs: Vec<String>,
    /// IL source files.
    pub files: Vec<String>,
    /// Parallel batch workers (0 = one per core).
    pub jobs: usize,
    /// Output format.
    pub format: Format,
    /// Include per-loop fixpoint path matrices in reports.
    pub matrices: bool,
    /// `run`: PE counts to simulate.
    pub pes: Vec<usize>,
    /// `run`: particle count.
    pub bodies: usize,
    /// `run`: simulated steps.
    pub steps: i64,
    /// `run`: opening angle.
    pub theta: f64,
    /// `run`: time step.
    pub dt: f64,
    /// `ladder`: k values for the k-limited baseline.
    pub klimits: Vec<usize>,
    /// `serve`: bind address.
    pub addr: String,
    /// `serve`: per-cache entry bound (0 = unbounded, CLOCK eviction).
    pub cache_cap: usize,
    /// `serve`: emit one JSON access-log line per request on stdout.
    pub log: bool,
    /// `serve`: connection engine (`reactor` | `blocking`).
    pub engine: adds_serve::server::Engine,
    /// `serve`: reactor connection budget (over it: `503 Retry-After`).
    pub max_conns: usize,
    /// `serve`/`store`: crash-safe disk cache directory.
    pub store: Option<String>,
    /// `store`: the maintenance action.
    pub store_action: Option<StoreAction>,
    /// Record spans and write a Chrome `trace_event` JSON file on exit.
    pub trace: Option<String>,
    /// `profile`: validate the profile invariants instead of printing
    /// tables (CI smoke).
    pub check: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            command: Command::Check,
            all: false,
            programs: Vec::new(),
            files: Vec::new(),
            jobs: 0,
            format: Format::Text,
            matrices: false,
            pes: vec![4],
            bodies: 64,
            steps: 2,
            theta: 0.7,
            dt: 0.001,
            klimits: vec![1, 2],
            addr: "127.0.0.1:8199".to_string(),
            cache_cap: 0,
            log: false,
            engine: adds_serve::server::Engine::default(),
            max_conns: adds_serve::server::DEFAULT_MAX_CONNECTIONS,
            store: None,
            store_action: None,
            trace: None,
            check: false,
        }
    }
}

/// A usage error: message plus whether help was explicitly requested.
#[derive(Debug)]
pub struct UsageError {
    /// What went wrong (empty for an explicit `--help`).
    pub message: String,
    /// `--help` / `help` was requested; exit 0, not 2.
    pub help_requested: bool,
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message.is_empty() {
            f.write_str(USAGE)
        } else {
            write!(f, "error: {}\n\n{}", self.message, USAGE)
        }
    }
}

/// The help text.
pub const USAGE: &str = "\
adds-cli — drive the ADDS pipeline end to end

USAGE:
    adds-cli <COMMAND> [OPTIONS] [FILE...]

COMMANDS:
    parse        parse IL and pretty-print (verifies the print->parse round trip)
    check        parse + ADDS well-formedness + type check
    analyze      path-matrix analysis; per-loop dependence verdicts
    parallelize  strip-mine parallelizable loops, emit transformed source
    run          execute Barnes-Hut on the simulated MIMD machine, seq vs par
    ladder       precision ladder: prior-work baselines vs ADDS+GPM
    profile      run corpus workloads on the VM with profiling; ranked
                 hot-opcode, superblock, and parfor tables (adds.profile/v2 in JSON)
    serve        long-running HTTP server: POST /v1/{analyze,parallelize,run}
    store        inspect or maintain a persistent --store directory:
                 store stats|compact --store DIR
                 store export|import --store DIR FILE   (snapshot file)

INPUT SELECTION (parse/check/analyze/parallelize):
    --all             all built-in corpus programs
    --program NAME    one built-in program (repeatable); see --list
    --list            print corpus program names and exit
    FILE...           IL source files

OPTIONS:
    --jobs N          parallel workers for batch/serve and query fan-out
                      (default: one per core; output is byte-identical
                      at every value)
    --addr HOST:PORT  serve: bind address            [default: 127.0.0.1:8199]
    --cache-cap N     serve: bound each cache to ~N entries (0 = unbounded)
    --store DIR       serve/store: crash-safe disk cache directory; survives
                      restarts and kill -9 (committed entries are never lost)
    --log             serve: one JSON access-log line per request on stdout
    --engine E        serve: connection engine, reactor | blocking
                      [default: reactor]
    --max-conns N     serve: reactor connection budget; connections over
                      it get 503 + Retry-After [default: 10240]
    --format FMT      text | json                      [default: text]
    --matrices        include exit path matrices in analyze reports
    --pes LIST        run: comma-separated PE counts   [default: 4]
    --bodies N        run: particle count              [default: 64]
    --steps N         run: simulated steps             [default: 2]
    --theta X         run: opening angle               [default: 0.7]
    --dt X            run: time step                   [default: 0.001]
    --klimit LIST     ladder: comma-separated k values [default: 1,2]
    --trace FILE      write a Chrome trace_event JSON file on exit
                      (load in chrome://tracing or Perfetto)
    --check           profile: validate invariants instead of printing
    -h, --help        show this help
";

fn usage(message: impl Into<String>) -> UsageError {
    UsageError {
        message: message.into(),
        help_requested: false,
    }
}

fn take_value<'a>(
    flag: &str,
    inline: Option<String>,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<String, UsageError> {
    if let Some(v) = inline {
        return Ok(v);
    }
    it.next()
        .cloned()
        .ok_or_else(|| usage(format!("{flag} requires a value")))
}

/// Parse `argv[1..]`. `Err` carries the usage text.
pub fn parse(argv: &[String]) -> Result<ParsedArgs, UsageError> {
    let mut it = argv.iter();
    let Some(first) = it.next() else {
        return Err(usage("missing command"));
    };
    if first == "-h" || first == "--help" || first == "help" {
        return Err(UsageError {
            message: String::new(),
            help_requested: true,
        });
    }
    if first == "--list" {
        return Ok(ParsedArgs::ListCorpus);
    }
    let Some(command) = Command::parse(first) else {
        return Err(usage(format!("unknown command `{first}`")));
    };
    let mut args = Args {
        command,
        ..Args::default()
    };
    let mut list = false;

    while let Some(raw) = it.next() {
        let (flag, inline) = match raw.split_once('=') {
            Some((f, v)) if raw.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (raw.clone(), None),
        };
        match flag.as_str() {
            "-h" | "--help" => {
                return Err(UsageError {
                    message: String::new(),
                    help_requested: true,
                })
            }
            "--all" | "--list" | "--matrices" | "--log" | "--check" => {
                if inline.is_some() {
                    return Err(usage(format!("{flag} takes no value")));
                }
                match flag.as_str() {
                    "--all" => args.all = true,
                    "--list" => list = true,
                    "--log" => args.log = true,
                    "--check" => args.check = true,
                    _ => args.matrices = true,
                }
            }
            "--program" => {
                let v = take_value("--program", inline, &mut it)?;
                args.programs.push(v);
            }
            "--addr" => {
                args.addr = take_value("--addr", inline, &mut it)?;
            }
            "--store" => {
                args.store = Some(take_value("--store", inline, &mut it)?);
            }
            "--trace" => {
                args.trace = Some(take_value("--trace", inline, &mut it)?);
            }
            "--engine" => {
                let v = take_value("--engine", inline, &mut it)?;
                args.engine = adds_serve::server::Engine::parse(&v).ok_or_else(|| {
                    usage(format!("--engine expects reactor|blocking, got `{v}`"))
                })?;
            }
            "--max-conns" => {
                let v = take_value("--max-conns", inline, &mut it)?;
                args.max_conns = v
                    .parse()
                    .map_err(|_| usage(format!("--max-conns expects an integer, got `{v}`")))?;
            }
            "--cache-cap" => {
                let v = take_value("--cache-cap", inline, &mut it)?;
                args.cache_cap = v
                    .parse()
                    .map_err(|_| usage(format!("--cache-cap expects an integer, got `{v}`")))?;
            }
            "--jobs" => {
                let v = take_value("--jobs", inline, &mut it)?;
                args.jobs = v
                    .parse()
                    .map_err(|_| usage(format!("--jobs expects an integer, got `{v}`")))?;
            }
            "--format" => {
                let v = take_value("--format", inline, &mut it)?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    _ => return Err(usage(format!("--format expects text|json, got `{v}`"))),
                };
            }
            "--pes" => {
                let v = take_value("--pes", inline, &mut it)?;
                args.pes = parse_usize_list(&v)
                    .ok_or_else(|| usage(format!("--pes expects e.g. 2,4,7 — got `{v}`")))?;
            }
            "--klimit" => {
                let v = take_value("--klimit", inline, &mut it)?;
                args.klimits = parse_usize_list(&v)
                    .ok_or_else(|| usage(format!("--klimit expects e.g. 1,3 — got `{v}`")))?;
            }
            "--bodies" => {
                let v = take_value("--bodies", inline, &mut it)?;
                args.bodies = v
                    .parse()
                    .map_err(|_| usage(format!("--bodies expects an integer, got `{v}`")))?;
            }
            "--steps" => {
                let v = take_value("--steps", inline, &mut it)?;
                args.steps = v
                    .parse()
                    .map_err(|_| usage(format!("--steps expects an integer, got `{v}`")))?;
            }
            "--theta" => {
                let v = take_value("--theta", inline, &mut it)?;
                args.theta = v
                    .parse()
                    .map_err(|_| usage(format!("--theta expects a number, got `{v}`")))?;
            }
            "--dt" => {
                let v = take_value("--dt", inline, &mut it)?;
                args.dt = v
                    .parse()
                    .map_err(|_| usage(format!("--dt expects a number, got `{v}`")))?;
            }
            f if f.starts_with('-') => {
                return Err(usage(format!("unknown option `{f}`")));
            }
            _ if args.command == Command::Store && args.store_action.is_none() => {
                args.store_action = Some(StoreAction::parse(raw).ok_or_else(|| {
                    usage(format!(
                        "unknown store action `{raw}`; expected stats|compact|export|import"
                    ))
                })?);
            }
            _ => args.files.push(raw.clone()),
        }
    }

    if list {
        return Ok(ParsedArgs::ListCorpus);
    }
    if args.command == Command::Store {
        let Some(action) = args.store_action else {
            return Err(usage(
                "store requires an action: stats|compact|export|import",
            ));
        };
        if args.store.is_none() {
            return Err(usage("store requires --store DIR"));
        }
        let needs_file = matches!(action, StoreAction::Export | StoreAction::Import);
        match (needs_file, args.files.len()) {
            (true, 1) | (false, 0) => {}
            (true, _) => {
                return Err(usage(format!(
                    "store {} takes exactly one snapshot FILE",
                    if action == StoreAction::Export {
                        "export"
                    } else {
                        "import"
                    }
                )))
            }
            (false, _) => return Err(usage("store stats/compact take no FILE arguments")),
        }
    }
    Ok(ParsedArgs::Run(Box::new(args)))
}

/// Result of argument parsing.
#[derive(Debug)]
pub enum ParsedArgs {
    /// Run the command.
    Run(Box<Args>),
    /// `--list`: print corpus names and exit.
    ListCorpus,
}

use adds_serve::server::parse_usize_list;

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_analyze_batch() {
        let ParsedArgs::Run(a) = parse(&argv("analyze --all --jobs 4 --format json")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(a.command, Command::Analyze);
        assert!(a.all);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.format, Format::Json);
    }

    #[test]
    fn parses_inline_values_and_lists() {
        let ParsedArgs::Run(a) = parse(&argv("run --pes=2,4,7 --bodies=32 --steps 1")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(a.pes, vec![2, 4, 7]);
        assert_eq!(a.bodies, 32);
        assert_eq!(a.steps, 1);
    }

    #[test]
    fn rejects_unknown_command_and_flag() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("check --wat")).is_err());
        assert!(parse(&argv("check --jobs nope")).is_err());
    }

    #[test]
    fn files_and_programs_collect() {
        let ParsedArgs::Run(a) = parse(&argv("check --program barnes_hut a.il b.il")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(a.programs, vec!["barnes_hut"]);
        assert_eq!(a.files, vec!["a.il", "b.il"]);
    }

    #[test]
    fn parses_profile_and_trace() {
        let ParsedArgs::Run(a) = parse(&argv(
            "profile --program barnes_hut --check --trace out.json",
        ))
        .unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a.command, Command::Profile);
        assert_eq!(a.programs, vec!["barnes_hut"]);
        assert!(a.check);
        assert_eq!(a.trace.as_deref(), Some("out.json"));
        assert!(parse(&argv("profile --trace")).is_err());
        assert!(parse(&argv("profile --check=1")).is_err());
    }

    #[test]
    fn parses_serve_with_addr() {
        let ParsedArgs::Run(a) = parse(&argv(
            "serve --addr 0.0.0.0:9000 --jobs 8 --cache-cap 4096 --log",
        ))
        .unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a.command, Command::Serve);
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.jobs, 8);
        assert_eq!(a.cache_cap, 4096);
        assert!(a.log);
        assert!(parse(&argv("serve --cache-cap nope")).is_err());
        assert!(a.command.stage().is_none());
        assert_eq!(
            Command::Analyze.stage(),
            Some(adds_serve::pipeline::Stage::Analyze)
        );
    }

    #[test]
    fn parses_serve_engine_and_budget() {
        use adds_serve::server::Engine;
        let ParsedArgs::Run(a) = parse(&argv("serve --engine blocking --max-conns=512")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(a.engine, Engine::Blocking);
        assert_eq!(a.max_conns, 512);
        // Defaults: the reactor, with its stock budget.
        let ParsedArgs::Run(a) = parse(&argv("serve")).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a.engine, Engine::Reactor);
        assert_eq!(a.max_conns, adds_serve::server::DEFAULT_MAX_CONNECTIONS);
        assert!(parse(&argv("serve --engine turbo")).is_err());
        assert!(parse(&argv("serve --max-conns many")).is_err());
    }

    #[test]
    fn parses_store_subcommand() {
        let ParsedArgs::Run(a) = parse(&argv("store stats --store /tmp/cache")).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a.command, Command::Store);
        assert_eq!(a.store_action, Some(StoreAction::Stats));
        assert_eq!(a.store.as_deref(), Some("/tmp/cache"));

        let ParsedArgs::Run(a) = parse(&argv("store export --store=/tmp/cache snap.bin")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(a.store_action, Some(StoreAction::Export));
        assert_eq!(a.files, vec!["snap.bin"]);

        // Serve accepts the same flag.
        let ParsedArgs::Run(a) = parse(&argv("serve --store /tmp/cache")).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a.store.as_deref(), Some("/tmp/cache"));
    }

    #[test]
    fn store_usage_errors() {
        // Unknown action, missing action, missing --store DIR.
        assert!(parse(&argv("store frobnicate --store d")).is_err());
        assert!(parse(&argv("store --store d")).is_err());
        assert!(parse(&argv("store stats")).is_err());
        // export/import need exactly one FILE; stats/compact take none.
        assert!(parse(&argv("store export --store d")).is_err());
        assert!(parse(&argv("store import --store d a.snap b.snap")).is_err());
        assert!(parse(&argv("store compact --store d stray.snap")).is_err());
    }

    #[test]
    fn help_is_not_an_error_exit() {
        let e = parse(&argv("--help")).unwrap_err();
        assert!(e.help_requested);
        let e = parse(&argv("analyze --help")).unwrap_err();
        assert!(e.help_requested);
    }
}
