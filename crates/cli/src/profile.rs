//! `adds-cli profile` — run the corpus workloads on the bytecode VM with
//! profiling enabled and emit ranked hot-opcode / hot-`parfor` tables.
//!
//! The simulated clock drives the attribution, so the numbers are
//! deterministic: the same program and inputs always produce the same
//! profile. JSON output carries the `adds.profile/v2` schema (v2 added
//! the per-superblock execution counts and the compile-time inlining
//! stats); `--check` re-derives the profile invariants (counts conserve,
//! superblock executions reconcile with `Super` dispatches, parallel
//! variants attribute their `parfor` sites) and times the profiled VM
//! against the plain VM to hold the overhead bound, for CI smoke.

use crate::args::{Args, Format};
use crate::json::Json;
use adds::lang::programs;
use adds::lang::types::{check_source, TypedProgram};
use adds::machine::diff::workloads;
use adds::machine::{
    CompiledProgram, CostModel, Exec, MachineConfig, Opcode, Value, Vm, VmProfile,
};

const PES: usize = 4;

/// Ceiling on wall-time `profiled / plain` for the overhead gate: with
/// per-superblock counters the profiled VM must stay within 10% of the
/// unprofiled VM on the hot parallel list workload (the pre-superblock
/// profiler sat at 1.21 there).
const MAX_PROFILED_OVER_VM: f64 = 1.10;

/// Repetitions per arm per measurement round; min-of-N on both sides
/// filters scheduler noise the same way the bench driver does. The arms
/// alternate every rep so clock drift lands on both evenly, and one
/// untimed warmup per arm absorbs cold caches and page faults.
const OVERHEAD_REPS: usize = 7;

/// Measurement rounds for the overhead gate. Each round produces one
/// `profiled_min / plain_min` ratio; the gate takes the smallest. A
/// single round's ratio is only an upper bound on the true overhead
/// (noise can inflate either arm's minimum), so the best round is the
/// most faithful estimate — and a genuine regression past the bound
/// still fails every round.
const OVERHEAD_ROUNDS: usize = 3;

/// List length for the overhead measurement — larger than the profiled
/// corpus runs so each timed call is long enough (milliseconds) for the
/// ratio of minima to be stable on a noisy host.
const OVERHEAD_LIST_LEN: usize = 50_000;

/// One profileable corpus workload: the program, its entry point, and the
/// heap setup that builds its input (sized down from the bench driver —
/// profiling wants representative mix, not maximum load).
struct Workload {
    name: &'static str,
    entry: &'static str,
    source: &'static str,
    /// Run a parallelized variant too (the program strip-mines).
    parallelizes: bool,
    setup: fn(&mut dyn Exec) -> Vec<Value>,
}

fn scale_args(m: &mut dyn Exec) -> Vec<Value> {
    vec![workloads::scale_list(m, 5_000), Value::Int(3)]
}

fn orth_args(m: &mut dyn Exec) -> Vec<Value> {
    let widths: Vec<usize> = (0..100).map(|r| 40 + (r % 37)).collect();
    vec![workloads::orth_rows(m, &widths), Value::Int(3)]
}

fn sum_args(m: &mut dyn Exec) -> Vec<Value> {
    vec![workloads::sum_list(m, 5_000)]
}

fn bh_args(m: &mut dyn Exec) -> Vec<Value> {
    let bodies = adds::machine::uniform_cloud(64, 7);
    let head = adds::machine::sequent::build_particles(m, &bodies);
    vec![head, Value::Int(1), Value::Real(0.7), Value::Real(0.01)]
}

/// The runnable corpus workloads (same set the machine bench exercises).
const WORKLOADS: &[Workload] = &[
    Workload {
        name: "list_scale_adds",
        entry: "scale",
        source: programs::LIST_SCALE_ADDS,
        parallelizes: true,
        setup: scale_args,
    },
    Workload {
        name: "orth_row_scale",
        entry: "scale_rows",
        source: programs::ORTH_ROW_SCALE,
        parallelizes: true,
        setup: orth_args,
    },
    Workload {
        name: "barnes_hut",
        entry: "simulate",
        source: programs::BARNES_HUT,
        parallelizes: true,
        setup: bh_args,
    },
    Workload {
        name: "list_sum",
        entry: "sum",
        source: programs::LIST_SUM,
        parallelizes: false,
        setup: sum_args,
    },
];

/// One profiled run: workload × variant, with the VM's counters and the
/// captured profile.
struct ProfiledRun {
    name: &'static str,
    variant: &'static str,
    entry: &'static str,
    stmts: u64,
    cycles: u64,
    prog: CompiledProgram,
    profile: Box<VmProfile>,
}

fn config() -> MachineConfig {
    MachineConfig {
        pes: PES,
        cost: CostModel::sequent(),
        detect_conflicts: true,
        ..MachineConfig::default()
    }
}

fn profile_one(
    w: &Workload,
    variant: &'static str,
    tp: &TypedProgram,
) -> Result<ProfiledRun, String> {
    let prog = CompiledProgram::compile(tp);
    let mut vm = Vm::new(&prog, config());
    vm.enable_profiling();
    let args = (w.setup)(&mut vm);
    vm.call(w.entry, &args)
        .map_err(|e| format!("{} ({variant}): {e:?}", w.name))?;
    if !vm.conflicts.is_empty() {
        return Err(format!(
            "{} ({variant}): corpus workloads must be conflict-free",
            w.name
        ));
    }
    let stmts = vm.stats.stmts;
    let cycles = vm.clock;
    let profile = vm.take_profile().expect("profiling was enabled");
    Ok(ProfiledRun {
        name: w.name,
        variant,
        entry: w.entry,
        stmts,
        cycles,
        prog,
        profile,
    })
}

/// Run every selected workload (sequential and, where the program
/// strip-mines, parallelized).
fn profile_selected(selected: &[&Workload]) -> Result<Vec<ProfiledRun>, String> {
    let mut runs = Vec::new();
    for w in selected {
        let tp = check_source(w.source).map_err(|e| format!("{}: {e:?}", w.name))?;
        runs.push(profile_one(w, "sequential", &tp)?);
        if w.parallelizes {
            let src = adds::core::parallelize_to_source(w.source)
                .map_err(|e| format!("{}: parallelize failed: {e:?}", w.name))?;
            let tp = check_source(&src).map_err(|e| format!("{}: {e:?}", w.name))?;
            runs.push(profile_one(w, "parallelized", &tp)?);
        }
    }
    Ok(runs)
}

fn to_json(runs: &[ProfiledRun]) -> Json {
    Json::obj([
        ("schema", Json::str("adds.profile/v2")),
        ("pes", Json::UInt(PES as u64)),
        ("cost_model", Json::str("sequent")),
        ("programs", Json::Arr(runs.iter().map(run_json).collect())),
    ])
}

fn run_json(r: &ProfiledRun) -> Json {
    let total = r.profile.total_ops().max(1);
    Json::obj([
        ("name", Json::str(r.name)),
        ("variant", Json::str(r.variant)),
        ("entry", Json::str(r.entry)),
        ("stmts", Json::UInt(r.stmts)),
        ("cycles", Json::UInt(r.cycles)),
        ("total_ops", Json::UInt(r.profile.total_ops())),
        (
            "superblock_count",
            Json::UInt(r.prog.superblock_count() as u64),
        ),
        ("inlined_calls", Json::UInt(r.prog.inlined_calls() as u64)),
        (
            "superblocks",
            Json::Arr(
                r.profile
                    .ranked_superblocks()
                    .into_iter()
                    .map(|(id, execs)| {
                        let (ops, fuel) = r.prog.superblock_info(id as usize).unwrap_or((0, 0));
                        Json::obj([
                            ("id", Json::UInt(id as u64)),
                            ("execs", Json::UInt(execs)),
                            ("ops", Json::UInt(ops as u64)),
                            ("fuel", Json::UInt(fuel as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "opcodes",
            Json::Arr(
                r.profile
                    .ranked_opcodes()
                    .into_iter()
                    .map(|(op, n)| {
                        Json::obj([
                            ("op", Json::str(op.name())),
                            ("count", Json::UInt(n)),
                            (
                                "share",
                                Json::Float(((n as f64 / total as f64) * 1e4).round() / 1e4),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "loops",
            Json::Arr(
                r.profile
                    .ranked_loops()
                    .into_iter()
                    .map(|((func, pc), l)| {
                        Json::obj([
                            ("func", Json::str(r.prog.func_name(func).unwrap_or("?"))),
                            ("body_pc", Json::UInt(pc as u64)),
                            ("iters", Json::UInt(l.iters)),
                            ("cycles", Json::UInt(l.cycles)),
                            ("max_iter_cycles", Json::UInt(l.max_iter_cycles)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn to_text(runs: &[ProfiledRun]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in runs {
        let total = r.profile.total_ops();
        let _ = writeln!(
            s,
            "{} ({}) — entry {}, {} ops, {} stmts, {} cycles @ {} PEs",
            r.name, r.variant, r.entry, total, r.stmts, r.cycles, PES
        );
        let _ = writeln!(s, "  {:<14} {:>12} {:>7}", "opcode", "count", "share");
        for (op, n) in r.profile.ranked_opcodes().into_iter().take(10) {
            let _ = writeln!(
                s,
                "  {:<14} {:>12} {:>6.1}%",
                op.name(),
                n,
                n as f64 / total.max(1) as f64 * 100.0
            );
        }
        let sbs = r.profile.ranked_superblocks();
        if !sbs.is_empty() {
            let _ = writeln!(
                s,
                "  {} superblocks fused, {} calls inlined; hottest:",
                r.prog.superblock_count(),
                r.prog.inlined_calls()
            );
            let _ = writeln!(
                s,
                "  {:<14} {:>12} {:>5} {:>5}",
                "superblock", "execs", "ops", "fuel"
            );
            for (id, execs) in sbs.into_iter().take(5) {
                let (ops, fuel) = r.prog.superblock_info(id as usize).unwrap_or((0, 0));
                let _ = writeln!(s, "  sb{:<12} {:>12} {:>5} {:>5}", id, execs, ops, fuel);
            }
        }
        let loops = r.profile.ranked_loops();
        if !loops.is_empty() {
            let _ = writeln!(
                s,
                "  {:<22} {:>9} {:>12} {:>10}",
                "parfor (func@pc)", "iters", "cycles", "max/iter"
            );
            for ((func, pc), l) in loops {
                let site = format!("{}@{}", r.prog.func_name(func).unwrap_or("?"), pc);
                let _ = writeln!(
                    s,
                    "  {:<22} {:>9} {:>12} {:>10}",
                    site, l.iters, l.cycles, l.max_iter_cycles
                );
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// The profile invariants `--check` pins (CI smoke): every run dispatched
/// work, counts conserve under the rankings (opcodes *and* superblocks —
/// every `Super` dispatch and `SuperLoop` iteration lands in exactly one
/// superblock counter), and parallelized variants attribute at least one
/// `parfor` site whose cycles fit the run.
fn check_runs(runs: &[ProfiledRun]) -> Result<(), String> {
    for r in runs {
        let total = r.profile.total_ops();
        if total == 0 {
            return Err(format!("{} ({}): empty profile", r.name, r.variant));
        }
        let ranked_sum: u64 = r.profile.ranked_opcodes().iter().map(|&(_, n)| n).sum();
        if ranked_sum != total {
            return Err(format!(
                "{} ({}): ranked opcode counts sum to {ranked_sum}, expected {total}",
                r.name, r.variant
            ));
        }
        let sb_sum: u64 = r.profile.sb_counts.iter().sum();
        let super_dispatches = r.profile.op_counts[Opcode::Super as usize];
        if sb_sum != super_dispatches {
            return Err(format!(
                "{} ({}): superblock executions sum to {sb_sum}, but {super_dispatches} \
                 Super dispatches were counted",
                r.name, r.variant
            ));
        }
        if r.name.starts_with("list_") && r.prog.superblock_count() == 0 {
            return Err(format!(
                "{} ({}): list workload compiled with no fused superblocks",
                r.name, r.variant
            ));
        }
        for (id, execs) in r.profile.ranked_superblocks() {
            if execs == 0 || r.prog.superblock_info(id as usize).is_none() {
                return Err(format!(
                    "{} ({}): profile counted superblock {id} the program does not define",
                    r.name, r.variant
                ));
            }
        }
        let loops = r.profile.ranked_loops();
        if r.variant == "parallelized" && loops.is_empty() {
            return Err(format!(
                "{} (parallelized): no parfor site attributed",
                r.name
            ));
        }
        for ((func, pc), l) in &loops {
            if r.prog.func_name(*func).is_none() {
                return Err(format!(
                    "{} ({}): loop site references unknown function id {func}",
                    r.name, r.variant
                ));
            }
            if l.iters == 0 || l.cycles == 0 || l.max_iter_cycles > l.cycles {
                return Err(format!(
                    "{} ({}): degenerate loop profile at pc {pc}: {l:?}",
                    r.name, r.variant
                ));
            }
        }
    }
    Ok(())
}

/// Wall-time overhead gate: the per-superblock profiler must cost ≤
/// [`MAX_PROFILED_OVER_VM`] on the hot parallel list workload (the bench
/// row the bound was set against: `list_scale_adds` parallelized,
/// conflict detection off, so the fused register-carried loops — the
/// paths the profiling branch could most plausibly slow down — are the
/// ones being timed). Min-of-[`OVERHEAD_REPS`] on both arms, alternating
/// so drift hits them evenly.
fn check_overhead() -> Result<f64, String> {
    let src = adds::core::parallelize_to_source(programs::LIST_SCALE_ADDS)
        .map_err(|e| format!("overhead gate: parallelize failed: {e:?}"))?;
    let tp = check_source(&src).map_err(|e| format!("overhead gate: {e:?}"))?;
    let prog = CompiledProgram::compile(&tp);
    let cfg = MachineConfig {
        pes: PES,
        cost: CostModel::sequent(),
        detect_conflicts: false,
        ..MachineConfig::default()
    };
    let run = |profiled: bool| -> Result<u64, String> {
        let mut vm = Vm::new(&prog, cfg.clone());
        if profiled {
            vm.enable_profiling();
        }
        let head = workloads::scale_list(&mut vm, OVERHEAD_LIST_LEN);
        let t = std::time::Instant::now();
        vm.call("scale", &[head, Value::Int(3)])
            .map_err(|e| format!("overhead gate: {e:?}"))?;
        Ok(t.elapsed().as_nanos() as u64)
    };
    run(false)?;
    run(true)?;
    let mut ratio = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        let (mut plain, mut profiled) = (u64::MAX, u64::MAX);
        for _ in 0..OVERHEAD_REPS {
            plain = plain.min(run(false)?);
            profiled = profiled.min(run(true)?);
        }
        ratio = ratio.min(profiled as f64 / plain.max(1) as f64);
    }
    if ratio > MAX_PROFILED_OVER_VM {
        return Err(format!(
            "profiled VM is {ratio:.2}x the plain VM on list_scale_adds (parallelized); \
             the per-superblock profiler must stay ≤ {MAX_PROFILED_OVER_VM}"
        ));
    }
    Ok(ratio)
}

/// Entry point for `adds-cli profile`. Returns the process exit code.
pub fn run_profile(args: &Args) -> i32 {
    if !args.files.is_empty() {
        crate::emit_err(
            "error: `profile` runs the built-in corpus workloads; \
             use --program NAME to select one\n",
        );
        return 2;
    }
    let selected: Vec<&Workload> = if args.programs.is_empty() {
        WORKLOADS.iter().collect()
    } else {
        let mut picked = Vec::new();
        for name in &args.programs {
            match WORKLOADS.iter().find(|w| w.name == name.as_str()) {
                Some(w) => picked.push(w),
                None => {
                    let known: Vec<&str> = WORKLOADS.iter().map(|w| w.name).collect();
                    crate::emit_err(&format!(
                        "error: no profileable workload `{name}`; known: {}\n",
                        known.join(", ")
                    ));
                    return 2;
                }
            }
        }
        picked
    };
    let runs = match profile_selected(&selected) {
        Ok(r) => r,
        Err(msg) => {
            crate::emit_err(&format!("error: {msg}\n"));
            return 1;
        }
    };
    if args.check {
        return match check_runs(&runs).and_then(|()| check_overhead()) {
            Ok(ratio) => {
                crate::emit(&format!(
                    "profile ok: {} run(s) validated, profiled_over_vm {ratio:.2} \
                     (bound {MAX_PROFILED_OVER_VM})\n",
                    runs.len()
                ));
                0
            }
            Err(msg) => {
                crate::emit_err(&format!("error: {msg}\n"));
                1
            }
        };
    }
    match args.format {
        Format::Json => crate::emit(&to_json(&runs).pretty()),
        Format::Text => crate::emit(&to_text(&runs)),
    }
    0
}
