//! The `ladder` subcommand: the paper's §2 motivation as a runnable
//! experiment. Every ladder program is analyzed by each prior-work baseline
//! (conservative blob, k-limited storage graphs, allocation-site naming)
//! and by the ADDS + general-path-matrix pipeline; the table shows which
//! analyses license parallelizing the program's pointer-chasing loop.

use crate::json::{str_arr, Json};
use adds::klimit::{self, Mode};

/// Verdict of one analysis on one program.
#[derive(Clone, Debug)]
pub struct LadderCell {
    /// Analysis name (baseline mode or `adds_gpm`).
    pub analysis: String,
    /// The analysis licenses parallelization of the main loop.
    pub parallelizable: bool,
    /// Reasons when it does not.
    pub reasons: Vec<String>,
}

/// One ladder program's row.
#[derive(Clone, Debug)]
pub struct LadderRow {
    /// Program name (from `adds_klimit::programs::ladder_programs`).
    pub program: String,
    /// Analyzed function.
    pub function: String,
    /// One cell per analysis, baselines first, `adds_gpm` last.
    pub cells: Vec<LadderCell>,
}

/// Run the full ladder with the given `k` values for the k-limited baseline.
pub fn run_ladder(klimits: &[usize]) -> Vec<LadderRow> {
    let mut modes = vec![Mode::Blob];
    for &k in klimits {
        modes.push(Mode::KLimit(k));
    }
    modes.push(Mode::AllocSite);

    let mut rows = Vec::new();
    for (name, src, func) in klimit::programs::ladder_programs() {
        let mut cells = Vec::new();
        for &mode in &modes {
            let checks = klimit::check_source(src, func, mode)
                .unwrap_or_else(|d| panic!("ladder program {name} fails to compile: {d}"));
            // The ladder programs each have exactly one interesting loop;
            // the program parallelizes iff every checked loop does.
            let parallelizable = !checks.is_empty() && checks.iter().all(|c| c.parallelizable);
            let reasons =
                crate::report::dedup_reasons(checks.iter().flat_map(|c| c.reasons.clone()));
            cells.push(LadderCell {
                analysis: mode.name(),
                parallelizable,
                reasons,
            });
        }

        // The ADDS + GPM rung: analyze the ADDS-annotated twin.
        let twin = klimit::programs::adds_twin(src);
        let compiled = adds::core::compile(&twin)
            .unwrap_or_else(|d| panic!("ladder twin {name} fails to compile: {d}"));
        let an = compiled
            .analysis(func)
            .unwrap_or_else(|| panic!("ladder twin {name} has no analysis for {func}"));
        let checks = adds::core::check_function(&compiled.tp, &compiled.summaries, an, func);
        let parallelizable = !checks.is_empty() && checks.iter().all(|c| c.parallelizable);
        let reasons = crate::report::dedup_reasons(
            checks
                .iter()
                .flat_map(|c| c.reasons.iter().map(|r| r.to_string())),
        );
        cells.push(LadderCell {
            analysis: "adds_gpm".to_string(),
            parallelizable,
            reasons,
        });

        rows.push(LadderRow {
            program: name.to_string(),
            function: func.to_string(),
            cells,
        });
    }
    rows
}

/// JSON document for `ladder --format json`.
pub fn to_json(rows: &[LadderRow]) -> Json {
    Json::obj([
        ("schema", Json::str("adds.ladder/v1")),
        (
            "programs",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("program", Json::str(&r.program)),
                            ("function", Json::str(&r.function)),
                            (
                                "verdicts",
                                Json::Arr(
                                    r.cells
                                        .iter()
                                        .map(|c| {
                                            Json::obj([
                                                ("analysis", Json::str(&c.analysis)),
                                                ("parallelizable", Json::Bool(c.parallelizable)),
                                                ("reasons", str_arr(&c.reasons)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text table for `ladder`.
pub fn to_text(rows: &[LadderRow]) -> String {
    let mut out = String::new();
    let Some(first) = rows.first() else {
        return "no ladder programs\n".to_string();
    };
    let analyses: Vec<&str> = first.cells.iter().map(|c| c.analysis.as_str()).collect();
    let prog_w = rows
        .iter()
        .map(|r| r.program.len())
        .max()
        .unwrap_or(8)
        .max("program".len());
    out.push_str(&format!("{:<prog_w$}", "program"));
    for a in &analyses {
        out.push_str(&format!("  {a:^18}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<prog_w$}", r.program));
        for c in &r.cells {
            let mark = if c.parallelizable {
                "parallel"
            } else {
                "serial"
            };
            out.push_str(&format!("  {mark:^18}"));
        }
        out.push('\n');
    }
    out.push_str("\n(parallel = the analysis proves the pointer-chasing loop dependence-free)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shows_monotone_precision() {
        let rows = run_ladder(&[1, 3]);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // adds_gpm is the last cell and must be at least as strong as
            // the conservative baseline (first cell).
            let blob = &r.cells[0];
            let gpm = r.cells.last().unwrap();
            assert!(
                !blob.parallelizable || gpm.parallelizable,
                "{}: blob parallelizes but ADDS+GPM does not",
                r.program
            );
        }
        // The headline claim: ADDS+GPM parallelizes the parameter-passing
        // program that every storage-graph baseline must give up on.
        let param = rows.iter().find(|r| r.program.contains("param")).unwrap();
        assert!(param.cells.last().unwrap().parallelizable);
        assert!(!param.cells[0].parallelizable);
    }

    #[test]
    fn json_and_text_render() {
        let rows = run_ladder(&[1]);
        let j = to_json(&rows).pretty();
        assert!(j.contains("\"schema\": \"adds.ladder/v1\""));
        assert!(to_text(&rows).contains("program"));
    }
}
