//! Per-k sweeps of the k-limit ladder (§2.1) — the Table-1-style comparison
//! of "loop build (append)" vs "loop build (prepend)" at every k in 1..=4.
//!
//! Why raising k never rescues the loop-built lists:
//!
//! * **append** (`tail->next = b; tail = b`): after the builder's fixpoint,
//!   the k-limited storage graph holds cells for the first k allocation
//!   depths and one *summary* cell for everything deeper. The `next` edge
//!   out of the summary cell points back into the summary cell — a
//!   manufactured cycle — so `walk_is_distinct` cannot rule out revisiting
//!   a node, at ANY finite k: the list's length is unbounded while k is
//!   fixed. This is exactly §2.1's central complaint about \[JM81\]-style
//!   k-limiting.
//! * **prepend** (`b->next = head; head = b`): identical failure under
//!   k-limiting, for the same reason — the direction the list grows does
//!   not matter once the interior cells merge.
//!
//! Where the two DO diverge is the allocation-site (CWZ-style) rung:
//! append's stores always target a *virgin* cell (the freshly allocated
//! `b`), so every `next` edge respects allocation order and the graph stays
//! provably acyclic; prepend's store targets the OLD head — a cell that
//! already carries pointers — so the ordering argument collapses (full
//! \[CWZ90\] recovers this case with reference counts; our simplified mode
//! documents the imprecision). The ADDS-declared twin licenses both, since
//! the declared shape is indifferent to build order.

use adds_klimit::{programs, verdict, Mode};

/// The walk loop's verdict under `mode` (the last chase loop of the
/// function — the scaling walk, not the builder loop).
fn walk_verdict(src: &str, func: &str, mode: Mode) -> bool {
    let checks = verdict::check_source(src, func, mode).expect("program checks");
    checks
        .iter()
        .rfind(|c| c.pattern.is_some())
        .expect("walk loop recognized")
        .parallelizable
}

#[test]
fn append_vs_prepend_per_k_table() {
    // (k, append licensed?, prepend licensed?) — neither is licensed at any
    // k: the summary-cell cycle defeats the walk argument regardless of
    // build direction.
    for k in 1..=4 {
        assert!(
            !walk_verdict(programs::LOOP_BUILT_SCALE, "main", Mode::KLimit(k)),
            "append must NOT be licensed at k={k}: the interior cells merge \
             into a summary node whose next-edge is a self-loop"
        );
        assert!(
            !walk_verdict(programs::PREPEND_BUILT_SCALE, "main", Mode::KLimit(k)),
            "prepend must NOT be licensed at k={k}, same summary cycle"
        );
    }
}

#[test]
fn append_failure_reason_is_the_summary_cycle() {
    // The rejection must come from the walk argument (the manufactured
    // cycle), not from the body discipline — the loop body itself is clean.
    for k in 1..=4 {
        let checks =
            verdict::check_source(programs::LOOP_BUILT_SCALE, "main", Mode::KLimit(k)).unwrap();
        let walk = checks.iter().rfind(|c| c.pattern.is_some()).unwrap();
        assert!(
            walk.reasons.iter().any(|r| r.contains("revisit")),
            "k={k}: {:?}",
            walk.reasons
        );
    }
}

#[test]
fn straight_line_shows_the_k_threshold() {
    // The k-limit family is not useless — a STATICALLY bounded list is
    // licensed once k covers its depth. The 4-cell straight-line build
    // needs k >= 2 (cells at depth 0 and 1 stay distinct, the depth-2/3
    // merge no longer places the chain edge inside a summary cell on the
    // path the walk visits).
    assert!(!walk_verdict(
        programs::STRAIGHT_LINE_SCALE,
        "main",
        Mode::KLimit(1)
    ));
    for k in 2..=4 {
        assert!(
            walk_verdict(programs::STRAIGHT_LINE_SCALE, "main", Mode::KLimit(k)),
            "straight-line build must be licensed at k={k}"
        );
    }
}

#[test]
fn alloc_site_splits_append_from_prepend() {
    // The Table-1 divergence: allocation-site ordering licenses append
    // (virgin-target stores keep edges allocation-ordered) but not our
    // simplified prepend (the store target already carries pointers).
    assert!(walk_verdict(
        programs::LOOP_BUILT_SCALE,
        "main",
        Mode::AllocSite
    ));
    assert!(!walk_verdict(
        programs::PREPEND_BUILT_SCALE,
        "main",
        Mode::AllocSite
    ));
}

#[test]
fn adds_twin_is_indifferent_to_build_order() {
    // The paper's rung: with the declaration, both build orders license the
    // walk — shape is declared, not inferred from the builder.
    for src in [programs::LOOP_BUILT_SCALE, programs::PREPEND_BUILT_SCALE] {
        let twin = programs::adds_twin(src);
        let c = adds_core::compile(&twin).expect("twin compiles");
        let an = c.analysis("main").expect("analyzed");
        let checks = adds_core::check_function(&c.tp, &c.summaries, an, "main");
        let walk = checks.iter().rfind(|c| c.pattern.is_some()).unwrap();
        assert!(walk.parallelizable, "{:?}", walk.reasons);
    }
}
