//! Robustness of the §2.1 baseline analyses on the paper's real programs:
//! every function of the Barnes–Hut IL (array-of-pointer fields, recursion,
//! mutual calls, nested control flow) must analyze without panicking and
//! produce sound-looking graphs, in every mode.

use adds_klimit::{analyze_function, check_function, classify_shape, Mode, Shape};
use adds_lang::programs;
use adds_lang::types::check_source;

const MODES: [Mode; 4] = [
    Mode::Blob,
    Mode::KLimit(1),
    Mode::KLimit(3),
    Mode::AllocSite,
];

#[test]
fn every_barnes_hut_function_analyzes_in_every_mode() {
    let tp = check_source(programs::BARNES_HUT).unwrap();
    for f in &tp.program.funcs {
        for mode in MODES {
            let fg = analyze_function(&tp, &f.name, mode)
                .unwrap_or_else(|| panic!("{}: no analysis", f.name));
            assert_eq!(fg.func, f.name);
            // Exit graphs must be renderable and self-consistent.
            let rendered = fg.exit.render();
            assert!(rendered.is_ascii() || !rendered.is_empty());
        }
    }
}

#[test]
fn build_tree_loops_are_never_licensed() {
    // build_tree mutates the structure through calls; no baseline (and
    // also not the ADDS pipeline — see core's tests) may parallelize it.
    let tp = check_source(programs::BARNES_HUT).unwrap();
    for mode in MODES {
        for chk in check_function(&tp, "build_tree", mode) {
            assert!(!chk.parallelizable, "{}: {:?}", mode.name(), chk.span);
        }
    }
}

#[test]
fn array_pointer_fields_are_tracked_per_name() {
    // Stores through subtrees[i] are merged over the whole field (index-
    // insensitive), which must be conservative: after storing through one
    // index, a load from any index may see the stored cell.
    let src = "
type T { int v; T *kids[4]; };
procedure main() {
    var a: T*; var b: T*; var c: T*;
    a = new T;
    b = new T;
    a->kids[0] = b;
    c = a->kids[3];
}";
    let tp = check_source(src).unwrap();
    let fg = analyze_function(&tp, "main", Mode::AllocSite).unwrap();
    assert_eq!(
        fg.exit.points_to("c"),
        fg.exit.points_to("b"),
        "index-insensitive field load must see the store\n{}",
        fg.exit
    );
}

#[test]
fn if_join_unions_both_branches() {
    let src = "
type L { int v; L *next; };
procedure main(flag: bool) {
    var a: L*; var b: L*; var p: L*;
    a = new L;
    b = new L;
    if flag { p = a; } else { p = b; }
}";
    let tp = check_source(src).unwrap();
    let fg = analyze_function(&tp, "main", Mode::AllocSite).unwrap();
    let pts = fg.exit.points_to("p");
    assert_eq!(pts.len(), 2, "{}", fg.exit);
    assert!(adds_klimit::may_alias(&fg.exit, "p", "a"));
    assert!(adds_klimit::may_alias(&fg.exit, "p", "b"));
    assert!(!adds_klimit::may_alias(&fg.exit, "a", "b"));
}

#[test]
fn counted_for_loop_is_treated_as_zero_or_more() {
    // The body may never run: bindings before the loop must survive the
    // join, and loop effects must be included.
    let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var p: L*;
    var i: int;
    a = new L;
    p = a;
    for i = 0 to 9 {
        p = new L;
    }
}";
    let tp = check_source(src).unwrap();
    let fg = analyze_function(&tp, "main", Mode::AllocSite).unwrap();
    let pts = fg.exit.points_to("p");
    assert!(pts.contains(&adds_klimit::Label::Fresh(0)), "{}", fg.exit);
    assert!(pts.contains(&adds_klimit::Label::Fresh(1)), "{}", fg.exit);
}

#[test]
fn acyclic_build_classifies_acyclic_in_allocsite_mode() {
    // An append-built list from the roots of all variables: shape must
    // not be Cyclic under the ordering refinement.
    let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var t: L*; var b: L*;
    var i: int;
    a = new L;
    t = a;
    i = 0;
    while i < 50 {
        b = new L;
        t->next = b;
        t = b;
        i = i + 1;
    }
}";
    let tp = check_source(src).unwrap();
    let fg = analyze_function(&tp, "main", Mode::AllocSite).unwrap();
    let roots = fg.exit.points_to("a");
    assert_ne!(
        classify_shape(&fg.exit, &roots),
        Shape::Cyclic,
        "{}",
        fg.exit
    );
    // The same program under k-limiting *is* classified cyclic — the
    // spurious cycle of §2.1.
    let fg = analyze_function(&tp, "main", Mode::KLimit(2)).unwrap();
    let roots = fg.exit.points_to("a");
    assert_eq!(
        classify_shape(&fg.exit, &roots),
        Shape::Cyclic,
        "{}",
        fg.exit
    );
}

#[test]
fn explicit_ring_is_cyclic_in_every_mode() {
    let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var b: L*;
    a = new L;
    b = new L;
    a->next = b;
    b->next = a;
}";
    let tp = check_source(src).unwrap();
    for mode in MODES {
        let fg = analyze_function(&tp, "main", mode).unwrap();
        let roots = fg.exit.points_to("a");
        assert_eq!(
            classify_shape(&fg.exit, &roots),
            Shape::Cyclic,
            "{}: a ring must classify cyclic",
            mode.name()
        );
    }
}

#[test]
fn mode_names_are_stable_for_reports() {
    assert_eq!(Mode::Blob.name(), "conservative");
    assert_eq!(Mode::KLimit(2).name(), "k-limited(k=2)");
    assert_eq!(Mode::AllocSite.name(), "alloc-site (CWZ)");
}
