//! Strip-mine parallelizability verdicts under the §2.1 baselines.
//!
//! For every pointer-chasing loop `while p <> NULL { body; p = p->f; }`
//! this module asks the question §4.3.2 asks of general path matrix
//! analysis — *can two iterations touch the same node?* — but answers it
//! from a storage graph instead of an ADDS-guided path matrix. The verdict
//! requires:
//!
//! 1. the loop matches the chase pattern;
//! 2. the body writes only through `p` (single-dereference stores) and
//!    never mutates pointer fields;
//! 3. the body makes no calls — a call havocs the graph, and these
//!    analyses have no interprocedural summaries (ADDS declarations are
//!    exactly what lets the paper's analysis cross call boundaries);
//! 4. at the loop-head fixpoint, [`walk_is_distinct`] holds for
//!    (`pts(p)`, `f`): the advance can never revisit a cell.
//!
//! The corresponding ADDS-side verdict lives in `adds-core::depend`; the
//! precision-ladder ablation (bench bin `prior_work`) prints both.

use crate::analysis::{analyze_function, FnGraphs, Mode};
use crate::queries::walk_is_distinct;
use adds_lang::ast::*;
use adds_lang::source::{Diagnostics, Span};
use adds_lang::types::TypedProgram;

/// Verdict for one loop under one baseline analysis.
#[derive(Clone, Debug)]
pub struct PriorCheck {
    /// Which baseline produced this verdict.
    pub mode: Mode,
    /// The loop's source span.
    pub span: Span,
    /// The chase variable/field if the loop matches the pattern.
    pub pattern: Option<(String, String)>,
    /// Whether the baseline can license strip-mining.
    pub parallelizable: bool,
    /// Human-readable reasons when not parallelizable.
    pub reasons: Vec<String>,
}

/// Check every `while` loop of `func` under `mode`.
pub fn check_function(tp: &TypedProgram, func: &str, mode: Mode) -> Vec<PriorCheck> {
    let Some(f) = tp.program.func(func) else {
        return Vec::new();
    };
    let Some(graphs) = analyze_function(tp, func, mode) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    collect_whiles(&f.body, &mut |cond, body, span| {
        out.push(check_one(tp, func, mode, &graphs, cond, body, span));
    });
    out
}

/// Parse + typecheck + check in one step.
pub fn check_source(src: &str, func: &str, mode: Mode) -> Result<Vec<PriorCheck>, Diagnostics> {
    let tp = adds_lang::types::check_source(src)?;
    Ok(check_function(&tp, func, mode))
}

fn collect_whiles(b: &Block, visit: &mut impl FnMut(&Expr, &Block, Span)) {
    for s in &b.stmts {
        match s {
            Stmt::While { cond, body, span } => {
                visit(cond, body, *span);
                collect_whiles(body, visit);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_whiles(then_blk, visit);
                if let Some(e) = else_blk {
                    collect_whiles(e, visit);
                }
            }
            Stmt::For { body, .. } => collect_whiles(body, visit),
            _ => {}
        }
    }
}

fn check_one(
    tp: &TypedProgram,
    func: &str,
    mode: Mode,
    graphs: &FnGraphs,
    cond: &Expr,
    body: &Block,
    span: Span,
) -> PriorCheck {
    let fail = |pattern: Option<(String, String)>, reasons: Vec<String>| PriorCheck {
        mode,
        span,
        pattern,
        parallelizable: false,
        reasons,
    };

    // Pattern: `while p <> NULL`.
    let Some(var) = chase_cond_var(cond) else {
        return fail(None, vec!["loop condition is not `p <> NULL`".into()]);
    };
    if !matches!(tp.var_ty(func, &var), Some(Ty::Ptr(_))) {
        return fail(None, vec![format!("`{var}` is not a pointer variable")]);
    }

    // Pattern: exactly one advance `p = p->f`, as the last statement, and
    // no other assignment to `p` anywhere in the body (including nested
    // blocks — a conditional reassignment would break the walk argument).
    let advance_field = match body.stmts.last() {
        Some(Stmt::Assign { lhs, rhs, .. }) if lhs.is_var() && lhs.base == var => {
            match rhs.as_pointer_path() {
                Some((base, path)) if base == var && path.len() == 1 => path[0].clone(),
                _ => {
                    return fail(
                        None,
                        vec![format!("`{var}` reassigned to a non-advance value")],
                    )
                }
            }
        }
        _ => {
            return fail(
                None,
                vec![format!("no advance statement `{var} = {var}->f`")],
            )
        }
    };
    if assigns_var_nested(&body.stmts[..body.stmts.len() - 1], &var) {
        return fail(
            None,
            vec![format!("`{var}` is assigned elsewhere in the loop body")],
        );
    }
    let field = advance_field;
    let pattern = Some((var.clone(), field.clone()));
    let mut reasons = Vec::new();

    // Body discipline: writes only through `var`, no pointer-field stores,
    // no calls.
    for s in &body.stmts[..body.stmts.len() - 1] {
        body_discipline(tp, func, &var, s, &mut reasons);
    }

    // Cross-iteration read/write disjointness: any field the body writes
    // may only be *read* as `var->field` (the iteration's own node).
    // Reading it through another pointer, or through a longer chain like
    // `var->next->field`, reaches a node some other iteration writes.
    let written = written_scalar_fields(&body.stmts[..body.stmts.len() - 1], &var);
    let mut bad_reads = Vec::new();
    for s in &body.stmts[..body.stmts.len() - 1] {
        collect_conflicting_reads(s, &var, &written, &mut bad_reads);
    }
    for r in bad_reads {
        reasons.push(format!(
            "body reads written field `{r}` through a pointer other than `{var}` \
             (cross-iteration read/write dependence)"
        ));
    }

    // The alias fact, from the loop-head fixpoint graph.
    let Some(lg) = graphs.loop_at(span.start) else {
        reasons.push("no fixpoint recorded for this loop".into());
        return fail(pattern, reasons);
    };
    let start = lg.head.points_to(&var);
    if start.is_empty() {
        // p is definitely NULL: the loop never runs; trivially fine.
    } else if !walk_is_distinct(&lg.head, &start, &field) {
        reasons.push(format!(
            "cannot prove `{var} = {var}->{field}` never revisits a node \
             (summary/external cycle in the storage graph)"
        ));
    }

    PriorCheck {
        mode,
        span,
        pattern,
        parallelizable: reasons.is_empty(),
        reasons,
    }
}

/// Extract `p` from `p <> NULL` / `NULL <> p`.
fn chase_cond_var(cond: &Expr) -> Option<String> {
    if let Expr::Binary {
        op: BinOp::Ne,
        lhs,
        rhs,
        ..
    } = cond
    {
        match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v, _), Expr::Null(_)) | (Expr::Null(_), Expr::Var(v, _)) => {
                return Some(v.clone())
            }
            _ => {}
        }
    }
    None
}

/// The scalar fields stored through `var` anywhere in `stmts`.
fn written_scalar_fields(stmts: &[Stmt], var: &str) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    fn walk(stmts: &[Stmt], var: &str, out: &mut std::collections::BTreeSet<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, .. } => {
                    if let Some((base, f)) = lhs.as_single_field() {
                        if base == var {
                            out.insert(f.to_string());
                        }
                    }
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(&then_blk.stmts, var, out);
                    if let Some(e) = else_blk {
                        walk(&e.stmts, var, out);
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => walk(&body.stmts, var, out),
                _ => {}
            }
        }
    }
    walk(stmts, var, &mut out);
    out
}

/// Record reads of any `written` field that are not exactly `var->field`.
fn collect_conflicting_reads(
    s: &Stmt,
    var: &str,
    written: &std::collections::BTreeSet<String>,
    out: &mut Vec<String>,
) {
    let mut visit_expr = |e: &Expr| expr_conflicting_reads(e, var, written, out);
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            visit_expr(rhs);
            for step in &lhs.path {
                if let Some(ix) = &step.index {
                    visit_expr(ix);
                }
            }
        }
        Stmt::VarDecl { init: Some(e), .. } => visit_expr(e),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            visit_expr(cond);
            for s in &then_blk.stmts {
                collect_conflicting_reads(s, var, written, out);
            }
            if let Some(e) = else_blk {
                for s in &e.stmts {
                    collect_conflicting_reads(s, var, written, out);
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            visit_expr(cond);
            for s in &body.stmts {
                collect_conflicting_reads(s, var, written, out);
            }
        }
        Stmt::For { from, to, body, .. } => {
            visit_expr(from);
            visit_expr(to);
            for s in &body.stmts {
                collect_conflicting_reads(s, var, written, out);
            }
        }
        Stmt::Return { value: Some(e), .. } => visit_expr(e),
        Stmt::Call(c) => {
            for a in &c.args {
                visit_expr(a);
            }
        }
        _ => {}
    }
}

fn expr_conflicting_reads(
    e: &Expr,
    var: &str,
    written: &std::collections::BTreeSet<String>,
    out: &mut Vec<String>,
) {
    match e {
        Expr::Field { field, index, .. } => {
            if written.contains(field) {
                // Allowed only as exactly `var->field`.
                match e.as_pointer_path() {
                    Some((base, path)) if base == var && path.len() == 1 => {}
                    _ => out.push(field.clone()),
                }
            }
            if let Expr::Field { base, .. } = e {
                expr_conflicting_reads(base, var, written, out);
            }
            if let Some(ix) = index {
                expr_conflicting_reads(ix, var, written, out);
            }
        }
        Expr::Unary { operand, .. } => expr_conflicting_reads(operand, var, written, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_conflicting_reads(lhs, var, written, out);
            expr_conflicting_reads(rhs, var, written, out);
        }
        Expr::Call(c) => {
            for a in &c.args {
                expr_conflicting_reads(a, var, written, out);
            }
        }
        _ => {}
    }
}

/// Is `var` assigned anywhere in `stmts`, including nested blocks?
fn assigns_var_nested(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { lhs, .. } => lhs.is_var() && lhs.base == var,
        Stmt::VarDecl { name, .. } => name == var,
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            assigns_var_nested(&then_blk.stmts, var)
                || else_blk
                    .as_ref()
                    .is_some_and(|e| assigns_var_nested(&e.stmts, var))
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => assigns_var_nested(&body.stmts, var),
        _ => false,
    })
}

fn body_discipline(tp: &TypedProgram, func: &str, var: &str, s: &Stmt, reasons: &mut Vec<String>) {
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            if expr_has_call(rhs) {
                reasons.push("body calls a function (call havocs the abstract heap)".into());
            }
            // Scalar accumulators (`sum = sum + …`) are loop-carried
            // dependences regardless of aliasing.
            if lhs.is_var() && expr_mentions_var(rhs, &lhs.base) {
                reasons.push(format!(
                    "`{}` accumulates across iterations (scalar loop-carried dependence)",
                    lhs.base
                ));
            }
            if !lhs.is_var() {
                if lhs.base != var || lhs.path.len() != 1 {
                    reasons.push(format!(
                        "store through `{}` is not a single-field write via `{var}`",
                        lhs.base
                    ));
                }
                // A pointer-field store rearranges the structure.
                if let Some((base, f)) = lhs.as_single_field() {
                    if let Some(Ty::Ptr(record)) = tp.var_ty(func, base) {
                        if matches!(tp.field_ty(record, f), Some(Ty::Ptr(_))) {
                            reasons.push(format!("body mutates pointer field `{f}`"));
                        }
                    }
                }
            }
        }
        Stmt::Call(_) => {
            reasons.push("body calls a procedure (call havocs the abstract heap)".into());
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            if expr_has_call(cond) {
                reasons.push("body calls a function (call havocs the abstract heap)".into());
            }
            for s in &then_blk.stmts {
                body_discipline(tp, func, var, s, reasons);
            }
            if let Some(e) = else_blk {
                for s in &e.stmts {
                    body_discipline(tp, func, var, s, reasons);
                }
            }
        }
        Stmt::While { .. } | Stmt::For { .. } => {
            reasons.push("nested loop in body (out of pattern)".into());
        }
        Stmt::VarDecl { init: Some(e), .. } => {
            if expr_has_call(e) {
                reasons.push("body calls a function (call havocs the abstract heap)".into());
            }
        }
        Stmt::VarDecl { .. } | Stmt::Return { .. } => {}
    }
}

fn expr_has_call(e: &Expr) -> bool {
    match e {
        Expr::Call(_) => true,
        Expr::Field { base, index, .. } => {
            expr_has_call(base) || index.as_deref().is_some_and(expr_has_call)
        }
        Expr::Unary { operand, .. } => expr_has_call(operand),
        Expr::Binary { lhs, rhs, .. } => expr_has_call(lhs) || expr_has_call(rhs),
        _ => false,
    }
}

fn expr_mentions_var(e: &Expr, var: &str) -> bool {
    match e {
        Expr::Var(v, _) => v == var,
        Expr::Field { base, index, .. } => {
            expr_mentions_var(base, var)
                || index
                    .as_deref()
                    .is_some_and(|ix| expr_mentions_var(ix, var))
        }
        Expr::Unary { operand, .. } => expr_mentions_var(operand, var),
        Expr::Binary { lhs, rhs, .. } => expr_mentions_var(lhs, var) || expr_mentions_var(rhs, var),
        Expr::Call(c) => c.args.iter().any(|a| expr_mentions_var(a, var)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    fn verdicts(src: &str, func: &str, mode: Mode) -> Vec<PriorCheck> {
        check_source(src, func, mode).expect("program checks")
    }

    /// The scale loop, walking a list built in the same function by a
    /// straight-line sequence — small enough to stay within k.
    #[test]
    fn straight_line_list_parallelizes_under_all_heap_analyses() {
        for mode in [Mode::KLimit(3), Mode::AllocSite] {
            let v = verdicts(programs::STRAIGHT_LINE_SCALE, "main", mode);
            assert_eq!(v.len(), 1, "{mode:?}");
            assert!(
                v[0].parallelizable,
                "{mode:?} should handle a 3-cell straight-line list: {:?}",
                v[0].reasons
            );
        }
        // The blob can never prove anything.
        let v = verdicts(programs::STRAIGHT_LINE_SCALE, "main", Mode::Blob);
        assert!(!v[0].parallelizable);
    }

    /// §2.1's central complaint: the k-limit merge introduces a cycle, so
    /// the loop-built list cannot be walked provably-distinctly …
    #[test]
    fn loop_built_list_defeats_klimit() {
        for k in [1, 2, 4] {
            let v = verdicts(programs::LOOP_BUILT_SCALE, "main", Mode::KLimit(k));
            let walk = v.last().unwrap();
            assert!(!walk.parallelizable, "k={k} must fail on an unbounded list");
            assert!(
                walk.reasons.iter().any(|r| r.contains("revisit")),
                "{:?}",
                walk.reasons
            );
        }
    }

    /// … while the CWZ-style ordered edges keep it acyclic ("addressed
    /// this problem to some degree").
    #[test]
    fn loop_built_list_parallelizes_under_allocsite() {
        let v = verdicts(programs::LOOP_BUILT_SCALE, "main", Mode::AllocSite);
        let walk = v.last().unwrap();
        assert!(walk.parallelizable, "{:?}", walk.reasons);
    }

    /// §2.1 on CWZ: "their method fails to find accurate structure
    /// estimates in the presence of general recursion."
    #[test]
    fn recursive_builder_defeats_all_baselines() {
        for mode in [Mode::Blob, Mode::KLimit(4), Mode::AllocSite] {
            let v = verdicts(programs::RECURSIVE_BUILT_SCALE, "main", mode);
            let walk = v.last().unwrap();
            assert!(
                !walk.parallelizable,
                "{mode:?} must fail: the list came from a recursive builder"
            );
        }
    }

    /// A function receiving the list as a parameter — the paper's actual
    /// `scale(head, c)` — is beyond every declaration-free analysis.
    #[test]
    fn parameter_list_defeats_all_baselines() {
        for mode in [Mode::Blob, Mode::KLimit(4), Mode::AllocSite] {
            let v = verdicts(programs::PARAM_SCALE, "scale", mode);
            assert_eq!(v.len(), 1);
            assert!(
                !v[0].parallelizable,
                "{mode:?} cannot know the shape of a parameter"
            );
        }
    }

    #[test]
    fn pointer_mutation_in_body_is_rejected() {
        let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var p: L*;
    a = new L;
    p = a;
    while p <> NULL {
        p->next = NULL;
        p = p->next;
    }
}";
        let v = verdicts(src, "main", Mode::AllocSite);
        assert!(!v[0].parallelizable);
        assert!(v[0].reasons.iter().any(|r| r.contains("pointer field")));
    }

    #[test]
    fn call_in_body_is_rejected() {
        let src = "
type L { int v; L *next; };
procedure visit(x: L*) { }
procedure main() {
    var a: L*; var p: L*;
    a = new L;
    p = a;
    while p <> NULL {
        visit(p);
        p = p->next;
    }
}";
        let v = verdicts(src, "main", Mode::AllocSite);
        assert!(!v[0].parallelizable);
        assert!(v[0].reasons.iter().any(|r| r.contains("havoc")));
    }

    #[test]
    fn read_of_written_field_through_other_pointer_is_rejected() {
        // Iteration 1 writes head->v (p == head there); iteration 2 reads
        // it — a cross-iteration dependence no walk argument removes.
        let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var b: L*; var p: L*;
    a = new L;
    b = new L;
    a->next = b;
    p = a;
    while p <> NULL {
        p->v = a->v + 1;
        p = p->next;
    }
}";
        let v = verdicts(src, "main", Mode::AllocSite);
        assert!(!v[0].parallelizable);
        assert!(
            v[0].reasons.iter().any(|r| r.contains("read/write")),
            "{:?}",
            v[0].reasons
        );
    }

    #[test]
    fn read_of_written_field_through_chain_is_rejected() {
        // p->next->v reads the node the NEXT iteration writes.
        let src = "
type L { int v; L *next; };
procedure main() {
    var a: L*; var b: L*; var p: L*;
    a = new L;
    b = new L;
    a->next = b;
    p = a;
    while p <> NULL {
        p->v = p->next->v;
        p = p->next;
    }
}";
        let v = verdicts(src, "main", Mode::AllocSite);
        assert!(!v[0].parallelizable);
        assert!(v[0].reasons.iter().any(|r| r.contains("read/write")));
    }

    #[test]
    fn own_node_read_modify_write_is_allowed() {
        // p->v = p->v * 2 touches only the iteration's own node.
        let v = verdicts(programs::STRAIGHT_LINE_SCALE, "main", Mode::AllocSite);
        assert!(v[0].parallelizable, "{:?}", v[0].reasons);
    }

    #[test]
    fn non_chase_loops_are_reported_not_crashed() {
        let src = "
type L { int v; L *next; };
procedure main() {
    var i: int;
    i = 0;
    while i < 10 { i = i + 1; }
}";
        let v = verdicts(src, "main", Mode::AllocSite);
        assert_eq!(v.len(), 1);
        assert!(!v[0].parallelizable);
        assert!(v[0].pattern.is_none());
    }
}
