//! Abstract interpretation of IL functions over storage graphs.
//!
//! One analyzer serves all three §2.1 baselines; [`Mode`] selects the
//! abstraction discipline applied after every transfer function:
//!
//! * [`Mode::Blob`] — every heap cell merges into the per-type external
//!   node immediately: the "overly conservative assumptions" of
//!   approach (1).
//! * [`Mode::KLimit`]`(k)` — cells more than `k` dereferences from every
//!   live variable merge into a per-type summary node (\[JM81\] and the
//!   k-limited variations). Merging manufactures the spurious cycles the
//!   paper criticizes.
//! * [`Mode::AllocSite`] — recency-split allocation-site naming with
//!   strong updates and allocation-ordered edges (\[CWZ90\] direction).
//!
//! All modes are intraprocedural with conservative call handling: a call
//! havocs everything reachable from its pointer arguments into the
//! external world. That is the honest classical setting — and exactly why
//! §2.1 says these techniques fail "in the presence of general recursion":
//! the invariant cannot cross a call boundary, while an ADDS declaration
//! can.

use crate::graph::{EdgeKind, Label, StorageGraph};
use adds_lang::ast::*;
use adds_lang::source::{Diagnostics, Span};
use adds_lang::types::{check_source, TypedProgram};
use std::collections::{BTreeMap, BTreeSet};

/// Which §2.1 baseline to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Approach (1): all pointer structures are one unknown blob.
    Blob,
    /// k-limited storage graphs \[JM81, LH88, HPR89\].
    KLimit(usize),
    /// Allocation-site naming with recency + ordered edges \[CWZ90\].
    AllocSite,
}

impl Mode {
    /// Human-readable name used by the ablation tables.
    pub fn name(self) -> String {
        match self {
            Mode::Blob => "conservative".into(),
            Mode::KLimit(k) => format!("k-limited(k={k})"),
            Mode::AllocSite => "alloc-site (CWZ)".into(),
        }
    }

    fn tracks_order(self) -> bool {
        matches!(self, Mode::AllocSite)
    }
}

/// Storage graphs computed for one function.
#[derive(Clone, Debug)]
pub struct FnGraphs {
    /// Analyzed function name.
    pub func: String,
    /// Baseline discipline used.
    pub mode: Mode,
    /// Graph at function entry (parameters point at the external world).
    pub entry: StorageGraph,
    /// Graph at function exit.
    pub exit: StorageGraph,
    /// Per-loop head fixpoints, keyed by the loop's span start.
    pub loops: BTreeMap<u32, LoopGraph>,
}

/// The fixpoint state of one `while`/`for` loop.
#[derive(Clone, Debug)]
pub struct LoopGraph {
    /// The loop's source span.
    pub span: Span,
    /// Invariant graph at the loop head (holds before every iteration).
    pub head: StorageGraph,
}

impl FnGraphs {
    /// The loop whose span starts at `start`, if analyzed.
    pub fn loop_at(&self, start: u32) -> Option<&LoopGraph> {
        self.loops.get(&start)
    }
}

/// Analyze `func` of an already-typed program under `mode`.
pub fn analyze_function(tp: &TypedProgram, func: &str, mode: Mode) -> Option<FnGraphs> {
    let f = tp.program.func(func)?;
    let mut ana = Ana {
        tp,
        func: f,
        mode,
        sites: BTreeMap::new(),
        loops: BTreeMap::new(),
    };
    let mut g = StorageGraph::new();
    for p in &f.params {
        match &p.ty {
            Ty::Ptr(record) => {
                let ext = ana.external(&mut g, record);
                g.set_var(&p.name, [ext].into_iter().collect());
            }
            _ => { /* scalars irrelevant */ }
        }
    }
    ana.normalize(&mut g);
    let entry = g.clone();
    let exit = ana.block(g, &f.body);
    Some(FnGraphs {
        func: func.to_string(),
        mode,
        entry,
        exit,
        loops: ana.loops,
    })
}

/// Parse + typecheck `src`, then analyze `func` under `mode`.
pub fn analyze_source(src: &str, func: &str, mode: Mode) -> Result<FnGraphs, Diagnostics> {
    let tp = check_source(src)?;
    analyze_function(&tp, func, mode).ok_or_else(|| {
        let mut d = Diagnostics::default();
        d.push(adds_lang::source::Diagnostic::new(
            Span::default(),
            format!("no such function `{func}`"),
        ));
        d
    })
}

/// Fixpoint iteration bound; the label lattice is finite so this should
/// never trigger — it guards against a non-monotone transfer bug.
const MAX_FIXPOINT_ITERS: usize = 100;

struct Ana<'a> {
    tp: &'a TypedProgram,
    func: &'a FunDecl,
    mode: Mode,
    /// Allocation sites keyed by the `new` expression's span start, so
    /// site identity is stable across fixpoint re-analysis.
    sites: BTreeMap<u32, u32>,
    loops: BTreeMap<u32, LoopGraph>,
}

impl<'a> Ana<'a> {
    // ----------------------------------------------------------- helpers

    /// Get-or-create the external node for `record`, materializing its
    /// conservative field closure (every pointer field of an external cell
    /// may point at the external cell of the field's target type).
    fn external(&self, g: &mut StorageGraph, record: &str) -> Label {
        let label = Label::External(record.to_string());
        if g.lookup(&label).is_some() {
            return label;
        }
        let mut work = vec![record.to_string()];
        while let Some(r) = work.pop() {
            let l = Label::External(r.clone());
            if g.lookup(&l).is_some() {
                continue;
            }
            g.node(l.clone(), &r);
            let Some(td) = self.tp.program.type_decl(&r) else {
                continue;
            };
            let mut targets: Vec<(String, String)> = Vec::new();
            for fd in &td.fields {
                if let FieldKind::Pointer { target, .. } = &fd.kind {
                    for name in &fd.names {
                        targets.push((name.clone(), target.clone()));
                    }
                }
            }
            for (field, target) in targets {
                let tl = Label::External(target.clone());
                if g.lookup(&tl).is_none() {
                    work.push(target.clone());
                    work.push(r.clone()); // revisit to add the edge after target exists
                    continue;
                }
                g.add_edge(&l, &field, tl, EdgeKind::Unordered);
            }
        }
        // Second pass: with all nodes present, add every closure edge.
        let records: Vec<String> = g
            .labels()
            .filter_map(|l| match l {
                Label::External(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        for r in records {
            let l = Label::External(r.clone());
            let Some(td) = self.tp.program.type_decl(&r) else {
                continue;
            };
            let mut edges: Vec<(String, String)> = Vec::new();
            for fd in &td.fields {
                if let FieldKind::Pointer { target, .. } = &fd.kind {
                    for name in &fd.names {
                        edges.push((name.clone(), target.clone()));
                    }
                }
            }
            for (field, target) in edges {
                let tl = Label::External(target.clone());
                if g.lookup(&tl).is_none() {
                    g.node(tl.clone(), &target);
                }
                g.add_edge(&l, &field, tl, EdgeKind::Unordered);
            }
        }
        label
    }

    fn site_of(&mut self, span: Span) -> u32 {
        let next = self.sites.len() as u32;
        *self.sites.entry(span.start).or_insert(next)
    }

    // ------------------------------------------------------ normalization

    fn normalize(&self, g: &mut StorageGraph) {
        match self.mode {
            Mode::Blob => {
                let heap: Vec<(Label, String)> = g
                    .labels()
                    .filter(|l| !matches!(l, Label::External(_)))
                    .map(|l| {
                        let id = g.lookup(l).unwrap();
                        (l.clone(), g.record(id).to_string())
                    })
                    .collect();
                for (l, r) in heap {
                    self.external(g, &r);
                    g.merge_into(&l, &Label::External(r));
                }
            }
            Mode::KLimit(k) => {
                g.collect_garbage();
                loop {
                    let depths = g.depths();
                    let deep: Vec<(Label, String)> = g
                        .labels()
                        .filter(|l| !matches!(l, Label::External(_) | Label::Summary(_)))
                        .filter(|l| depths.get(l).is_none_or(|d| *d > k))
                        .map(|l| {
                            let id = g.lookup(l).unwrap();
                            (l.clone(), g.record(id).to_string())
                        })
                        .collect();
                    if deep.is_empty() {
                        break;
                    }
                    for (l, r) in deep {
                        g.node(Label::Summary(r.clone()), &r);
                        g.merge_into(&l, &Label::Summary(r));
                    }
                }
            }
            Mode::AllocSite => g.collect_garbage(),
        }
    }

    // -------------------------------------------------- expression values

    /// Evaluate an expression: apply its heap effects (calls, `new`) and
    /// return its may-point-to set when pointer-typed.
    fn eval(&mut self, g: &mut StorageGraph, e: &Expr) -> BTreeSet<Label> {
        match e {
            Expr::Int(..) | Expr::Real(..) | Expr::Bool(..) | Expr::Null(_) => BTreeSet::new(),
            Expr::Var(v, _) => g.points_to(v),
            Expr::New(record, span) => self.alloc(g, record, *span),
            Expr::Field {
                base, field, index, ..
            } => {
                if let Some(ix) = index {
                    self.eval(g, ix);
                }
                let sources = self.eval(g, base);
                let mut out = BTreeSet::new();
                for src in sources {
                    for (tgt, _) in g.edges(&src, field) {
                        out.insert(tgt);
                    }
                }
                out
            }
            Expr::Unary { operand, .. } => {
                self.eval(g, operand);
                BTreeSet::new()
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.eval(g, lhs);
                self.eval(g, rhs);
                BTreeSet::new()
            }
            Expr::Call(c) => self.call(g, c),
        }
    }

    /// `new T`: demote the site's previous fresh node, then allocate.
    fn alloc(&mut self, g: &mut StorageGraph, record: &str, span: Span) -> BTreeSet<Label> {
        let site = self.site_of(span);
        let fresh = Label::Fresh(site);
        if g.lookup(&fresh).is_some() {
            g.node(Label::Old(site), record);
            g.merge_into(&fresh, &Label::Old(site));
        }
        g.node(fresh.clone(), record);
        [fresh].into_iter().collect()
    }

    /// Conservative call: havoc everything reachable from pointer
    /// arguments, return the external node of the return type.
    fn call(&mut self, g: &mut StorageGraph, c: &Call) -> BTreeSet<Label> {
        let mut roots: BTreeSet<Label> = BTreeSet::new();
        for a in &c.args {
            roots.extend(self.eval(g, a));
        }
        // Reach set.
        let mut reach = roots.clone();
        let mut work: Vec<Label> = roots.into_iter().collect();
        while let Some(l) = work.pop() {
            for (_, tgt, _) in g.out_edges(&l) {
                if reach.insert(tgt.clone()) {
                    work.push(tgt);
                }
            }
        }
        for l in reach {
            if matches!(l, Label::External(_)) {
                continue;
            }
            let record = g.record(g.lookup(&l).unwrap()).to_string();
            self.external(g, &record);
            g.merge_into(&l, &Label::External(record));
        }
        match self.tp.sigs.get(&c.callee).and_then(|s| s.ret.clone()) {
            Some(Ty::Ptr(r)) => {
                let ext = self.external(g, &r);
                [ext].into_iter().collect()
            }
            _ => BTreeSet::new(),
        }
    }

    // ---------------------------------------------------------- statements

    fn block(&mut self, mut g: StorageGraph, b: &Block) -> StorageGraph {
        for s in &b.stmts {
            g = self.stmt(g, s);
        }
        g
    }

    fn stmt(&mut self, mut g: StorageGraph, s: &Stmt) -> StorageGraph {
        match s {
            Stmt::VarDecl { name, ty, init, .. } => {
                let is_ptr = match ty {
                    Some(t) => t.is_pointer(),
                    None => matches!(self.tp.var_ty(&self.func.name, name), Some(Ty::Ptr(_))),
                };
                let pts = match init {
                    Some(e) => self.eval(&mut g, e),
                    None => BTreeSet::new(),
                };
                if is_ptr {
                    g.set_var(name, pts);
                }
                self.normalize(&mut g);
                g
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let val = self.eval(&mut g, rhs);
                self.assign(&mut g, lhs, val, rhs);
                self.normalize(&mut g);
                g
            }
            Stmt::While { cond, body, span } => self.loop_fixpoint(g, cond, body, *span),
            Stmt::For {
                from,
                to,
                body,
                span,
                ..
            } => {
                self.eval(&mut g, from);
                self.eval(&mut g, to);
                // A counted loop body may run zero or more times: same
                // fixpoint as `while`, without a condition.
                self.loop_fixpoint_body(g, None, body, *span)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.eval(&mut g, cond);
                let gt = self.block(g.clone(), then_blk);
                let ge = match else_blk {
                    Some(e) => self.block(g, e),
                    None => g,
                };
                let mut j = gt.join(&ge);
                self.normalize(&mut j);
                j
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.eval(&mut g, v);
                }
                g
            }
            Stmt::Call(c) => {
                self.call(&mut g, c);
                self.normalize(&mut g);
                g
            }
        }
    }

    fn loop_fixpoint(
        &mut self,
        g: StorageGraph,
        cond: &Expr,
        body: &Block,
        span: Span,
    ) -> StorageGraph {
        self.loop_fixpoint_body(g, Some(cond), body, span)
    }

    fn loop_fixpoint_body(
        &mut self,
        mut g: StorageGraph,
        cond: Option<&Expr>,
        body: &Block,
        span: Span,
    ) -> StorageGraph {
        if let Some(c) = cond {
            self.eval(&mut g, c);
        }
        self.normalize(&mut g);
        let mut head = g.clone();
        for iter in 0.. {
            assert!(
                iter < MAX_FIXPOINT_ITERS,
                "storage-graph fixpoint failed to converge (non-monotone transfer?)"
            );
            let after = self.block(head.clone(), body);
            let mut joined = g.join(&after);
            self.normalize(&mut joined);
            if joined.subsumed_by(&head) {
                break;
            }
            head = joined;
        }
        self.loops.insert(
            span.start,
            LoopGraph {
                span,
                head: head.clone(),
            },
        );
        head
    }

    /// Perform `lhs = val`, where `rhs` is the original right-hand side
    /// (used to decide edge ordering).
    fn assign(&mut self, g: &mut StorageGraph, lhs: &LValue, val: BTreeSet<Label>, rhs: &Expr) {
        if lhs.is_var() {
            let is_ptr = matches!(self.tp.var_ty(&self.func.name, &lhs.base), Some(Ty::Ptr(_)));
            if is_ptr {
                g.set_var(&lhs.base, val);
            }
            return;
        }

        // Navigate the prefix: p->a->b = v stores through the cells of
        // p->a. Loads along the way.
        let mut sources = g.points_to(&lhs.base);
        for step in &lhs.path[..lhs.path.len() - 1] {
            if let Some(ix) = &step.index {
                self.eval(g, ix);
            }
            let mut next = BTreeSet::new();
            for s in &sources {
                for (t, _) in g.edges(s, &step.field) {
                    next.insert(t);
                }
            }
            sources = next;
        }
        let last = lhs.path.last().expect("non-var lvalue has a path");
        if let Some(ix) = &last.index {
            self.eval(g, ix);
        }

        // Scalar stores don't change the graph.
        let field_is_ptr = sources.iter().next().is_some_and(|s| {
            let record = g.record(g.lookup(s).unwrap()).to_string();
            matches!(self.tp.field_ty(&record, &last.field), Some(Ty::Ptr(_)))
        });
        if !field_is_ptr {
            return;
        }

        let kind = self.store_kind(g, &sources, &val, rhs);
        let strong = sources.len() == 1
            && sources.iter().all(|s| !s.is_summary())
            && g.lookup(sources.iter().next().unwrap()).is_some();
        if strong {
            let src = sources.iter().next().unwrap().clone();
            let tgts: BTreeMap<Label, EdgeKind> = val.iter().map(|t| (t.clone(), kind)).collect();
            g.set_edges(&src, &last.field, tgts);
        } else {
            for src in &sources {
                for tgt in &val {
                    g.add_edge(src, &last.field, tgt.clone(), kind);
                }
            }
        }
    }

    /// An edge is allocation-ordered when the analysis can see that every
    /// stored target is a *virgin* cell — freshly allocated, with no
    /// outgoing pointer edges yet — distinct from every store source. A
    /// concrete cycle cannot consist solely of such edges (its
    /// last-created edge would point at a cell that already carried an
    /// outgoing cycle edge, contradicting virginity), so cycle queries may
    /// ignore all-ordered cycles. Only the CWZ-style mode tracks this;
    /// note it certifies append-built lists but not prepend-built ones
    /// (where the stored target is the old head), a documented
    /// imprecision relative to full \[CWZ90\].
    fn store_kind(
        &self,
        g: &StorageGraph,
        sources: &BTreeSet<Label>,
        val: &BTreeSet<Label>,
        _rhs: &Expr,
    ) -> EdgeKind {
        if !self.mode.tracks_order() {
            return EdgeKind::Unordered;
        }
        if val.is_empty() {
            return EdgeKind::Ordered; // storing NULL adds no edges anyway
        }
        let all_virgin_fresh = val
            .iter()
            .all(|t| matches!(t, Label::Fresh(_)) && g.out_edges(t).is_empty());
        let disjoint = val.intersection(sources).next().is_none();
        if all_virgin_fresh && disjoint {
            EdgeKind::Ordered
        } else {
            EdgeKind::Unordered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_DECL: &str = "
type L { int v; L *next; };
";

    fn prog(body: &str) -> String {
        format!("{LIST_DECL}\nprocedure main() {{\nvar a: L*; var b: L*; var p: L*;\n{body}\n}}")
    }

    fn analyze(body: &str, mode: Mode) -> FnGraphs {
        analyze_source(&prog(body), "main", mode).expect("program analyzes")
    }

    #[test]
    fn straight_line_list_stays_concrete_in_allocsite_mode() {
        let g = analyze(
            "a = new L; b = new L; a->next = b; p = a->next;",
            Mode::AllocSite,
        )
        .exit;
        // Two distinct sites, both fresh, p points exactly at b's cell.
        assert_eq!(g.points_to("p"), g.points_to("b"));
        assert_eq!(g.points_to("p").len(), 1);
        assert_ne!(g.points_to("a"), g.points_to("b"));
    }

    #[test]
    fn blob_mode_merges_everything_immediately() {
        let g = analyze("a = new L; b = new L;", Mode::Blob).exit;
        assert_eq!(g.points_to("a"), g.points_to("b"));
        assert!(g
            .points_to("a")
            .iter()
            .all(|l| matches!(l, Label::External(_))));
    }

    #[test]
    fn loop_built_list_summarizes_under_klimit() {
        let body = "
a = new L;
p = a;
var i: int;
i = 0;
while i < 10 {
    b = new L;
    p->next = b;
    p = b;
    i = i + 1;
}
";
        let g = analyze(body, Mode::KLimit(2)).exit;
        // The interior cells merge into the site summary node, and the
        // chain edges among them become an *unordered* next self-loop —
        // the manufactured cycle of §2.1. (In k-limit mode no ordering is
        // tracked, so nothing can exonerate the loop.)
        let old = Label::Old(1);
        assert!(g.lookup(&old).is_some(), "{g}");
        let next = g.edges(&old, "next");
        assert_eq!(next.get(&old), Some(&EdgeKind::Unordered), "{g}");
    }

    #[test]
    fn deep_straight_line_chain_hits_the_k_frontier() {
        // Four cells from four distinct sites, only the head kept in a
        // variable: cells deeper than k=1 merge into the per-type Summary
        // node and the chain edge between them becomes a self-loop.
        let body = "
a = new L;
b = new L;
a->next = b;
p = new L;
b->next = p;
b = new L;
p->next = b;
b = NULL;
p = NULL;
";
        let g = analyze(body, Mode::KLimit(1)).exit;
        let sum = Label::Summary("L".into());
        assert!(g.lookup(&sum).is_some(), "{g}");
        assert!(
            g.edges(&sum, "next").contains_key(&sum),
            "summary must self-loop: {g}"
        );
        // With k=3 the same chain stays fully concrete.
        let g3 = analyze(body, Mode::KLimit(3)).exit;
        assert!(g3.lookup(&Label::Summary("L".into())).is_none(), "{g3}");
    }

    #[test]
    fn loop_built_list_keeps_ordered_edges_under_allocsite() {
        let body = "
a = new L;
p = a;
var i: int;
i = 0;
while i < 10 {
    b = new L;
    p->next = b;
    p = b;
    i = i + 1;
}
";
        let g = analyze(body, Mode::AllocSite).exit;
        // The old summarized cells exist, but every next-edge among the
        // loop cells is allocation-ordered, so no unordered self-loop.
        let mut saw_ordered = false;
        for l in g.labels() {
            for (f, _tgt, k) in g.out_edges(l) {
                if f == "next" && !matches!(l, Label::External(_)) {
                    saw_ordered = true;
                    assert_eq!(k, EdgeKind::Ordered, "unordered next edge at {l}: {g}");
                }
            }
        }
        assert!(saw_ordered, "expected next edges: {g}");
    }

    #[test]
    fn explicit_cycle_store_is_unordered() {
        let g = analyze(
            "a = new L; b = new L; a->next = b; b->next = a;",
            Mode::AllocSite,
        )
        .exit;
        // b->next = a stores an older cell (a has out-edges): unordered.
        let a = g.points_to("a").into_iter().next().unwrap();
        let b = g.points_to("b").into_iter().next().unwrap();
        assert_eq!(g.edges(&b, "next")[&a], EdgeKind::Unordered);
        assert_eq!(g.edges(&a, "next")[&b], EdgeKind::Ordered);
    }

    #[test]
    fn self_store_is_unordered() {
        let g = analyze("a = new L; a->next = a;", Mode::AllocSite).exit;
        let a = g.points_to("a").into_iter().next().unwrap();
        assert_eq!(g.edges(&a, "next")[&a], EdgeKind::Unordered);
    }

    #[test]
    fn call_havocs_reachable_cells() {
        let src = format!(
            "{LIST_DECL}
procedure touch(x: L*) {{ }}
procedure main() {{
    var a: L*; var b: L*;
    a = new L;
    b = new L;
    a->next = b;
    touch(a);
}}"
        );
        let g = analyze_source(&src, "main", Mode::AllocSite).unwrap().exit;
        assert!(
            g.points_to("a")
                .iter()
                .all(|l| matches!(l, Label::External(_))),
            "{g}"
        );
        assert!(g
            .points_to("b")
            .iter()
            .all(|l| matches!(l, Label::External(_))));
    }

    #[test]
    fn params_start_external() {
        let src = format!("{LIST_DECL}\nprocedure f(h: L*) {{ var p: L*; p = h->next; }}");
        let fg = analyze_source(&src, "f", Mode::AllocSite).unwrap();
        assert_eq!(
            fg.exit.points_to("p"),
            fg.exit.points_to("h"),
            "loads from external stay external"
        );
    }

    #[test]
    fn strong_update_overwrites_fresh_field() {
        let g = analyze(
            "a = new L; b = new L; a->next = b; a->next = NULL; p = a->next;",
            Mode::AllocSite,
        )
        .exit;
        assert!(g.points_to("p").is_empty(), "{g}");
    }

    #[test]
    fn recency_split_keeps_fresh_and_old_nodes() {
        // An append loop keeps the older cells reachable through the
        // chain, so the loop site must show both its fresh and its old
        // (summary) node, and stores into the old node must accumulate.
        let body = "
var i: int;
a = new L;
p = a;
i = 0;
while i < 3 {
    b = new L;
    p->next = b;
    p = b;
    i = i + 1;
}
";
        let g = analyze(body, Mode::AllocSite).exit;
        assert!(g.lookup(&Label::Fresh(1)).is_some(), "{g}");
        assert!(g.lookup(&Label::Old(1)).is_some(), "{g}");
        // The tail variable sees the fresh cell; the old summary stays
        // reachable through the chain (head.next may reach it).
        assert!(g.points_to("p").contains(&Label::Fresh(1)), "{g}");
        let head = g.points_to("a").into_iter().next().unwrap();
        assert!(g.edges(&head, "next").contains_key(&Label::Old(1)), "{g}");
    }

    #[test]
    fn unreachable_old_cells_are_garbage_collected() {
        // Allocating in a loop without linking drops the old cells: no
        // variable or edge reaches them.
        let body = "
var i: int;
i = 0;
while i < 3 {
    a = new L;
    i = i + 1;
}
";
        let g = analyze(body, Mode::AllocSite).exit;
        assert!(g.lookup(&Label::Old(0)).is_none(), "{g}");
        assert_eq!(g.points_to("a"), [Label::Fresh(0)].into_iter().collect());
    }

    #[test]
    fn fixpoint_terminates_on_nested_loops() {
        let body = "
var i: int; var j: int;
i = 0;
while i < 4 {
    a = new L;
    j = 0;
    while j < 4 {
        b = new L;
        a->next = b;
        j = j + 1;
    }
    i = i + 1;
}
";
        for mode in [
            Mode::Blob,
            Mode::KLimit(1),
            Mode::KLimit(3),
            Mode::AllocSite,
        ] {
            let fg = analyze(body, mode);
            assert_eq!(fg.loops.len(), 2, "{mode:?}");
        }
    }

    #[test]
    fn loop_head_graphs_are_recorded() {
        let body = "
a = new L;
p = a;
while p <> NULL {
    p = p->next;
}
";
        let fg = analyze(body, Mode::AllocSite);
        assert_eq!(fg.loops.len(), 1);
        let lg = fg.loops.values().next().unwrap();
        assert!(lg.head.points_to("p").contains(&Label::Fresh(0)));
    }
}
