//! Queries a parallelizing compiler would pose to a storage graph:
//! may-alias, shape classification, and walk-distinctness (the fact that
//! licenses strip-mining a pointer-chasing loop).

use crate::graph::{EdgeKind, Label, StorageGraph};
use std::collections::{BTreeMap, BTreeSet};

/// May `x` and `y` point at the same cell?
///
/// True iff their may-point-to sets intersect. Summary and external labels
/// intersecting means "possibly the same concrete cell", which is all a
/// may-analysis can say.
pub fn may_alias(g: &StorageGraph, x: &str, y: &str) -> bool {
    let px = g.points_to(x);
    let py = g.points_to(y);
    px.intersection(&py).next().is_some()
}

/// Shape estimate for the structure reachable from `roots`, mirroring the
/// tree / DAG / cyclic trichotomy the paper uses for Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// No abstract sharing, no possible cycle.
    Tree,
    /// Sharing (a cell with more than one abstract in-edge) but no
    /// possible cycle.
    Dag,
    /// A cycle cannot be ruled out.
    Cyclic,
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shape::Tree => write!(f, "tree"),
            Shape::Dag => write!(f, "DAG (shared)"),
            Shape::Cyclic => write!(f, "possibly cyclic"),
        }
    }
}

/// Classify the structure reachable from `roots`.
///
/// A cycle is *possible* when the reachable subgraph contains a cycle with
/// at least one [`EdgeKind::Unordered`] edge (a cycle of all-ordered edges
/// would have to visit strictly newer cells forever — concretely
/// impossible). Sharing is judged by abstract in-degree, where summary
/// sources count as many.
pub fn classify_shape(g: &StorageGraph, roots: &BTreeSet<Label>) -> Shape {
    let reach = reachable(g, roots);
    if has_mixed_cycle(g, &reach) {
        return Shape::Cyclic;
    }
    // Summary nodes represent many cells: a self-edge among them was
    // already handled by the cycle check (merging makes those edges
    // unordered unless proven); sharing remains.
    let shared = reach.iter().any(|l| g.abstract_in_degree(l) > 1);
    if shared {
        Shape::Dag
    } else {
        Shape::Tree
    }
}

/// The core strip-mining question (§4.3.2): in a loop advancing along
/// `field` from the cells in `start`, can two iterations ever see the same
/// cell?
///
/// Returns `true` (distinct) iff the `field`-subgraph reachable from
/// `start`:
///
/// 1. contains no external node (unknown world ⇒ anything possible), and
/// 2. contains no cycle with an unordered edge (an all-ordered cycle is
///    concretely impossible), and
/// 3. contains no unordered self-loop on a summary node (two iterations
///    may land on two cells both represented by the summary — only the
///    allocation-order argument rules out a revisit).
///
/// Conditions 2 and 3 coincide: a summary self-loop *is* a cycle in the
/// abstract graph, so the single mixed-cycle test covers both.
pub fn walk_is_distinct(g: &StorageGraph, start: &BTreeSet<Label>, field: &str) -> bool {
    // Restrict reachability to `field` edges.
    let mut reach: BTreeSet<Label> = start.clone();
    let mut work: Vec<Label> = start.iter().cloned().collect();
    while let Some(l) = work.pop() {
        if matches!(l, Label::External(_)) {
            return false;
        }
        for (tgt, _) in g.edges(&l, field) {
            if reach.insert(tgt.clone()) {
                work.push(tgt);
            }
        }
    }
    if reach.iter().any(|l| matches!(l, Label::External(_))) {
        return false;
    }
    !field_subgraph_has_mixed_cycle(g, &reach, field)
}

fn reachable(g: &StorageGraph, roots: &BTreeSet<Label>) -> BTreeSet<Label> {
    let mut reach = roots.clone();
    let mut work: Vec<Label> = roots.iter().cloned().collect();
    while let Some(l) = work.pop() {
        for (_, tgt, _) in g.out_edges(&l) {
            if reach.insert(tgt.clone()) {
                work.push(tgt);
            }
        }
    }
    reach
}

/// Is there a cycle within `scope` containing at least one unordered edge?
fn has_mixed_cycle(g: &StorageGraph, scope: &BTreeSet<Label>) -> bool {
    any_mixed_cycle(scope, |l| {
        g.out_edges(l)
            .into_iter()
            .filter(|(_, t, _)| scope.contains(t))
            .map(|(_, t, k)| (t, k))
            .collect()
    })
}

fn field_subgraph_has_mixed_cycle(g: &StorageGraph, scope: &BTreeSet<Label>, field: &str) -> bool {
    any_mixed_cycle(scope, |l| {
        g.edges(l, field)
            .into_iter()
            .filter(|(t, _)| scope.contains(t))
            .collect()
    })
}

/// Cycle detection distinguishing edge kinds. A cycle made only of
/// [`EdgeKind::Ordered`] edges is ignored (concretely impossible); any
/// cycle containing an unordered edge counts.
///
/// Implementation: Tarjan-free two-pass — first find cycles in the full
/// subgraph; if a cycle exists, check whether removing ordered edges still
/// leaves a cycle through each strongly connected region. Since graphs
/// here are tiny (≤ tens of nodes), we simply test: does the subgraph
/// restricted to *all* edges contain a cycle through any unordered edge?
/// An unordered edge `u → v` lies on a cycle iff `u` is reachable from
/// `v`.
fn any_mixed_cycle<F>(scope: &BTreeSet<Label>, succ: F) -> bool
where
    F: Fn(&Label) -> BTreeMap<Label, EdgeKind>,
{
    for u in scope {
        for (v, kind) in succ(u) {
            if kind == EdgeKind::Ordered {
                continue;
            }
            // unordered u → v: cycle iff u reachable from v
            let mut seen: BTreeSet<Label> = BTreeSet::new();
            let mut work = vec![v.clone()];
            while let Some(n) = work.pop() {
                if &n == u {
                    return true;
                }
                if !seen.insert(n.clone()) {
                    continue;
                }
                for (t, _) in succ(&n) {
                    work.push(t);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, Label, StorageGraph};

    fn set(labels: &[Label]) -> BTreeSet<Label> {
        labels.iter().cloned().collect()
    }

    fn chain(kind: EdgeKind) -> (StorageGraph, BTreeSet<Label>) {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.node(Label::Fresh(2), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), kind);
        g.add_edge(&Label::Fresh(1), "next", Label::Fresh(2), kind);
        (g, set(&[Label::Fresh(0)]))
    }

    #[test]
    fn acyclic_chain_is_distinct_and_tree() {
        let (g, roots) = chain(EdgeKind::Unordered);
        assert!(walk_is_distinct(&g, &roots, "next"));
        assert_eq!(classify_shape(&g, &roots), Shape::Tree);
    }

    #[test]
    fn unordered_self_loop_blocks_distinctness() {
        let (mut g, roots) = chain(EdgeKind::Unordered);
        g.add_edge(
            &Label::Fresh(2),
            "next",
            Label::Fresh(2),
            EdgeKind::Unordered,
        );
        assert!(!walk_is_distinct(&g, &roots, "next"));
        assert_eq!(classify_shape(&g, &roots), Shape::Cyclic);
    }

    #[test]
    fn ordered_self_loop_is_harmless() {
        // The CWZ-style summary of a loop-built list: old#0 --ordered--> old#0.
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Old(1), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Old(1), EdgeKind::Ordered);
        g.add_edge(&Label::Old(1), "next", Label::Old(1), EdgeKind::Ordered);
        let roots = set(&[Label::Fresh(0)]);
        assert!(walk_is_distinct(&g, &roots, "next"));
        // Ordering proves acyclicity but not absence of sharing: two old
        // cells may point at the same newer cell with both edges ordered.
        // Without CWZ's reference counts the summary self-edge must be
        // reported as possible sharing — DAG, not tree.
        assert_eq!(classify_shape(&g, &roots), Shape::Dag);
    }

    #[test]
    fn mixed_cycle_is_detected() {
        // a --ordered--> b --unordered--> a : possible concrete cycle.
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        g.add_edge(
            &Label::Fresh(1),
            "next",
            Label::Fresh(0),
            EdgeKind::Unordered,
        );
        let roots = set(&[Label::Fresh(0)]);
        assert!(!walk_is_distinct(&g, &roots, "next"));
        assert_eq!(classify_shape(&g, &roots), Shape::Cyclic);
    }

    #[test]
    fn external_world_blocks_distinctness() {
        let mut g = StorageGraph::new();
        g.node(Label::External("L".into()), "L");
        let roots = set(&[Label::External("L".into())]);
        assert!(!walk_is_distinct(&g, &roots, "next"));
    }

    #[test]
    fn sharing_makes_dag() {
        // two parents point at one child, no cycles
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "T");
        g.node(Label::Fresh(1), "T");
        g.node(Label::Fresh(2), "T");
        g.add_edge(
            &Label::Fresh(0),
            "left",
            Label::Fresh(2),
            EdgeKind::Unordered,
        );
        g.add_edge(
            &Label::Fresh(1),
            "left",
            Label::Fresh(2),
            EdgeKind::Unordered,
        );
        let roots = set(&[Label::Fresh(0), Label::Fresh(1)]);
        assert_eq!(classify_shape(&g, &roots), Shape::Dag);
    }

    #[test]
    fn may_alias_by_intersection() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.set_var("x", set(&[Label::Fresh(0), Label::Fresh(1)]));
        g.set_var("y", set(&[Label::Fresh(1)]));
        g.set_var("z", set(&[Label::Fresh(0)]));
        assert!(may_alias(&g, "x", "y"));
        assert!(may_alias(&g, "x", "z"));
        assert!(!may_alias(&g, "y", "z"));
        assert!(!may_alias(&g, "y", "unbound"));
    }

    #[test]
    fn off_field_cycle_does_not_block_walk() {
        // A cycle through `prev` must not prevent a `next` walk from being
        // distinct (the paper's two-way list: forward-only traversals are
        // fine even though next/prev form 2-cycles — though prior analyses
        // only see this when the cells are concrete).
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.add_edge(
            &Label::Fresh(0),
            "next",
            Label::Fresh(1),
            EdgeKind::Unordered,
        );
        g.add_edge(
            &Label::Fresh(1),
            "prev",
            Label::Fresh(0),
            EdgeKind::Unordered,
        );
        let roots = set(&[Label::Fresh(0)]);
        assert!(walk_is_distinct(&g, &roots, "next"));
        // But the full-shape classification reports the cycle.
        assert_eq!(classify_shape(&g, &roots), Shape::Cyclic);
    }
}
