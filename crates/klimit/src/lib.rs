//! # adds-klimit — the §2.1 prior-work baselines
//!
//! The ADDS paper motivates its declaration-based approach by the failure
//! modes of *analysis-only* structure estimation (§2.1). This crate
//! implements that family over the same IL so the comparison can be run
//! rather than cited:
//!
//! * [`Mode::Blob`] — "approach (1)": concentrate on arrays and make
//!   overly conservative assumptions for all pointer structures. Every
//!   heap cell is one summary blob; nothing is ever parallelizable.
//! * [`Mode::KLimit`]`(k)` — the k-limited storage graphs of Jones &
//!   Muchnick \[JM81\] and the variations the paper cites (\[LH88a\],
//!   \[LH88b\], \[HPR89\]): nodes further than `k` dereferences from every
//!   variable are merged into a per-type summary node. **The merge
//!   introduces cycles in the abstraction** — the exact disadvantage §2.1
//!   calls out — so list walks over loop-built lists can never be proven
//!   revisit-free.
//! * [`Mode::AllocSite`] — the Chase–Wegman–Zadeck direction \[CWZ90\]:
//!   allocation-site naming with a recency split (one *concrete* most-recent
//!   node + one summary node per site), strong updates through the concrete
//!   node, and *allocation-ordered* edge tracking, which lets it keep
//!   loop-built lists acyclic. As §2.1 notes, the method still "fails to
//!   find accurate structure estimates in the presence of general
//!   recursion" — any call boundary (or recursive builder) collapses to the
//!   unknown external world here, exactly reproducing that failure.
//!
//! All three run as abstract interpretation of [`StorageGraph`]s over the
//! `adds-lang` AST ([`analyze_function`]), answer may-alias and shape
//! queries ([`queries`]), and deliver a strip-mine parallelizability
//! verdict per pointer-chasing loop ([`check_function`]) that plugs into
//! the precision-ladder ablation against ADDS + general path matrix
//! analysis (see `adds-bench`, bin `prior_work`).
//!
//! The crate depends only on `adds-lang`; `adds-core` (the paper's own
//! analysis) never sees these graphs — the two sides meet only in the
//! ablation harness and integration tests.

#![warn(missing_docs)]

pub mod analysis;
pub mod graph;
pub mod programs;
pub mod queries;
pub mod verdict;

pub use analysis::{analyze_function, analyze_source, FnGraphs, Mode};
pub use graph::{EdgeKind, Label, NodeId, StorageGraph};
pub use queries::{classify_shape, may_alias, walk_is_distinct, Shape};
pub use verdict::{check_function, check_source, PriorCheck};
