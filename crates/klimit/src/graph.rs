//! Storage graphs: the abstract heaps of the §2.1 analyses.
//!
//! A [`StorageGraph`] is a finite may-points-to abstraction of the heap at
//! one program point. Nodes carry canonical [`Label`]s so that two graphs
//! from different control-flow paths join by simple label-wise union —
//! the classical formulation of \[JM81\]-family analyses.
//!
//! Node kinds:
//!
//! * `Fresh(site)` — the most recent, provably single cell allocated at
//!   `new` site `site` (the recency split). Eligible for strong updates.
//! * `Old(site)` — all older cells from that site, merged. A summary node.
//! * `Summary(record)` — cells pushed beyond the `k` frontier by
//!   k-limiting, merged per record type. A summary node.
//! * `External(record)` — the unknown world: cells that existed before the
//!   function started (parameters) or that a call may have rewired. Has
//!   every pointer field conservatively pointing at the external node of
//!   the field's target type.
//!
//! Edges are may-edges. Each carries an [`EdgeKind`]: an `Ordered` edge
//! was created (every time, for every concrete edge it represents) by
//! storing a *virgin* target — a freshly allocated cell with no outgoing
//! pointers yet, distinct from the store's source. A concrete cycle cannot
//! consist solely of such edges: its last-created edge would point at a
//! cell that already needed an outgoing cycle edge, contradicting
//! virginity. This is the \[CWZ90\]-style refinement that keeps loop-built
//! (append) lists acyclic. Any weakening (merge with an unordered edge,
//! k-limit collapse in a mode without ordering) downgrades to `Unordered`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Canonical node identity. Ordering gives graphs a deterministic layout.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// Most recent allocation of `new` site `n` — a single concrete cell.
    Fresh(u32),
    /// Older allocations of site `n`, merged (summary).
    Old(u32),
    /// Cells of record type `r` merged by the k-limit frontier (summary).
    Summary(String),
    /// The unknown pre-existing/havocked world for record type `r`.
    External(String),
}

impl Label {
    /// Summary labels stand for *zero or more* concrete cells; only
    /// `Fresh` stands for exactly one.
    pub fn is_summary(&self) -> bool {
        !matches!(self, Label::Fresh(_))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Fresh(s) => write!(f, "fresh#{s}"),
            Label::Old(s) => write!(f, "old#{s}"),
            Label::Summary(r) => write!(f, "sum({r})"),
            Label::External(r) => write!(f, "ext({r})"),
        }
    }
}

/// Index into a [`StorageGraph`]'s node table. Stable within one graph
/// only; cross-graph identity is by [`Label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Whether a may-edge is known to respect allocation order (see the
/// module docs for the virgin-target argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Every concrete edge this abstract edge represents was created by
    /// storing a virgin (freshly allocated, pointer-free) target distinct
    /// from the source — a cycle of only such edges is impossible.
    Ordered,
    /// No ordering knowledge; may close a cycle.
    Unordered,
}

impl EdgeKind {
    /// Join of knowledge when edges merge: ordered only if both are.
    pub fn meet(self, other: EdgeKind) -> EdgeKind {
        if self == EdgeKind::Ordered && other == EdgeKind::Ordered {
            EdgeKind::Ordered
        } else {
            EdgeKind::Unordered
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct NodeData {
    label: Label,
    /// Record type of the cells this node stands for.
    record: String,
    /// Outgoing may-edges: field → (target, kind).
    edges: BTreeMap<String, BTreeMap<Label, EdgeKind>>,
}

/// A may-points-to storage graph. See module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StorageGraph {
    nodes: Vec<NodeData>,
    index: BTreeMap<Label, NodeId>,
    /// Variable bindings: var → may-point-to set. A variable absent from
    /// the map, or present with an empty set, is definitely NULL.
    vars: BTreeMap<String, BTreeSet<Label>>,
}

impl StorageGraph {
    /// The empty graph: no nodes, every variable definitely NULL.
    pub fn new() -> StorageGraph {
        StorageGraph::default()
    }

    // ------------------------------------------------------------- nodes

    /// Get-or-create the node for `label`.
    pub fn node(&mut self, label: Label, record: &str) -> NodeId {
        if let Some(&id) = self.index.get(&label) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.clone(),
            record: record.to_string(),
            edges: BTreeMap::new(),
        });
        self.index.insert(label, id);
        id
    }

    /// The node for `label`, if present.
    pub fn lookup(&self, label: &Label) -> Option<NodeId> {
        self.index.get(label).copied()
    }

    /// The label of node `id`.
    pub fn label(&self, id: NodeId) -> &Label {
        &self.nodes[id.0 as usize].label
    }

    /// The record type of the cells node `id` stands for.
    pub fn record(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].record
    }

    /// All node labels, in creation order.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.nodes.iter().map(|n| &n.label)
    }

    /// Number of abstract nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // --------------------------------------------------------- variables

    /// Bind `var`'s may-point-to set.
    pub fn set_var(&mut self, var: &str, targets: BTreeSet<Label>) {
        self.vars.insert(var.to_string(), targets);
    }

    /// Bind `var` to definitely-NULL.
    pub fn set_var_null(&mut self, var: &str) {
        self.vars.insert(var.to_string(), BTreeSet::new());
    }

    /// May-point-to set of `var` (empty = definitely NULL).
    pub fn points_to(&self, var: &str) -> BTreeSet<Label> {
        self.vars.get(var).cloned().unwrap_or_default()
    }

    /// All variable bindings, sorted by name.
    pub fn vars(&self) -> impl Iterator<Item = (&str, &BTreeSet<Label>)> {
        self.vars.iter().map(|(v, s)| (v.as_str(), s))
    }

    // ------------------------------------------------------------- edges

    /// Add a may-edge `src.field → tgt`; merging kinds if already present.
    pub fn add_edge(&mut self, src: &Label, field: &str, tgt: Label, kind: EdgeKind) {
        let id = self.index[src];
        let slot = self.nodes[id.0 as usize]
            .edges
            .entry(field.to_string())
            .or_default();
        slot.entry(tgt)
            .and_modify(|k| *k = k.meet(kind))
            .or_insert(kind);
    }

    /// Replace all `src.field` edges (a strong update).
    pub fn set_edges(&mut self, src: &Label, field: &str, tgts: BTreeMap<Label, EdgeKind>) {
        let id = self.index[src];
        self.nodes[id.0 as usize]
            .edges
            .insert(field.to_string(), tgts);
    }

    /// May-targets of `src.field` with their edge kinds.
    pub fn edges(&self, src: &Label, field: &str) -> BTreeMap<Label, EdgeKind> {
        self.lookup(src)
            .and_then(|id| self.nodes[id.0 as usize].edges.get(field))
            .cloned()
            .unwrap_or_default()
    }

    /// All `(field, target, kind)` triples out of `src`.
    pub fn out_edges(&self, src: &Label) -> Vec<(String, Label, EdgeKind)> {
        let Some(id) = self.lookup(src) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (f, tgts) in &self.nodes[id.0 as usize].edges {
            for (t, k) in tgts {
                out.push((f.clone(), t.clone(), *k));
            }
        }
        out
    }

    /// Number of distinct `(source, field)` slots with a may-edge to `tgt`.
    /// Summary sources count double: they may hold many concrete cells.
    pub fn abstract_in_degree(&self, tgt: &Label) -> usize {
        let mut n = 0;
        for node in &self.nodes {
            for tgts in node.edges.values() {
                if tgts.contains_key(tgt) {
                    n += if node.label.is_summary() { 2 } else { 1 };
                }
            }
        }
        n
    }

    // ----------------------------------------------------- restructuring

    /// Merge node `from` into node `into`: unite out-edges, redirect
    /// in-edges and variable bindings, drop `from`. Edge kinds weaken per
    /// [`EdgeKind::meet`] when edges collide; a self-edge formed by the
    /// merge keeps the kind of the original edge (this is exactly where
    /// the k-limit family manufactures its spurious cycles).
    pub fn merge_into(&mut self, from: &Label, into: &Label) {
        if from == into {
            return;
        }
        let Some(from_id) = self.lookup(from) else {
            return;
        };
        let record = self.record(from_id).to_string();
        self.node(into.clone(), &record);

        // Union outgoing edges of `from` into `into`, redirecting
        // from→from self-edges to into→into.
        let from_edges = self.nodes[from_id.0 as usize].edges.clone();
        for (field, tgts) in from_edges {
            for (tgt, kind) in tgts {
                let tgt = if &tgt == from { into.clone() } else { tgt };
                self.add_edge(into, &field, tgt, kind);
            }
        }

        // Redirect in-edges.
        for node in &mut self.nodes {
            if node.label == *from {
                continue;
            }
            for tgts in node.edges.values_mut() {
                if let Some(kind) = tgts.remove(from) {
                    tgts.entry(into.clone())
                        .and_modify(|k| *k = k.meet(kind))
                        .or_insert(kind);
                }
            }
        }

        // Redirect variables.
        for set in self.vars.values_mut() {
            if set.remove(from) {
                set.insert(into.clone());
            }
        }

        self.remove_node(from);
    }

    fn remove_node(&mut self, label: &Label) {
        let Some(id) = self.index.remove(label) else {
            return;
        };
        self.nodes.remove(id.0 as usize);
        // Reindex everything after the removed slot.
        self.index.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            self.index.insert(n.label.clone(), NodeId(i as u32));
        }
    }

    /// Drop nodes unreachable from every variable (abstract garbage).
    /// External nodes are kept: the outside world may still reach them.
    pub fn collect_garbage(&mut self) {
        let mut live: BTreeSet<Label> = BTreeSet::new();
        let mut work: Vec<Label> = Vec::new();
        for set in self.vars.values() {
            for l in set {
                if live.insert(l.clone()) {
                    work.push(l.clone());
                }
            }
        }
        for n in &self.nodes {
            if matches!(n.label, Label::External(_)) && live.insert(n.label.clone()) {
                work.push(n.label.clone());
            }
        }
        while let Some(l) = work.pop() {
            for (_, tgt, _) in self.out_edges(&l) {
                if live.insert(tgt.clone()) {
                    work.push(tgt);
                }
            }
        }
        let dead: Vec<Label> = self
            .nodes
            .iter()
            .map(|n| n.label.clone())
            .filter(|l| !live.contains(l))
            .collect();
        for l in dead {
            self.remove_node(&l);
        }
    }

    /// Minimum dereference distance of each node from any variable
    /// (0 = directly pointed to). Unreachable nodes are absent.
    pub fn depths(&self) -> BTreeMap<Label, usize> {
        let mut depth: BTreeMap<Label, usize> = BTreeMap::new();
        let mut frontier: Vec<Label> = Vec::new();
        for set in self.vars.values() {
            for l in set {
                if !depth.contains_key(l) {
                    depth.insert(l.clone(), 0);
                    frontier.push(l.clone());
                }
            }
        }
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for l in frontier.drain(..) {
                for (_, tgt, _) in self.out_edges(&l) {
                    if !depth.contains_key(&tgt) {
                        depth.insert(tgt.clone(), d);
                        next.push(tgt);
                    }
                }
            }
            frontier = next;
        }
        depth
    }

    // --------------------------------------------------------------- join

    /// May-union of two graphs (label-wise). The control-flow join of the
    /// analysis: anything possible on either path is possible after.
    pub fn join(&self, other: &StorageGraph) -> StorageGraph {
        let mut out = self.clone();
        for n in &other.nodes {
            out.node(n.label.clone(), &n.record);
        }
        for n in &other.nodes {
            for (field, tgts) in &n.edges {
                for (tgt, kind) in tgts {
                    // Edge in both ⇒ meet of kinds; in `other` only ⇒ as-is.
                    out.add_edge(&n.label, field, tgt.clone(), *kind);
                }
            }
        }
        for (v, set) in &other.vars {
            let merged: BTreeSet<Label> = out
                .vars
                .get(v)
                .into_iter()
                .flatten()
                .chain(set.iter())
                .cloned()
                .collect();
            out.vars.insert(v.clone(), merged);
        }
        out
    }

    /// `self` describes no state `other` doesn't (label-wise containment).
    /// Used for fixpoint detection.
    pub fn subsumed_by(&self, other: &StorageGraph) -> bool {
        for (v, set) in &self.vars {
            let os = other.points_to(v);
            if !set.is_subset(&os) {
                return false;
            }
        }
        for n in &self.nodes {
            if other.lookup(&n.label).is_none() {
                return false;
            }
            for (field, tgts) in &n.edges {
                let otgts = other.edges(&n.label, field);
                for (tgt, kind) in tgts {
                    match otgts.get(tgt) {
                        None => return false,
                        // An edge we know is Ordered but other thinks is
                        // Unordered is subsumed; the reverse is not.
                        Some(ok) => {
                            if *ok == EdgeKind::Ordered && *kind == EdgeKind::Unordered {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Render the graph for demos and golden tests.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (v, set) in &self.vars {
            let tgts: Vec<String> = set.iter().map(|l| l.to_string()).collect();
            let rhs = if tgts.is_empty() {
                "NULL".to_string()
            } else {
                tgts.join(", ")
            };
            s.push_str(&format!("{v} -> {{{rhs}}}\n"));
        }
        for n in &self.nodes {
            for (field, tgts) in &n.edges {
                for (tgt, kind) in tgts {
                    let mark = match kind {
                        EdgeKind::Ordered => ">",
                        EdgeKind::Unordered => "?",
                    };
                    s.push_str(&format!("{}.{field} -{mark}-> {tgt}\n", n.label));
                }
            }
        }
        s
    }
}

impl fmt::Display for StorageGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(labels: &[Label]) -> BTreeSet<Label> {
        labels.iter().cloned().collect()
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut g = StorageGraph::new();
        let a = g.node(Label::Fresh(0), "L");
        let b = g.node(Label::Fresh(0), "L");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn edges_meet_on_collision() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        g.add_edge(
            &Label::Fresh(0),
            "next",
            Label::Fresh(1),
            EdgeKind::Unordered,
        );
        assert_eq!(
            g.edges(&Label::Fresh(0), "next")[&Label::Fresh(1)],
            EdgeKind::Unordered
        );
    }

    #[test]
    fn merge_redirects_everything_and_makes_self_loops() {
        // a --next--> b --next--> a : merging b into a must produce a
        // self-loop (the k-limit cycle-manufacturing step).
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        g.add_edge(&Label::Fresh(1), "next", Label::Fresh(0), EdgeKind::Ordered);
        g.set_var("x", set(&[Label::Fresh(1)]));

        g.merge_into(&Label::Fresh(1), &Label::Old(9));
        assert_eq!(g.lookup(&Label::Fresh(1)), None);
        assert_eq!(g.points_to("x"), set(&[Label::Old(9)]));
        // in-edge redirected
        assert!(g
            .edges(&Label::Fresh(0), "next")
            .contains_key(&Label::Old(9)));
        // out-edge kept
        assert!(g
            .edges(&Label::Old(9), "next")
            .contains_key(&Label::Fresh(0)));
    }

    #[test]
    fn merge_self_pair_forms_self_loop() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        g.merge_into(&Label::Fresh(1), &Label::Summary("L".into()));
        g.merge_into(&Label::Fresh(0), &Label::Summary("L".into()));
        let e = g.edges(&Label::Summary("L".into()), "next");
        assert!(e.contains_key(&Label::Summary("L".into())), "{g}");
    }

    #[test]
    fn garbage_collection_drops_unreachable_keeps_external() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.node(Label::External("L".into()), "L");
        g.set_var("x", set(&[Label::Fresh(0)]));
        g.collect_garbage();
        assert!(g.lookup(&Label::Fresh(0)).is_some());
        assert!(g.lookup(&Label::Fresh(1)).is_none());
        assert!(g.lookup(&Label::External("L".into())).is_some());
    }

    #[test]
    fn depths_bfs_from_vars() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "L");
        g.node(Label::Fresh(1), "L");
        g.node(Label::Fresh(2), "L");
        g.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        g.add_edge(&Label::Fresh(1), "next", Label::Fresh(2), EdgeKind::Ordered);
        g.set_var("x", set(&[Label::Fresh(0)]));
        let d = g.depths();
        assert_eq!(d[&Label::Fresh(0)], 0);
        assert_eq!(d[&Label::Fresh(1)], 1);
        assert_eq!(d[&Label::Fresh(2)], 2);
    }

    #[test]
    fn join_unions_vars_and_weakens_edges() {
        let mut a = StorageGraph::new();
        a.node(Label::Fresh(0), "L");
        a.node(Label::Fresh(1), "L");
        a.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        a.set_var("x", set(&[Label::Fresh(0)]));

        let mut b = StorageGraph::new();
        b.node(Label::Fresh(0), "L");
        b.node(Label::Fresh(1), "L");
        b.add_edge(
            &Label::Fresh(0),
            "next",
            Label::Fresh(1),
            EdgeKind::Unordered,
        );
        b.set_var("x", set(&[Label::Fresh(1)]));
        b.set_var("y", set(&[Label::Fresh(0)]));

        let j = a.join(&b);
        assert_eq!(j.points_to("x"), set(&[Label::Fresh(0), Label::Fresh(1)]));
        assert_eq!(j.points_to("y"), set(&[Label::Fresh(0)]));
        assert_eq!(
            j.edges(&Label::Fresh(0), "next")[&Label::Fresh(1)],
            EdgeKind::Unordered
        );
        assert!(a.subsumed_by(&j));
        assert!(!j.subsumed_by(&a));
    }

    #[test]
    fn subsumption_is_reflexive_and_detects_growth() {
        let mut a = StorageGraph::new();
        a.node(Label::Fresh(0), "L");
        a.set_var("x", set(&[Label::Fresh(0)]));
        assert!(a.subsumed_by(&a));
        let mut b = a.clone();
        b.set_var("x", set(&[Label::Fresh(0), Label::Old(0)]));
        b.node(Label::Old(0), "L");
        assert!(a.subsumed_by(&b));
        assert!(!b.subsumed_by(&a));
    }

    #[test]
    fn ordered_edge_not_subsumed_by_unordered() {
        let mut a = StorageGraph::new();
        a.node(Label::Fresh(0), "L");
        a.node(Label::Fresh(1), "L");
        a.add_edge(&Label::Fresh(0), "next", Label::Fresh(1), EdgeKind::Ordered);
        let mut b = a.clone();
        b.add_edge(
            &Label::Fresh(0),
            "next",
            Label::Fresh(1),
            EdgeKind::Unordered,
        );
        // An ordered edge describes fewer heaps than an unordered one, so
        // the precise state is subsumed by the weak one but not vice
        // versa — the fixpoint must keep iterating when it loses ordering.
        assert!(a.subsumed_by(&b));
        assert!(!b.subsumed_by(&a));
    }

    #[test]
    fn in_degree_counts_slots_not_edges() {
        let mut g = StorageGraph::new();
        g.node(Label::Fresh(0), "T");
        g.node(Label::Fresh(1), "T");
        g.node(Label::Fresh(2), "T");
        g.add_edge(&Label::Fresh(0), "left", Label::Fresh(2), EdgeKind::Ordered);
        g.add_edge(&Label::Fresh(1), "next", Label::Fresh(2), EdgeKind::Ordered);
        assert_eq!(g.abstract_in_degree(&Label::Fresh(2)), 2);
        // Summary source counts double.
        let mut h = StorageGraph::new();
        h.node(Label::Old(0), "T");
        h.node(Label::Fresh(2), "T");
        h.add_edge(&Label::Old(0), "next", Label::Fresh(2), EdgeKind::Ordered);
        assert_eq!(h.abstract_in_degree(&Label::Fresh(2)), 2);
    }
}
