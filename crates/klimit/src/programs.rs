//! IL programs exercising the §2.1 baselines. Each builds (or receives) a
//! one-way list and then runs the paper's §3.3.2 scaling loop over it; they
//! differ only in *where the list comes from*, which is exactly the axis
//! along which the prior analyses succeed or fail.
//!
//! None of these declare ADDS routes — the point of the comparison is what
//! can be proven *without* declarations. Their ADDS twins live in
//! `adds_lang::programs`.

/// A four-cell list built by straight-line code, scaled in the same
/// function. Heap analyses see four concrete cells: k-limiting succeeds
/// for k ≥ 2 and fails for k = 1, where the depth-1..3 cells merge and the
/// chain edge between them becomes a summary self-loop (the per-k sweep in
/// `tests/k_sweep.rs` pins the exact threshold).
pub const STRAIGHT_LINE_SCALE: &str = "
type L { int v; L *next; };

procedure main()
{
    var a: L*; var b: L*; var c: L*; var d: L*; var p: L*;
    a = new L;
    b = new L;
    c = new L;
    d = new L;
    a->next = b;
    b->next = c;
    c->next = d;
    b = NULL;
    c = NULL;
    d = NULL;
    p = a;
    while p <> NULL
    {
        p->v = p->v * 2;
        p = p->next;
    }
}
";

/// An unbounded list built by a loop (append at the tail), scaled in the
/// same function. The k-limit family merges the interior cells and
/// manufactures a `next` cycle — §2.1's central complaint — while the
/// CWZ-style mode keeps every `next` edge allocation-ordered and can still
/// license the parallelization.
pub const LOOP_BUILT_SCALE: &str = "
type L { int v; L *next; };

procedure main()
{
    var head: L*; var tail: L*; var b: L*; var p: L*;
    var i: int;
    head = new L;
    tail = head;
    i = 0;
    while i < 100
    {
        b = new L;
        tail->next = b;
        tail = b;
        i = i + 1;
    }
    p = head;
    while p <> NULL
    {
        p->v = p->v * 2;
        p = p->next;
    }
}
";

/// The same list built by a *recursive* function. Every baseline collapses
/// at the call boundary ("fails … in the presence of general recursion"),
/// while the ADDS declaration carries the shape across it.
pub const RECURSIVE_BUILT_SCALE: &str = "
type L { int v; L *next; };

function build(n: int): L*
{
    var node: L*;
    if n <= 0 { return NULL; }
    node = new L;
    node->v = n;
    node->next = build(n - 1);
    return node;
}

procedure main()
{
    var head: L*; var p: L*;
    head = build(100);
    p = head;
    while p <> NULL
    {
        p->v = p->v * 2;
        p = p->next;
    }
}
";

/// The paper's actual `scale` procedure: the list arrives as a parameter.
/// With no declaration, a parameter is the unknown external world and
/// nothing can be proven — "a lack of appropriate data structure
/// declarations is the most serious impediment".
pub const PARAM_SCALE: &str = "
type L { int v; L *next; };

procedure scale(head: L*, c: int)
{
    var p: L*;
    p = head;
    while p <> NULL
    {
        p->v = p->v * c;
        p = p->next;
    }
}
";

/// The same unbounded list built by *prepending* at the head. Concretely
/// just as acyclic as the append version, but our CWZ-style mode cannot
/// certify it: the prepend store's target is the old head (a cell that
/// already carries pointers), so the virgin-target ordering argument does
/// not apply — a documented imprecision relative to full \[CWZ90\], which
/// handles this case with reference counts. The declared shape is
/// indifferent to build order: ADDS still proves the walk.
pub const PREPEND_BUILT_SCALE: &str = "
type L { int v; L *next; };

procedure main()
{
    var head: L*; var b: L*; var p: L*;
    var i: int;
    head = NULL;
    i = 0;
    while i < 100
    {
        b = new L;
        b->next = head;
        head = b;
        i = i + 1;
    }
    p = head;
    while p <> NULL
    {
        p->v = p->v * 2;
        p = p->next;
    }
}
";

/// The ADDS-declared twin of any of this module's programs: identical code,
/// but the list type declares its shape (`next` is uniquely forward), which
/// is what the paper's own analysis consumes. Used by the precision-ladder
/// ablation to run ADDS + general path matrix analysis on the same inputs.
pub fn adds_twin(src: &str) -> String {
    src.replace(
        "type L { int v; L *next; };",
        "type L [X] { int v; L *next is uniquely forward along X; };",
    )
}

/// All (name, program, function) triples, in the order the ladder prints
/// them.
pub fn ladder_programs() -> [(&'static str, &'static str, &'static str); 5] {
    [
        ("straight-line build", STRAIGHT_LINE_SCALE, "main"),
        ("loop build (append)", LOOP_BUILT_SCALE, "main"),
        ("loop build (prepend)", PREPEND_BUILT_SCALE, "main"),
        ("recursive build", RECURSIVE_BUILT_SCALE, "main"),
        ("list as parameter", PARAM_SCALE, "scale"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::types::check_source;

    #[test]
    fn all_programs_typecheck() {
        for (name, src, _) in ladder_programs() {
            check_source(src).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }

    #[test]
    fn adds_twins_typecheck_and_differ() {
        for (name, src, _) in ladder_programs() {
            let twin = adds_twin(src);
            assert_ne!(twin, src, "{name}: twin substitution must apply");
            check_source(&twin).unwrap_or_else(|e| panic!("{name} twin: {e:?}"));
        }
    }
}
