//! The exact binary codec between the request-level cache values
//! ([`ProgramReport`], `run` results) and the disk tier's record bytes.
//!
//! Determinism is the whole point: persistence must never perturb a
//! report byte, so the codec is a field-by-field exact encoding — strings
//! as length-prefixed UTF-8, integers little-endian, floats by
//! `f64::to_bits` — with **no** canonicalization, defaulting, or lossy
//! conversion anywhere. `decode(encode(v))` reproduces `v` exactly, which
//! the round-trip tests pin via the byte-stable JSON rendering.
//!
//! Decoding is total over arbitrary bytes: any truncation, trailing
//! garbage, or structural mismatch returns `None` (the caller treats it
//! as a miss and recomputes) rather than panicking — the disk tier
//! already checksums records, this is the second seatbelt. A leading
//! kind+version tag keeps report and run values from masquerading as one
//! another if a future layer version reuses a fingerprint shape.

use crate::report::{
    AnalyzeReport, CheckReport, FnReport, LoopEffectsReport, LoopReport, ParseReport,
    ProgramReport, ReasonEntry, SkippedLoop, TransformDecision, TransformReport, TypeSummary,
};
use crate::runner::{ParRun, RunReport};

/// Tag byte of an encoded [`ProgramReport`].
const REPORT_TAG: u8 = b'R';
/// Tag byte of an encoded `run` result.
const RUN_TAG: u8 = b'U';
/// Codec version (bumped on any layout change; the fingerprint in the
/// store key already isolates schema versions, this isolates the codec).
const VERSION: u8 = 1;

// ---------------------------------------------------------------- writer

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // Bit-exact: NaN payloads, signed zeros, everything survives.
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn strs(&mut self, v: &[String]) {
        self.u32(v.len() as u32);
        for s in v {
            self.str(s);
        }
    }

    fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Enc, &T)) {
        match v {
            None => self.u8(0),
            Some(t) => {
                self.u8(1);
                f(self, t);
            }
        }
    }

    fn seq<T>(&mut self, items: &[T], f: impl Fn(&mut Enc, &T)) {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }
}

// ---------------------------------------------------------------- reader

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn strs(&mut self) -> Option<Vec<String>> {
        self.seq(Dec::str)
    }

    fn opt<T>(&mut self, f: impl FnOnce(&mut Dec<'a>) -> Option<T>) -> Option<Option<T>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(f(self)?)),
            _ => None,
        }
    }

    fn seq<T>(&mut self, f: impl Fn(&mut Dec<'a>) -> Option<T>) -> Option<Vec<T>> {
        let len = self.u32()? as usize;
        // Every element is at least one byte; a length claiming more than
        // the remaining input is corrupt, not a huge allocation.
        if len > self.bytes.len() - self.pos.min(self.bytes.len()) {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// --------------------------------------------------------------- reports

/// Encode a canonical stage report for the disk tier.
pub fn encode_report(r: &ProgramReport) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(REPORT_TAG);
    e.u8(VERSION);
    e.str(&r.name);
    e.u8(match r.origin {
        "builtin" => 1,
        _ => 0,
    });
    e.bool(r.ok);
    e.strs(&r.diagnostics);
    e.opt(r.parse.as_ref(), |e, p| {
        e.str(&p.pretty);
        e.bool(p.roundtrip_stable);
    });
    e.opt(r.check.as_ref(), |e, c| {
        e.seq(&c.types, |e, t| {
            e.str(&t.name);
            e.strs(&t.dims);
            e.strs(&t.routes);
        });
        e.strs(&c.functions);
    });
    e.opt(r.analyze.as_ref(), |e, a| {
        e.seq(&a.functions, encode_fn);
    });
    e.opt(r.transform.as_ref(), encode_transform);
    e.buf
}

fn encode_reasons(e: &mut Enc, reasons: &[ReasonEntry]) {
    e.seq(reasons, |e, r| {
        e.str(&r.code);
        e.str(&r.message);
    });
}

fn encode_fn(e: &mut Enc, f: &FnReport) {
    e.str(&f.name);
    e.seq(&f.loops, |e, l| {
        e.u32(l.line);
        e.opt(l.pattern.as_ref(), |e, p| e.str(p));
        e.bool(l.parallelizable);
        encode_reasons(e, &l.reasons);
        e.opt(l.effects.as_ref(), |e, fx| {
            e.strs(&fx.writes);
            e.strs(&fx.reads);
            e.strs(&fx.ptr_writes);
            e.strs(&fx.advances);
        });
    });
    e.strs(&f.events);
    e.bool(f.exit_valid);
    e.opt(f.exit_matrix.as_ref(), |e, m| e.strs(m));
}

fn encode_transform(e: &mut Enc, t: &TransformReport) {
    e.seq(&t.parallelized, |e, d| {
        e.str(&d.func);
        e.str(&d.var);
        e.str(&d.field);
    });
    e.seq(&t.skipped, |e, s| {
        e.str(&s.func);
        e.u32(s.line);
        encode_reasons(e, &s.reasons);
    });
    e.str(&t.source);
    e.bool(t.reparses);
}

/// Decode a stage report; `None` on any damage or version mismatch.
pub fn decode_report(bytes: &[u8]) -> Option<ProgramReport> {
    let mut d = Dec::new(bytes);
    if d.u8()? != REPORT_TAG || d.u8()? != VERSION {
        return None;
    }
    let name = d.str()?;
    let origin = match d.u8()? {
        0 => "file",
        1 => "builtin",
        _ => return None,
    };
    let ok = d.bool()?;
    let diagnostics = d.strs()?;
    let parse = d.opt(|d| {
        Some(ParseReport {
            pretty: d.str()?,
            roundtrip_stable: d.bool()?,
        })
    })?;
    let check = d.opt(|d| {
        Some(CheckReport {
            types: d.seq(|d| {
                Some(TypeSummary {
                    name: d.str()?,
                    dims: d.strs()?,
                    routes: d.strs()?,
                })
            })?,
            functions: d.strs()?,
        })
    })?;
    let analyze = d.opt(|d| {
        Some(AnalyzeReport {
            functions: d.seq(decode_fn)?,
        })
    })?;
    let transform = d.opt(decode_transform)?;
    if !d.done() {
        return None;
    }
    Some(ProgramReport {
        name,
        origin,
        ok,
        diagnostics,
        parse,
        check,
        analyze,
        transform,
    })
}

fn decode_reasons(d: &mut Dec<'_>) -> Option<Vec<ReasonEntry>> {
    d.seq(|d| {
        Some(ReasonEntry {
            code: d.str()?,
            message: d.str()?,
        })
    })
}

fn decode_fn(d: &mut Dec<'_>) -> Option<FnReport> {
    Some(FnReport {
        name: d.str()?,
        loops: d.seq(|d| {
            Some(LoopReport {
                line: d.u32()?,
                pattern: d.opt(Dec::str)?,
                parallelizable: d.bool()?,
                reasons: decode_reasons(d)?,
                effects: d.opt(|d| {
                    Some(LoopEffectsReport {
                        writes: d.strs()?,
                        reads: d.strs()?,
                        ptr_writes: d.strs()?,
                        advances: d.strs()?,
                    })
                })?,
            })
        })?,
        events: d.strs()?,
        exit_valid: d.bool()?,
        exit_matrix: d.opt(Dec::strs)?,
    })
}

fn decode_transform(d: &mut Dec<'_>) -> Option<TransformReport> {
    Some(TransformReport {
        parallelized: d.seq(|d| {
            Some(TransformDecision {
                func: d.str()?,
                var: d.str()?,
                field: d.str()?,
            })
        })?,
        skipped: d.seq(|d| {
            Some(SkippedLoop {
                func: d.str()?,
                line: d.u32()?,
                reasons: decode_reasons(d)?,
            })
        })?,
        source: d.str()?,
        reparses: d.bool()?,
    })
}

// ------------------------------------------------------------------ runs

/// Encode a canonical `run` result (cached errors included — the same
/// bytes produce the same error, and the disk tier preserves that).
pub fn encode_run(r: &Result<RunReport, String>) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(RUN_TAG);
    e.u8(VERSION);
    match r {
        Err(msg) => {
            e.u8(0);
            e.str(msg);
        }
        Ok(r) => {
            e.u8(1);
            e.str(&r.program);
            e.u64(r.bodies as u64);
            e.i64(r.steps);
            e.u64(r.seq_cycles);
            e.seq(&r.parallel, |e, p| {
                e.u64(p.pes as u64);
                e.u64(p.cycles);
                e.f64(p.speedup);
                e.u64(p.conflicts as u64);
                e.u64(p.parallel_rounds);
                e.bool(p.physics_matches);
            });
        }
    }
    e.buf
}

/// Decode a `run` result; `None` on any damage or version mismatch.
pub fn decode_run(bytes: &[u8]) -> Option<Result<RunReport, String>> {
    let mut d = Dec::new(bytes);
    if d.u8()? != RUN_TAG || d.u8()? != VERSION {
        return None;
    }
    let result = match d.u8()? {
        0 => Err(d.str()?),
        1 => Ok(RunReport {
            program: d.str()?,
            bodies: d.u64()? as usize,
            steps: d.i64()?,
            seq_cycles: d.u64()?,
            parallel: d.seq(|d| {
                Some(ParRun {
                    pes: d.u64()? as usize,
                    cycles: d.u64()?,
                    speedup: d.f64()?,
                    conflicts: d.u64()? as usize,
                    parallel_rounds: d.u64()?,
                    physics_matches: d.bool()?,
                })
            })?,
        }),
        _ => return None,
    };
    if !d.done() {
        return None;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::AnalysisDb;
    use crate::runner::RunOptions;
    use crate::session::Stage;

    /// Byte-stable JSON is the repo's equality oracle for reports.
    fn report_bytes(r: &ProgramReport) -> String {
        r.to_json().pretty()
    }

    const CORPUS: &[&str] = &[
        adds_lang::programs::LIST_SCALE_PLAIN,
        adds_lang::programs::LIST_SCALE_ADDS,
        adds_lang::programs::SUBTREE_MOVE,
        adds_lang::programs::ORTH_ROW_SCALE,
        adds_lang::programs::OCTREE_DECL,
        adds_lang::programs::BARNES_HUT,
        adds_lang::programs::LIST_SUM,
    ];

    #[test]
    fn every_corpus_report_round_trips_byte_identically() {
        let db = AnalysisDb::new();
        for src in CORPUS {
            for stage in [
                Stage::Parse,
                Stage::Check,
                Stage::Analyze,
                Stage::Parallelize,
            ] {
                for matrices in [false, true] {
                    let (_, report, _) = db.stage_report(src, stage, matrices);
                    let encoded = encode_report(&report);
                    let decoded = decode_report(&encoded).expect("round trip");
                    assert_eq!(
                        report_bytes(&report),
                        report_bytes(&decoded),
                        "stage {stage:?} matrices={matrices}"
                    );
                }
            }
        }
    }

    #[test]
    fn failed_reports_round_trip() {
        let db = AnalysisDb::new();
        let (_, report, _) = db.stage_report("type T {", Stage::Analyze, false);
        assert!(!report.ok);
        let decoded = decode_report(&encode_report(&report)).expect("round trip");
        assert_eq!(report_bytes(&report), report_bytes(&decoded));
    }

    #[test]
    fn run_results_round_trip_bit_exactly() {
        let db = AnalysisDb::new();
        let opts = RunOptions {
            bodies: 16,
            steps: 1,
            pes: vec![2, 4],
            ..RunOptions::default()
        };
        let (_, result, _) = db.run(adds_lang::programs::BARNES_HUT, &opts);
        let report = result.as_ref().as_ref().expect("runs");
        let decoded = decode_run(&encode_run(&result)).expect("round trip");
        let decoded = decoded.expect("ok");
        assert_eq!(
            crate::runner::to_json(report).pretty(),
            crate::runner::to_json(&decoded).pretty()
        );
        // Speedups are floats: the codec must preserve the exact bits,
        // not a rendering.
        for (a, b) in report.parallel.iter().zip(&decoded.parallel) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        // Cached errors persist too.
        let err: Result<RunReport, String> = Err("deadbeef: no `simulate` procedure".into());
        let back = decode_run(&encode_run(&err)).expect("round trip");
        assert_eq!(back.err(), err.err());
    }

    #[test]
    fn damaged_bytes_decode_to_none_never_panic() {
        let db = AnalysisDb::new();
        let (_, report, _) =
            db.stage_report(adds_lang::programs::LIST_SCALE_ADDS, Stage::Analyze, true);
        let good = encode_report(&report);
        // Every truncation is rejected (nothing decodes to a short read).
        for len in 0..good.len() {
            assert!(decode_report(&good[..len]).is_none(), "truncated at {len}");
        }
        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_report(&padded).is_none());
        // Tag confusion is rejected: a run value never decodes as a report.
        let run = encode_run(&Err("x".to_string()));
        assert!(decode_report(&run).is_none());
        assert!(decode_run(&good).is_none());
    }
}
