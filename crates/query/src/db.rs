//! The demand-driven **analysis database**: every pipeline layer —
//! parse → typecheck → ADDS declarations → effect summaries → per-loop
//! verdicts → transform → machine compile → run — is a memoized query
//! over source bytes, individually cached under the
//! `(sha256(source), fingerprint)` contract of [`crate::cache`].
//!
//! Queries pull their inputs from the queries they depend on (the
//! dependency graph is the fingerprint composition in
//! [`crate::fingerprint`]), so a warm `parallelize` after an `analyze`
//! reuses the parsed AST, the typed program, and the analysis fixpoints
//! instead of recomputing them — the per-digest compute counters
//! ([`AnalysisDb::computes`]) make that property testable.
//!
//! Failed upstream computations are artifacts too: a parse error is
//! cached once as a [`Failure`] and every downstream query of the same
//! bytes shares it.

use crate::cache::{Cache, CacheStats, Outcome};
use crate::fingerprint::{Fingerprints, Versions};
use crate::par::ParCounters;
use crate::report::{
    CheckReport, FnReport, LoopEffectsReport, LoopReport, ParseReport, ProgramReport, ReasonEntry,
    SkippedLoop, TransformDecision, TransformReport, TypeSummary,
};
use crate::runner::{ParRun, RunOptions, RunReport, CLOUD_SEED};
use crate::session::Stage;
use adds_core::depend::LoopCheck;
use adds_lang::adds::AddsFieldKind;
use adds_lang::ast::{Direction, Program};
use adds_lang::source::line_col;
use adds_lang::TypedProgram;
use adds_machine::compile::CompiledProgram;
use adds_machine::{uniform_cloud, CostModel};
use adds_obs::metrics::Histogram;
use adds_obs::trace;
use adds_store::Store;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub use crate::sha::{sha256, Digest};

/// A failed upstream computation (parse or type errors), cached and
/// shared by every downstream query of the same bytes.
#[derive(Clone, Debug)]
pub struct Failure {
    /// `Diagnostics::render` output (`line:col: message`, one per line) —
    /// exactly what stage reports carry in `diagnostics`.
    pub rendered: Vec<String>,
    /// `Diagnostics` `Display` output (byte offsets), used where error
    /// strings historically embedded `{d}` rather than a render.
    pub display: String,
}

impl Failure {
    fn of(d: &adds_lang::Diagnostics, src: &str) -> Failure {
        Failure {
            rendered: vec![d.render(src)],
            display: d.to_string(),
        }
    }

    fn of_one(d: &adds_lang::Diagnostic, src: &str) -> Failure {
        Failure {
            rendered: vec![d.render(src)],
            display: d.to_string(),
        }
    }
}

/// Shorthand for a cached artifact: shared, and either the value or the
/// upstream failure.
pub type QueryResult<T> = Arc<Result<T, Failure>>;

/// The analysis fixpoint artifact: `core::compile` output (typed program,
/// interprocedural summaries, per-function path-matrix analyses).
pub struct Analyzed(pub adds_core::Compiled);

/// Which query computed — the key of the per-digest compute counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `parsed(src)`
    Parsed,
    /// `roundtrip(src)`
    Roundtrip,
    /// `typed(src)`
    Typed,
    /// `adds_decls(src)`
    AddsDecls,
    /// `analyzed(src)`
    Analyzed,
    /// `effects(src, fn)`
    Effects,
    /// `loop_verdict(src, fn, i)`
    LoopVerdict,
    /// `transformed(src)`
    Transformed,
    /// `compiled(src)`
    Compiled,
    /// `run(src, opts)`
    Run,
    /// `report(src, stage, opts)`
    Report,
}

impl QueryKind {
    /// Every query kind, in pipeline order (stats rendering).
    pub const ALL: &'static [QueryKind] = &[
        QueryKind::Parsed,
        QueryKind::Roundtrip,
        QueryKind::Typed,
        QueryKind::AddsDecls,
        QueryKind::Analyzed,
        QueryKind::Effects,
        QueryKind::LoopVerdict,
        QueryKind::Transformed,
        QueryKind::Compiled,
        QueryKind::Run,
        QueryKind::Report,
    ];

    /// Stable snake_case name (used by `/v1/stats`).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Parsed => "parsed",
            QueryKind::Roundtrip => "roundtrip",
            QueryKind::Typed => "typed",
            QueryKind::AddsDecls => "adds_decls",
            QueryKind::Analyzed => "analyzed",
            QueryKind::Effects => "effects",
            QueryKind::LoopVerdict => "loop_verdicts",
            QueryKind::Transformed => "transformed",
            QueryKind::Compiled => "compiled",
            QueryKind::Run => "runs",
            QueryKind::Report => "reports",
        }
    }

    /// Trace span name for this query (`query.` + [`QueryKind::name`]),
    /// static so the recorder never allocates for it.
    pub fn span_name(self) -> &'static str {
        match self {
            QueryKind::Parsed => "query.parsed",
            QueryKind::Roundtrip => "query.roundtrip",
            QueryKind::Typed => "query.typed",
            QueryKind::AddsDecls => "query.adds_decls",
            QueryKind::Analyzed => "query.analyzed",
            QueryKind::Effects => "query.effects",
            QueryKind::LoopVerdict => "query.loop_verdicts",
            QueryKind::Transformed => "query.transformed",
            QueryKind::Compiled => "query.compiled",
            QueryKind::Run => "query.runs",
            QueryKind::Report => "query.reports",
        }
    }
}

/// Per-digest entries kept in the diagnostic compute map. The map exists
/// for reuse assertions (tests, debugging); past this bound it resets
/// rather than growing with every distinct source a long-running server
/// ever sees. The per-kind totals (atomics) are exact regardless.
const MAX_TRACKED_DIGESTS: usize = 65_536;

/// Compute counts: exact per-kind totals on lock-free atomics (the
/// `/v1/stats` path reads only these), plus a bounded per-`(kind,
/// digest)` diagnostic map for reuse assertions. Computes are rare —
/// every one is a cache miss doing real analysis work — so a mutexed map
/// on the bump path is plenty.
#[derive(Default)]
struct ComputeCounters {
    totals: [std::sync::atomic::AtomicU64; QueryKind::ALL.len()],
    map: Mutex<HashMap<(QueryKind, Digest), u64>>,
    /// Diagnostic entries discarded by the bounded-map reset — surfaced
    /// in `/v1/stats` so operators can tell when per-digest reuse
    /// assertions are running on incomplete data.
    dropped: std::sync::atomic::AtomicU64,
}

impl ComputeCounters {
    fn bump(&self, kind: QueryKind, digest: Digest) {
        self.totals[kind as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut map = self.map.lock().expect("compute counters");
        if map.len() >= MAX_TRACKED_DIGESTS && !map.contains_key(&(kind, digest)) {
            self.dropped
                .fetch_add(map.len() as u64, std::sync::atomic::Ordering::Relaxed);
            map.clear();
        }
        *map.entry((kind, digest)).or_insert(0) += 1;
    }

    fn get(&self, kind: QueryKind, digest: &Digest) -> u64 {
        *self
            .map
            .lock()
            .expect("compute counters")
            .get(&(kind, *digest))
            .unwrap_or(&0)
    }

    fn total(&self, kind: QueryKind) -> u64 {
        self.totals[kind as usize].load(std::sync::atomic::Ordering::Relaxed)
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// The shared cache bank behind one or more databases (a forked database
/// with bumped [`Versions`] reuses the same bank; see
/// [`AnalysisDb::fork_with_versions`]).
struct Caches {
    artifact_stats: Arc<CacheStats>,
    report_stats: Arc<CacheStats>,
    counters: ComputeCounters,
    /// Parallel-executor counters (fan-outs, tasks, steals, worker
    /// utilization) — per cache bank, like every other counter here, so
    /// `/v1/stats` stays hermetic per server.
    par: ParCounters,
    /// Per-layer compute duration histograms (µs): every cache miss that
    /// runs real analysis work records how long the compute took, so
    /// `/v1/metrics` can rank layers by where time actually goes.
    durations: [Histogram; QueryKind::ALL.len()],
    parsed: Cache<Result<Program, Failure>>,
    roundtrip: Cache<Result<ParseReport, Failure>>,
    typed: Cache<Result<TypedProgram, Failure>>,
    adds_decls: Cache<Result<CheckReport, Failure>>,
    analyzed: Cache<Result<Analyzed, Failure>>,
    effects: Cache<Result<Vec<LoopCheck>, Failure>>,
    verdicts: Cache<Result<Option<LoopCheck>, Failure>>,
    transformed: Cache<Result<TransformReport, Failure>>,
    compiled: Cache<Result<CompiledProgram, Failure>>,
    runs: Cache<Result<RunReport, String>>,
    reports: Cache<ProgramReport>,
    /// The optional persistent second tier under the request-level caches
    /// (reports + runs): misses probe it before recomputing, computes
    /// write behind into it, and evictions flush through it.
    store: Option<Arc<Store>>,
}

impl Caches {
    fn new(capacity: usize, store: Option<Arc<Store>>) -> Caches {
        let artifact_stats = Arc::new(CacheStats::default());
        let report_stats = Arc::new(CacheStats::default());
        fn make<V>(stats: &Arc<CacheStats>, capacity: usize) -> Cache<V> {
            Cache::bounded(Arc::clone(stats), capacity)
        }
        let mut runs: Cache<Result<RunReport, String>> = make(&report_stats, capacity);
        let mut reports: Cache<ProgramReport> = make(&report_stats, capacity);
        if let Some(store) = &store {
            // Write-behind on eviction: a value the CLOCK sweep drops is
            // persisted (a no-op when the compute already buffered it), so
            // a bounded RAM tier never costs a recompute that the disk
            // tier could have answered.
            let sink = Arc::clone(store);
            reports.set_evict_hook(Arc::new(move |digest, fp, value| {
                sink.put(&digest.0, fp, &crate::persist::encode_report(value));
            }));
            let sink = Arc::clone(store);
            runs.set_evict_hook(Arc::new(move |digest, fp, value| {
                sink.put(&digest.0, fp, &crate::persist::encode_run(value));
            }));
        }
        Caches {
            parsed: make(&artifact_stats, capacity),
            roundtrip: make(&artifact_stats, capacity),
            typed: make(&artifact_stats, capacity),
            adds_decls: make(&artifact_stats, capacity),
            analyzed: make(&artifact_stats, capacity),
            effects: make(&artifact_stats, capacity),
            verdicts: make(&artifact_stats, capacity),
            transformed: make(&artifact_stats, capacity),
            compiled: make(&artifact_stats, capacity),
            runs,
            reports,
            counters: ComputeCounters::default(),
            par: ParCounters::new(),
            durations: std::array::from_fn(|_| Histogram::new()),
            artifact_stats,
            report_stats,
            store,
        }
    }
}

/// The demand-driven, memoized analysis database. Cheap to share
/// (`Clone` shares the cache bank) and safe to use from many threads —
/// every cache is sharded and single-flight.
#[derive(Clone)]
pub struct AnalysisDb {
    fp: Arc<Fingerprints>,
    caches: Arc<Caches>,
    /// Worker budget for internal query fan-outs (0 = one per core).
    /// Parallelism never changes an answer, so this deliberately does
    /// **not** participate in any fingerprint.
    jobs: usize,
}

impl Default for AnalysisDb {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisDb {
    /// An unbounded database under the default fingerprint [`Versions`].
    pub fn new() -> AnalysisDb {
        AnalysisDb::with_capacity(0)
    }

    /// A database whose caches hold at most ~`capacity` entries each
    /// (0 = unbounded), evicting CLOCK-style.
    pub fn with_capacity(capacity: usize) -> AnalysisDb {
        AnalysisDb::with_options(capacity, 0)
    }

    /// A database with an explicit cache capacity and fan-out worker
    /// budget (`jobs`; 0 = one per core, 1 = fully serial evaluation).
    /// The budget only affects wall-clock: reports are byte-identical at
    /// every value.
    pub fn with_options(capacity: usize, jobs: usize) -> AnalysisDb {
        AnalysisDb::with_store(capacity, jobs, None)
    }

    /// A database with an optional persistent second tier under the
    /// request-level caches. With a store, a report/run miss probes disk
    /// before recomputing (and promotes the hit into RAM), every compute
    /// writes behind into the store's pending buffer, and evicted entries
    /// flush through it — so a restart serves warm, byte-identical
    /// answers. Persistence is invisible in report bytes: a disk hit and
    /// a recompute are indistinguishable except in the counters.
    pub fn with_store(capacity: usize, jobs: usize, store: Option<Arc<Store>>) -> AnalysisDb {
        AnalysisDb {
            fp: Arc::new(Fingerprints::default()),
            caches: Arc::new(Caches::new(capacity, store)),
            jobs,
        }
    }

    /// The persistent tier, when configured (commit scheduling and stats
    /// belong to the frontend).
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.caches.store.as_ref()
    }

    /// A database sharing this one's caches and counters but keyed under
    /// `versions`. Queries whose composed fingerprints are unchanged keep
    /// hitting the shared entries; bumped layers (and everything
    /// downstream of them) recompute under their new keys.
    pub fn fork_with_versions(&self, versions: &Versions) -> AnalysisDb {
        AnalysisDb {
            fp: Arc::new(Fingerprints::new(versions)),
            caches: Arc::clone(&self.caches),
            jobs: self.jobs,
        }
    }

    /// The configured fan-out worker budget (0 = one per core).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Parallel-executor counters (fan-outs, tasks, steals, worker
    /// utilization), shared with everything on this cache bank.
    pub fn par(&self) -> &ParCounters {
        &self.caches.par
    }

    /// Map `f` over `items` on this database's worker budget, results in
    /// input order — the fan-out batch frontends use for whole items.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.caches.par.map_ordered(self.jobs, items, f)
    }

    /// The composed fingerprint table this database keys under.
    pub fn fingerprints(&self) -> &Fingerprints {
        &self.fp
    }

    /// Cache counters of the artifact queries (parse … compile).
    pub fn artifact_stats(&self) -> &Arc<CacheStats> {
        &self.caches.artifact_stats
    }

    /// Cache counters of the request-level queries (reports + runs) —
    /// the counters `/v1/stats` has always surfaced.
    pub fn report_stats(&self) -> &Arc<CacheStats> {
        &self.caches.report_stats
    }

    /// Completed + in-flight entries in the request-level caches.
    pub fn report_entries(&self) -> usize {
        self.caches.reports.len() + self.caches.runs.len()
    }

    /// Completed + in-flight entries in the artifact caches.
    pub fn artifact_entries(&self) -> usize {
        let c = &self.caches;
        c.parsed.len()
            + c.roundtrip.len()
            + c.typed.len()
            + c.adds_decls.len()
            + c.analyzed.len()
            + c.effects.len()
            + c.verdicts.len()
            + c.transformed.len()
            + c.compiled.len()
    }

    /// How many times `kind` was *computed* (not served from cache) for
    /// the exact source bytes hashing to `digest`.
    pub fn computes(&self, kind: QueryKind, digest: &Digest) -> u64 {
        self.caches.counters.get(kind, digest)
    }

    /// Total computes of `kind` across all sources.
    pub fn total_computes(&self, kind: QueryKind) -> u64 {
        self.caches.counters.total(kind)
    }

    /// Diagnostic per-digest compute entries dropped by the bounded-map
    /// reset (see `MAX_TRACKED_DIGESTS`). Non-zero means
    /// [`AnalysisDb::computes`] answers are incomplete for old digests;
    /// the per-kind totals stay exact.
    pub fn dropped_digest_entries(&self) -> u64 {
        self.caches.counters.dropped()
    }

    /// The compute-duration histogram (µs) of one query layer.
    pub fn layer_duration(&self, kind: QueryKind) -> &Histogram {
        &self.caches.durations[kind as usize]
    }

    fn counted<V>(
        &self,
        cache: &Cache<V>,
        kind: QueryKind,
        digest: Digest,
        fingerprint: &str,
        f: impl FnOnce() -> V,
    ) -> (Arc<V>, Outcome) {
        let mut span = trace::span(kind.span_name(), "query");
        let (value, outcome) = cache.get_or_compute(digest, fingerprint, || {
            self.caches.counters.bump(kind, digest);
            let started = std::time::Instant::now();
            let v = f();
            self.caches.durations[kind as usize].record(started.elapsed().as_micros() as u64);
            v
        });
        if let Some(s) = span.as_mut() {
            s.arg("layer", kind.name());
            s.arg("digest", &digest.hex()[..8]);
            s.arg("outcome", outcome.name());
        }
        (value, outcome)
    }

    /// [`AnalysisDb::counted`] with the persistent tier underneath: a RAM
    /// miss probes the store (decoding the record back into the cached
    /// value) before paying for a recompute, and a real compute writes
    /// behind into the store's pending buffer. Disk loads bump neither
    /// compute counters nor duration histograms — they are cache traffic,
    /// not analysis work — and surface as [`Outcome::Disk`].
    #[allow(clippy::too_many_arguments)]
    fn counted_tiered<V>(
        &self,
        cache: &Cache<V>,
        kind: QueryKind,
        digest: Digest,
        fingerprint: &str,
        decode: impl Fn(&[u8]) -> Option<V>,
        encode: impl Fn(&V) -> Vec<u8>,
        f: impl FnOnce() -> V,
    ) -> (Arc<V>, Outcome) {
        let mut span = trace::span(kind.span_name(), "query");
        let from_disk = std::cell::Cell::new(false);
        let (value, outcome) = cache.get_or_compute(digest, fingerprint, || {
            if let Some(store) = &self.caches.store {
                if let Some(bytes) = store.get(&digest.0, fingerprint) {
                    if let Some(v) = decode(&bytes) {
                        from_disk.set(true);
                        return v;
                    }
                }
            }
            self.caches.counters.bump(kind, digest);
            let started = std::time::Instant::now();
            let v = f();
            self.caches.durations[kind as usize].record(started.elapsed().as_micros() as u64);
            if let Some(store) = &self.caches.store {
                store.put(&digest.0, fingerprint, &encode(&v));
            }
            v
        });
        let outcome = if from_disk.get() {
            cache
                .stats()
                .disk_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Outcome::Disk
        } else {
            outcome
        };
        if let Some(s) = span.as_mut() {
            s.arg("layer", kind.name());
            s.arg("digest", &digest.hex()[..8]);
            s.arg("outcome", outcome.name());
        }
        (value, outcome)
    }

    // ----------------------------------------------------- artifact queries

    /// `parsed(src)`: source → AST.
    pub fn parsed(&self, src: &str) -> QueryResult<Program> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.parsed,
            QueryKind::Parsed,
            digest,
            &self.fp.parsed,
            || adds_lang::parse_program(src).map_err(|d| Failure::of_one(&d, src)),
        )
        .0
    }

    /// `roundtrip(src)`: pretty-print the AST and verify the
    /// print→parse→print fixpoint (the `parse` report section).
    pub fn roundtrip(&self, src: &str) -> QueryResult<ParseReport> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.roundtrip,
            QueryKind::Roundtrip,
            digest,
            &self.fp.roundtrip,
            || {
                let program = self.parsed(src);
                let program = match &*program {
                    Ok(p) => p.clone(),
                    Err(f) => return Err(f.clone()),
                };
                let pretty = adds_lang::pretty::program(&program);
                let roundtrip_stable = match adds_lang::parse_program(&pretty) {
                    Ok(p2) => adds_lang::pretty::program(&p2) == pretty,
                    Err(_) => false,
                };
                Ok(ParseReport {
                    pretty,
                    roundtrip_stable,
                })
            },
        )
        .0
    }

    /// `typed(src)`: ADDS resolution + type check over the parsed AST.
    pub fn typed(&self, src: &str) -> QueryResult<TypedProgram> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.typed,
            QueryKind::Typed,
            digest,
            &self.fp.typed,
            || {
                let program = self.parsed(src);
                let program = match &*program {
                    Ok(p) => p.clone(),
                    Err(f) => return Err(f.clone()),
                };
                adds_lang::check(program).map_err(|d| Failure::of(&d, src))
            },
        )
        .0
    }

    /// `adds_decls(src)`: the resolved ADDS declaration summary (the
    /// `check` report section).
    pub fn adds_decls(&self, src: &str) -> QueryResult<CheckReport> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.adds_decls,
            QueryKind::AddsDecls,
            digest,
            &self.fp.adds_decls,
            || match &*self.typed(src) {
                Ok(tp) => Ok(check_report(tp)),
                Err(f) => Err(f.clone()),
            },
        )
        .0
    }

    /// `analyzed(src)`: effect summaries + path-matrix fixpoints for every
    /// function (the `core::compile` artifact).
    pub fn analyzed(&self, src: &str) -> QueryResult<Analyzed> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.analyzed,
            QueryKind::Analyzed,
            digest,
            &self.fp.analyzed,
            || match &*self.typed(src) {
                Ok(tp) => Ok(Analyzed(adds_core::driver::compile_typed(tp.clone()))),
                Err(f) => Err(f.clone()),
            },
        )
        .0
    }

    /// `effects(src, func)`: per-loop dependence checks (chase pattern,
    /// verdict, reasons, composed effect summary) for one function.
    pub fn effects(&self, src: &str, func: &str) -> QueryResult<Vec<LoopCheck>> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.effects,
            QueryKind::Effects,
            digest,
            &self.fp.effects(func),
            || match &*self.analyzed(src) {
                Ok(Analyzed(c)) => Ok(match c.analysis(func) {
                    Some(an) => adds_core::check_function(&c.tp, &c.summaries, an, func),
                    None => Vec::new(),
                }),
                Err(f) => Err(f.clone()),
            },
        )
        .0
    }

    /// `loop_verdict(src, func, index)`: the verdict for the `index`-th
    /// `while` loop of `func` in source order (`None` when out of range).
    pub fn loop_verdict(
        &self,
        src: &str,
        func: &str,
        index: usize,
    ) -> QueryResult<Option<LoopCheck>> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.verdicts,
            QueryKind::LoopVerdict,
            digest,
            &self.fp.loop_verdict(func, index),
            || match &*self.effects(src, func) {
                Ok(checks) => Ok(checks.get(index).cloned()),
                Err(f) => Err(f.clone()),
            },
        )
        .0
    }

    /// `transformed(src)`: strip-mine every licensed loop and prove the
    /// emitted source re-checks (the `parallelize` report section).
    pub fn transformed(&self, src: &str) -> QueryResult<TransformReport> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.transformed,
            QueryKind::Transformed,
            digest,
            &self.fp.transformed,
            || {
                let analyzed = self.analyzed(src);
                let Analyzed(c) = match &*analyzed {
                    Ok(a) => a,
                    Err(f) => return Err(f.clone()),
                };
                let (prog, decisions) = adds_core::transform::stripmine::strip_mine_program(
                    &c.tp,
                    &c.summaries,
                    &c.analyses,
                );
                let source = adds_lang::pretty::program(&prog);
                // The re-check of the emitted source is itself a typed
                // query — of the *transformed* bytes — so a later
                // `compiled`/`run` over that text starts warm.
                let reparses = self.typed(&source).is_ok();
                let mut parallelized = Vec::new();
                let mut skipped = Vec::new();
                for d in &decisions {
                    for p in &d.parallelized {
                        parallelized.push(TransformDecision {
                            func: d.func.name.clone(),
                            var: p.var.clone(),
                            field: p.field.clone(),
                        });
                    }
                    for s in &d.skipped {
                        skipped.push(SkippedLoop {
                            func: d.func.name.clone(),
                            line: line_col(src, s.span.start).line,
                            reasons: crate::report::dedup_reasons(
                                s.reasons.iter().map(ReasonEntry::of),
                            ),
                        });
                    }
                }
                Ok(TransformReport {
                    parallelized,
                    skipped,
                    source,
                    reparses,
                })
            },
        )
        .0
    }

    /// `compiled(src)`: the typed program lowered once to slot-resolved
    /// machine bytecode, shared by every simulation of the same bytes.
    pub fn compiled(&self, src: &str) -> QueryResult<CompiledProgram> {
        let digest = sha256(src.as_bytes());
        self.counted(
            &self.caches.compiled,
            QueryKind::Compiled,
            digest,
            &self.fp.compiled,
            || match &*self.typed(src) {
                Ok(tp) => Ok(CompiledProgram::compile(tp)),
                Err(f) => Err(f.clone()),
            },
        )
        .0
    }

    // ------------------------------------------------ request-level queries

    /// `run(src, opts)`: the §4 experiment — sequential vs strip-mined
    /// execution on the simulated machine at each PE count — built from
    /// the `typed`/`transformed`/`compiled` artifacts. Errors are cached
    /// too: the same bytes produce the same error. The canonical report
    /// (and its error strings) name the program by its content hash;
    /// callers restore their display name.
    pub fn run(
        &self,
        src: &str,
        opts: &RunOptions,
    ) -> (Digest, Arc<Result<RunReport, String>>, Outcome) {
        let digest = sha256(src.as_bytes());
        let fingerprint = self.fp.run_report(opts);
        let opts = opts.clone();
        let (result, outcome) = self.counted_tiered(
            &self.caches.runs,
            QueryKind::Run,
            digest,
            &fingerprint,
            crate::persist::decode_run,
            crate::persist::encode_run,
            || self.run_uncached(src, &digest.hex(), &opts),
        );
        (digest, result, outcome)
    }

    fn run_uncached(&self, src: &str, name: &str, opts: &RunOptions) -> Result<RunReport, String> {
        let tp_seq = self.typed(src);
        let tp_seq = match &*tp_seq {
            Ok(tp) => tp.clone(),
            Err(f) => return Err(format!("{name}: {}", f.rendered.join("\n"))),
        };
        if tp_seq.program.func("simulate").is_none() {
            return Err(format!(
                "{name}: `run` needs a Barnes-Hut-shaped program with a `simulate` \
                 procedure (try the built-in `barnes_hut`)"
            ));
        }
        let transformed = self.transformed(src);
        let transformed = match &*transformed {
            Ok(t) => t,
            Err(f) => return Err(format!("{name}: {}", f.rendered.join("\n"))),
        };
        let seq_prog = self.compiled(src);
        let seq_prog = match &*seq_prog {
            Ok(p) => p.clone(),
            Err(f) => return Err(format!("{name}: {}", f.rendered.join("\n"))),
        };
        let par_prog = self.compiled(&transformed.source);
        let par_prog = match &*par_prog {
            Ok(p) => p.clone(),
            Err(f) => {
                return Err(format!(
                    "{name}: transformed source fails to re-check: {}",
                    f.display
                ))
            }
        };

        let bodies = uniform_cloud(opts.bodies, CLOUD_SEED);
        let seq = adds_machine::run_barnes_hut_compiled(
            &seq_prog,
            &bodies,
            opts.steps,
            opts.theta,
            opts.dt,
            1,
            CostModel::sequent(),
            false,
        )
        .map_err(|e| format!("{name}: sequential run failed: {e:?}"))?;

        // Each PE count simulates independently; fan out and merge in
        // `opts.pes` order. Errors surface in index order, so the first
        // failing PE count reported matches the serial loop's.
        let runs: Vec<Result<ParRun, String>> = self.par_map(&opts.pes, |&pes| {
            let par = adds_machine::run_barnes_hut_compiled(
                &par_prog,
                &bodies,
                opts.steps,
                opts.theta,
                opts.dt,
                pes,
                CostModel::sequent(),
                true,
            )
            .map_err(|e| format!("{name}: parallel run at {pes} PEs failed: {e:?}"))?;
            let physics_matches = seq.bodies.iter().zip(&par.bodies).all(|(a, b)| {
                (0..3).all(|d| {
                    (a.pos[d] - b.pos[d]).abs() < 1e-9 && (a.vel[d] - b.vel[d]).abs() < 1e-9
                })
            });
            Ok(ParRun {
                pes,
                cycles: par.cycles,
                speedup: seq.cycles as f64 / par.cycles as f64,
                conflicts: par.conflict_count,
                parallel_rounds: par.parallel_rounds,
                physics_matches,
            })
        });
        let mut parallel = Vec::new();
        for run in runs {
            parallel.push(run?);
        }

        Ok(RunReport {
            program: name.to_string(),
            bodies: opts.bodies,
            steps: opts.steps,
            seq_cycles: seq.cycles,
            parallel,
        })
    }

    /// `report(src, stage, matrices)`: the rendered stage report, exactly
    /// as the CLI and `POST /v1/*` emit it. The canonical report carries
    /// the content hash as its display name (origin `"file"`); callers
    /// restore their own name/origin on the way out.
    pub fn stage_report(
        &self,
        src: &str,
        stage: Stage,
        matrices: bool,
    ) -> (Digest, Arc<ProgramReport>, Outcome) {
        let digest = sha256(src.as_bytes());
        let fingerprint = self.fp.stage_report(stage, matrices);
        let (report, outcome) = self.counted_tiered(
            &self.caches.reports,
            QueryKind::Report,
            digest,
            &fingerprint,
            crate::persist::decode_report,
            crate::persist::encode_report,
            || self.compose_report(src, &digest.hex(), stage, matrices),
        );
        (digest, report, outcome)
    }

    /// Look up an already-computed stage report by content hash, without
    /// computing (`GET /v1/report/{sha256}`). With a persistent tier, a
    /// RAM miss probes the store and promotes the decoded report into the
    /// in-memory cache — which is how a restarted server keeps serving
    /// reports it computed in a previous life.
    pub fn lookup_report(
        &self,
        digest: &Digest,
        stage: Stage,
        matrices: bool,
    ) -> Option<Arc<ProgramReport>> {
        let fingerprint = self.fp.stage_report(stage, matrices);
        if let Some(report) = self.caches.reports.peek(digest, &fingerprint) {
            return Some(report);
        }
        let store = self.caches.store.as_ref()?;
        let bytes = store.get(&digest.0, &fingerprint)?;
        let report = crate::persist::decode_report(&bytes)?;
        self.caches
            .report_stats
            .disk_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Promote; if a concurrent request is computing the same key we
        // coalesce onto its (byte-identical) value instead.
        let (report, _) = self
            .caches
            .reports
            .get_or_compute(*digest, &fingerprint, || report);
        Some(report)
    }

    fn compose_report(&self, src: &str, name: &str, stage: Stage, matrices: bool) -> ProgramReport {
        let mut report = ProgramReport {
            name: name.to_string(),
            origin: "file",
            ok: true,
            diagnostics: Vec::new(),
            parse: None,
            check: None,
            analyze: None,
            transform: None,
        };
        let failed =
            |f: &Failure| ProgramReport::failed(name.to_string(), "file", f.rendered.clone());
        match stage {
            Stage::Parse => match &*self.roundtrip(src) {
                Ok(p) => {
                    report.ok = p.roundtrip_stable;
                    report.parse = Some(p.clone());
                }
                Err(f) => return failed(f),
            },
            Stage::Check => match &*self.adds_decls(src) {
                Ok(c) => report.check = Some(c.clone()),
                Err(f) => return failed(f),
            },
            Stage::Analyze => {
                let analyzed = self.analyzed(src);
                let Analyzed(c) = match &*analyzed {
                    Ok(a) => a,
                    Err(f) => return failed(f),
                };
                // Per-function `effects` queries are independent (the
                // fingerprint graph says so); fan them out and merge in
                // program order — the serial output order.
                let per_func = self.par_map(&c.tp.program.funcs, |f| {
                    let an = c.analysis(&f.name)?;
                    let checks = self.effects(src, &f.name);
                    let checks = checks
                        .as_ref()
                        .as_ref()
                        .expect("analyzed ok implies effects ok");
                    let loops = checks
                        .iter()
                        .map(|c| LoopReport {
                            line: line_col(src, c.span.start).line,
                            pattern: c
                                .pattern
                                .as_ref()
                                .map(|p| format!("{} via {}", p.var, p.field)),
                            parallelizable: c.parallelizable,
                            reasons: crate::report::dedup_reasons(
                                c.reasons.iter().map(ReasonEntry::of),
                            ),
                            effects: c.effects.as_ref().map(|fx| {
                                let (writes, reads, ptr_writes, advances) =
                                    adds_core::depend::render_effects(fx);
                                LoopEffectsReport {
                                    writes,
                                    reads,
                                    ptr_writes,
                                    advances,
                                }
                            }),
                        })
                        .collect();
                    Some(FnReport {
                        name: f.name.clone(),
                        loops,
                        events: an.events.iter().map(|e| e.to_string()).collect(),
                        exit_valid: an.exit.fully_valid(),
                        exit_matrix: matrices
                            .then(|| an.exit.pm.render().lines().map(String::from).collect()),
                    })
                });
                let functions = per_func.into_iter().flatten().collect();
                report.analyze = Some(crate::report::AnalyzeReport { functions });
            }
            Stage::Parallelize => match &*self.transformed(src) {
                Ok(t) => {
                    report.ok = t.reparses;
                    report.transform = Some(t.clone());
                }
                Err(f) => return failed(f),
            },
        }
        report
    }
}

fn check_report(tp: &TypedProgram) -> CheckReport {
    let mut types = Vec::new();
    for t in tp.program.types.iter() {
        let Some(a) = tp.adds.get(&t.name) else {
            continue;
        };
        let mut routes = Vec::new();
        for f in &a.fields {
            if let AddsFieldKind::Pointer {
                target,
                array_len,
                route,
            } = &f.kind
            {
                let arr = array_len.map(|n| format!("[{n}]")).unwrap_or_default();
                let unique = if route.unique { "uniquely " } else { "" };
                let dir = match route.direction {
                    Direction::Forward => "forward",
                    Direction::Backward => "backward",
                    Direction::Unknown => "unknown-direction",
                };
                routes.push(format!(
                    "{}{arr}: {target}* {unique}{dir} along {}",
                    f.name, a.dims[route.dim]
                ));
            }
        }
        types.push(TypeSummary {
            name: a.name.clone(),
            dims: a.dims.clone(),
            routes,
        });
    }
    CheckReport {
        types,
        functions: tp.program.funcs.iter().map(|f| f.name.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;

    #[test]
    fn queries_layer_and_memoize() {
        let db = AnalysisDb::new();
        let src = programs::LIST_SCALE_ADDS;
        let digest = sha256(src.as_bytes());

        let typed = db.typed(src);
        assert!(typed.is_ok());
        assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
        assert_eq!(db.computes(QueryKind::Typed, &digest), 1);

        // A dependent query reuses the parse/typecheck.
        let analyzed = db.analyzed(src);
        assert!(analyzed.is_ok());
        assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
        assert_eq!(db.computes(QueryKind::Typed, &digest), 1);
        assert_eq!(db.computes(QueryKind::Analyzed, &digest), 1);

        // Repeats are hits.
        let again = db.typed(src);
        assert!(Arc::ptr_eq(&typed, &again));
    }

    #[test]
    fn loop_verdict_projects_effects() {
        let db = AnalysisDb::new();
        let src = programs::LIST_SCALE_ADDS;
        let v = db.loop_verdict(src, "scale", 0);
        let v = v.as_ref().as_ref().expect("checks");
        let check = v.as_ref().expect("loop 0 exists");
        assert!(check.parallelizable);
        let missing = db.loop_verdict(src, "scale", 9);
        assert!(missing.as_ref().as_ref().unwrap().is_none());
    }

    #[test]
    fn parse_errors_are_shared_failures() {
        let db = AnalysisDb::new();
        let src = "type T {";
        let digest = sha256(src.as_bytes());
        assert!(db.typed(src).is_err());
        assert!(db.analyzed(src).is_err());
        assert!(db.transformed(src).is_err());
        // One parse, every downstream layer shares the failure.
        assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
        let (_, report, _) = db.stage_report(src, Stage::Analyze, false);
        assert!(!report.ok);
        assert!(!report.diagnostics.is_empty());
    }

    #[test]
    fn computes_record_layer_durations() {
        let db = AnalysisDb::new();
        let src = programs::LIST_SCALE_ADDS;
        assert_eq!(db.layer_duration(QueryKind::Typed).count(), 0);
        let _ = db.typed(src);
        assert_eq!(db.layer_duration(QueryKind::Parsed).count(), 1);
        assert_eq!(db.layer_duration(QueryKind::Typed).count(), 1);
        // Hits don't re-record: the histogram tracks compute cost only.
        let _ = db.typed(src);
        assert_eq!(db.layer_duration(QueryKind::Typed).count(), 1);
    }

    #[test]
    fn bounded_compute_map_counts_dropped_entries() {
        let counters = ComputeCounters::default();
        for i in 0..MAX_TRACKED_DIGESTS {
            counters.bump(QueryKind::Parsed, sha256(&(i as u64).to_le_bytes()));
        }
        assert_eq!(counters.dropped(), 0);
        // One more distinct digest trips the reset and counts every
        // discarded entry.
        counters.bump(QueryKind::Parsed, sha256(b"one more"));
        assert_eq!(counters.dropped(), MAX_TRACKED_DIGESTS as u64);
        assert_eq!(counters.get(QueryKind::Parsed, &sha256(b"one more")), 1);
        // Totals stay exact across the reset.
        assert_eq!(
            counters.total(QueryKind::Parsed),
            MAX_TRACKED_DIGESTS as u64 + 1
        );
    }

    fn mem_store(io: &Arc<adds_store::FaultIo>) -> Arc<Store> {
        let io = Arc::clone(io) as Arc<dyn adds_store::StoreIo>;
        Arc::new(Store::open_with(io, adds_store::StoreOptions::default()).expect("open"))
    }

    #[test]
    fn store_tier_serves_reports_across_database_instances() {
        let io = Arc::new(adds_store::FaultIo::new());
        let db = AnalysisDb::with_store(0, 0, Some(mem_store(&io)));
        let src = programs::LIST_SCALE_ADDS;
        let digest = sha256(src.as_bytes());
        let (_, cold, o) = db.stage_report(src, Stage::Analyze, true);
        assert_eq!(o, Outcome::Miss);
        db.store().expect("store").commit().expect("commit");

        // A fresh database over the surviving bytes — the restart model.
        let io2 = Arc::new(io.surviving());
        let db2 = AnalysisDb::with_store(0, 0, Some(mem_store(&io2)));
        let (_, warm, o2) = db2.stage_report(src, Stage::Analyze, true);
        assert_eq!(o2, Outcome::Disk, "second life answers from disk");
        assert_eq!(cold.to_json().pretty(), warm.to_json().pretty());
        // No analysis work happened: the disk load is cache traffic.
        assert_eq!(db2.computes(QueryKind::Report, &digest), 0);
        assert_eq!(db2.computes(QueryKind::Parsed, &digest), 0);
        assert_eq!(db2.report_stats().get(&db2.report_stats().disk_hits), 1);
        // The disk hit promoted into RAM: the next request is a plain hit.
        let (_, _, o3) = db2.stage_report(src, Stage::Analyze, true);
        assert_eq!(o3, Outcome::Hit);

        // `lookup_report` (GET /v1/report/{sha}) promotes from disk too.
        let io3 = Arc::new(io.surviving());
        let db3 = AnalysisDb::with_store(0, 0, Some(mem_store(&io3)));
        let looked = db3
            .lookup_report(&digest, Stage::Analyze, true)
            .expect("on disk");
        assert_eq!(cold.to_json().pretty(), looked.to_json().pretty());
        assert!(db3.lookup_report(&digest, Stage::Check, false).is_none());
    }

    #[test]
    fn store_tier_serves_runs_across_database_instances() {
        let io = Arc::new(adds_store::FaultIo::new());
        let db = AnalysisDb::with_store(0, 0, Some(mem_store(&io)));
        let src = programs::BARNES_HUT;
        let opts = RunOptions {
            bodies: 16,
            steps: 1,
            pes: vec![2],
            ..RunOptions::default()
        };
        let (digest, cold, o) = db.run(src, &opts);
        assert_eq!(o, Outcome::Miss);
        db.store().expect("store").commit().expect("commit");

        let io2 = Arc::new(io.surviving());
        let db2 = AnalysisDb::with_store(0, 0, Some(mem_store(&io2)));
        let (_, warm, o2) = db2.run(src, &opts);
        assert_eq!(o2, Outcome::Disk);
        let (cold, warm) = (
            cold.as_ref().as_ref().unwrap(),
            warm.as_ref().as_ref().unwrap(),
        );
        assert_eq!(
            crate::runner::to_json(cold).pretty(),
            crate::runner::to_json(warm).pretty()
        );
        assert_eq!(db2.computes(QueryKind::Run, &digest), 0);
        assert_eq!(
            db2.computes(QueryKind::Compiled, &digest),
            0,
            "no simulation ran"
        );
    }

    #[test]
    fn evicted_report_is_a_disk_hit_not_a_recompute() {
        let io = Arc::new(adds_store::FaultIo::new());
        // Capacity 16 → one completed report per shard.
        let db = AnalysisDb::with_store(16, 0, Some(mem_store(&io)));
        let src = programs::LIST_SCALE_ADDS;
        let digest = sha256(src.as_bytes());
        // A second source whose digest lands in the same cache shard, so
        // computing its report evicts the first one.
        let rival = (0..)
            .map(|i| format!("{src}\n// shard probe {i}\n"))
            .find(|s| sha256(s.as_bytes()).0[0] % 16 == digest.0[0] % 16)
            .expect("a colliding pad exists");

        let (_, first, o1) = db.stage_report(src, Stage::Parse, false);
        assert_eq!(o1, Outcome::Miss);
        let (_, _, o2) = db.stage_report(&rival, Stage::Parse, false);
        assert_eq!(o2, Outcome::Miss);
        assert_eq!(
            db.report_stats().get(&db.report_stats().evicted),
            1,
            "the rival must evict the first report"
        );
        // Evicted from RAM — but the write-behind tier still has it (no
        // commit needed: pending entries are readable), so asking again
        // costs a disk load, not a recompute.
        let (_, again, o3) = db.stage_report(src, Stage::Parse, false);
        assert_eq!(o3, Outcome::Disk);
        assert_eq!(first.to_json().pretty(), again.to_json().pretty());
        assert_eq!(
            db.computes(QueryKind::Report, &digest),
            1,
            "never recomputed"
        );
    }

    #[test]
    fn run_reuses_compiled_artifacts() {
        let db = AnalysisDb::new();
        let src = programs::BARNES_HUT;
        let digest = sha256(src.as_bytes());
        let opts = RunOptions {
            bodies: 24,
            steps: 1,
            pes: vec![2],
            ..RunOptions::default()
        };
        let (_, result, o1) = db.run(src, &opts);
        assert_eq!(o1, Outcome::Miss);
        let report = result.as_ref().as_ref().expect("runs");
        assert_eq!(report.parallel.len(), 1);
        assert_eq!(report.parallel[0].conflicts, 0);
        assert!(report.parallel[0].physics_matches);
        assert_eq!(db.computes(QueryKind::Compiled, &digest), 1);
        // A second run with different PEs reuses every artifact.
        let opts2 = RunOptions {
            pes: vec![4],
            ..opts.clone()
        };
        let (_, _, o2) = db.run(src, &opts2);
        assert_eq!(o2, Outcome::Miss, "different fingerprint");
        assert_eq!(
            db.computes(QueryKind::Compiled, &digest),
            1,
            "bytecode reused"
        );
        assert_eq!(db.computes(QueryKind::Typed, &digest), 1);
        assert_eq!(db.computes(QueryKind::Transformed, &digest), 1);
    }
}
