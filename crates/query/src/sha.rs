//! A self-contained SHA-256 (FIPS 180-4), used as the content address of
//! cached analysis reports.
//!
//! The build environment is offline, so the workspace cannot pull a hash
//! crate; this is the textbook single-block-at-a-time implementation —
//! plenty for hashing request bodies, and pinned against the NIST test
//! vectors below.

/// A SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering (the form used in URLs and cache keys).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize]);
            s.push(HEX[(b & 0xf) as usize]);
        }
        s
    }

    /// Parse a 64-char lowercase/uppercase hex string.
    pub fn parse(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; 32];
        for (i, o) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *o = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

const HEX: [char; 16] = [
    '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a', 'b', 'c', 'd', 'e', 'f',
];

/// The SHA-256 round constants (first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Hash `data` in one call.
pub fn sha256(data: &[u8]) -> Digest {
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Process full 64-byte blocks, then the padded tail: 0x80, zeros, and
    // the bit length as a big-endian u64.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block.try_into().expect("exact chunk"));
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() < 56 { 1 } else { 2 };
    let end = tail_blocks * 64;
    tail[end - 8..end].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..tail_blocks {
        compress(
            &mut state,
            tail[i * 64..(i + 1) * 64].try_into().expect("block"),
        );
    }

    let mut out = [0u8; 32];
    for (i, w) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
    }
    Digest(out)
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_vectors() {
        // FIPS 180-4 / NIST CAVP examples.
        assert_eq!(
            sha256(b"").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's: exercises many blocks.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&million).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 56-byte padding split and the 64-byte block
        // size must all round-trip through the two-block tail path.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5au8; len];
            let d = sha256(&data);
            assert_eq!(d, sha256(&data), "deterministic at len {len}");
            assert_eq!(Digest::parse(&d.hex()), Some(d), "hex round trip {len}");
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Digest::parse("deadbeef").is_none());
        assert!(Digest::parse(&"g".repeat(64)).is_none());
    }
}
