//! Deterministic parallel fan-out for independent queries.
//!
//! The composed-fingerprint query graph ([`crate::fingerprint`]) makes
//! independence explicit: per-function `effects`, per-PE simulation runs,
//! and whole batch items share no mutable state beyond the single-flight
//! caches, which are already safe (and *useful* — concurrent duplicate
//! demands coalesce onto one compute). This module adds the missing
//! piece: an executor that fans such queries out over a bounded worker
//! budget while keeping every observable byte identical to the serial
//! run.
//!
//! Determinism is structural, not scheduled:
//!
//! * **canonical merge order** — [`ParCounters::map_ordered`] writes each
//!   result into the slot of its *input index* and reassembles in input
//!   order, so completion order (which varies run to run) never reaches
//!   the output;
//! * **pure items** — workers run the same memoized queries the serial
//!   path runs; the single-flight cache guarantees one compute per
//!   `(digest, fingerprint)` no matter how many workers demand it;
//! * **no adaptive scheduling in the answer** — work *placement* is
//!   round-robin by index and work *stealing* rebalances stragglers, but
//!   neither ever influences a result value, only wall-clock.
//!
//! Scheduling is per-worker deques with steal-from-the-back: worker *w*
//! owns the indices `w, w+jobs, w+2·jobs, …` and pops from the front;
//! an idle worker steals from the *back* of a neighbor's deque (classic
//! work-stealing shape — owner and thief touch opposite ends). Workers
//! are scoped threads from the `rayon` shim's `scope`, so a panicking
//! item propagates to the caller instead of deadlocking the fan-out.
//!
//! Nested fan-outs run inline: a worker that reaches another
//! `map_ordered` (a batch item whose report fans out per-function
//! `effects`, say) executes it sequentially on the spot. The worker
//! budget therefore bounds *threads*, not just top-level tasks, and the
//! fan-out hierarchy cannot explode multiplicatively.

use adds_obs::metrics::{Counter, Histogram};
use adds_obs::trace;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Set while this thread is executing items on behalf of a fan-out;
    /// nested fan-outs observe it and run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Resolve a `--jobs`-style knob: `0` means one worker per available
/// core, anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Executor counters, owned by the cache bank so `/v1/stats` per-server
/// numbers stay hermetic (no process-global state).
#[derive(Default)]
pub struct ParCounters {
    fanouts: Counter,
    inline_runs: Counter,
    tasks: Counter,
    steals: Counter,
    utilization: Histogram,
}

impl ParCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> ParCounters {
        ParCounters::default()
    }

    /// Fan-outs that actually went parallel.
    pub fn fanouts(&self) -> u64 {
        self.fanouts.get()
    }

    /// Fan-outs that ran inline (worker budget 1, ≤1 item, or nested
    /// inside another fan-out's worker).
    pub fn inline_runs(&self) -> u64 {
        self.inline_runs.get()
    }

    /// Items executed on fan-out workers (spawned tasks).
    pub fn tasks(&self) -> u64 {
        self.tasks.get()
    }

    /// Items a worker took from another worker's deque.
    pub fn steals(&self) -> u64 {
        self.steals.get()
    }

    /// Per-worker utilization samples: items a worker processed as a
    /// percentage of its fair share (`100` = exactly balanced, `>100` =
    /// the worker absorbed stragglers' work).
    pub fn utilization(&self) -> &Histogram {
        &self.utilization
    }

    /// Map `f` over `items` on up to `jobs` workers (0 = one per core)
    /// and return the results **in input order**.
    ///
    /// The only observable difference from `items.iter().map(f).collect()`
    /// is wall-clock: result order is canonical, and a panicking item
    /// propagates (workers join first — see the rayon shim's scope
    /// contract). Runs inline when the budget or the item count makes
    /// parallelism pointless, and when nested inside another fan-out.
    pub fn map_ordered<T, R, F>(&self, jobs: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let jobs = effective_jobs(jobs).min(n.max(1));
        if jobs <= 1 || n <= 1 || IN_WORKER.with(|w| w.get()) {
            self.inline_runs.inc();
            return items.iter().map(&f).collect();
        }
        self.fanouts.inc();
        self.tasks.add(n as u64);
        let mut fanout_span = trace::span("par.fanout", "par");
        if let Some(s) = fanout_span.as_mut() {
            s.arg("jobs", jobs.to_string());
            s.arg("items", n.to_string());
        }

        // Worker w owns indices w, w+jobs, w+2·jobs, … (front of its
        // deque); thieves take from the back.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
            .map(|w| Mutex::new((w..n).step_by(jobs).collect()))
            .collect();
        // One slot per input index: the canonical merge order is the
        // input order, never completion order.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let deques = &deques;
        let slots = &slots;
        let f = &f;
        rayon::scope(|scope| {
            for w in 0..jobs {
                scope.spawn(move |_| {
                    let _guard = WorkerGuard::enter();
                    let mut span = trace::span("par.worker", "par");
                    let mut processed = 0u64;
                    let mut stolen = 0u64;
                    loop {
                        let popped = deques[w].lock().expect("par deque").pop_front();
                        let idx = match popped {
                            Some(i) => i,
                            None => {
                                // Own deque drained: steal from the back
                                // of the nearest non-empty neighbor.
                                let steal = (1..jobs).find_map(|d| {
                                    deques[(w + d) % jobs].lock().expect("par deque").pop_back()
                                });
                                match steal {
                                    Some(i) => {
                                        stolen += 1;
                                        i
                                    }
                                    None => break,
                                }
                            }
                        };
                        let result = f(&items[idx]);
                        *slots[idx].lock().expect("par slot") = Some(result);
                        processed += 1;
                    }
                    self.steals.add(stolen);
                    self.utilization
                        .record(processed * jobs as u64 * 100 / n as u64);
                    if let Some(s) = span.as_mut() {
                        s.arg("worker", w.to_string());
                        s.arg("processed", processed.to_string());
                        s.arg("stolen", stolen.to_string());
                    }
                });
            }
        });

        let mut join_span = trace::span("par.join", "par");
        if let Some(s) = join_span.as_mut() {
            s.arg("items", n.to_string());
        }
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("par slot")
                    .take()
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }
}

/// RAII for the nested-fan-out flag — reset even if an item panics
/// through the worker.
struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> WorkerGuard {
        IN_WORKER.with(|w| w.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let par = ParCounters::new();
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par.map_ordered(jobs, &items, |&i| i * 10);
            assert_eq!(
                out,
                (0..97).map(|i| i * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_output_matches_serial_byte_for_byte() {
        let par = ParCounters::new();
        let items: Vec<u32> = (0..64).collect();
        let render = |&i: &u32| format!("item-{i:04}:{}", i.wrapping_mul(2654435761));
        let serial: Vec<String> = items.iter().map(render).collect();
        for jobs in [2, 4, 8] {
            assert_eq!(par.map_ordered(jobs, &items, render), serial);
        }
    }

    #[test]
    fn inline_paths_do_not_spawn() {
        let par = ParCounters::new();
        let one = par.map_ordered(8, &[42], |&x: &i32| x + 1);
        assert_eq!(one, vec![43]);
        let none: Vec<i32> = par.map_ordered(8, &[] as &[i32], |&x| x);
        assert!(none.is_empty());
        let serial = par.map_ordered(1, &[1, 2, 3], |&x: &i32| x * 2);
        assert_eq!(serial, vec![2, 4, 6]);
        assert_eq!(par.fanouts(), 0);
        assert_eq!(par.inline_runs(), 3);
        assert_eq!(par.tasks(), 0);
    }

    #[test]
    fn nested_fanouts_run_inline() {
        let par = ParCounters::new();
        let inner = ParCounters::new();
        let items: Vec<usize> = (0..4).collect();
        let out = par.map_ordered(4, &items, |&i| {
            // A fan-out reached from inside a worker runs sequentially:
            // the worker budget bounds threads globally.
            let sub: Vec<usize> = inner.map_ordered(4, &[i, i + 1], |&j| j * 2);
            sub.into_iter().sum::<usize>()
        });
        assert_eq!(out, vec![2, 6, 10, 14]);
        assert_eq!(par.fanouts(), 1);
        assert_eq!(inner.fanouts(), 0);
        assert_eq!(inner.inline_runs(), 4);
    }

    #[test]
    fn counters_account_for_every_item() {
        let par = ParCounters::new();
        let items: Vec<usize> = (0..50).collect();
        let _ = par.map_ordered(5, &items, |&i| i);
        assert_eq!(par.fanouts(), 1);
        assert_eq!(par.tasks(), 50);
        // Five workers each record one utilization sample.
        assert_eq!(par.utilization().count(), 5);
    }

    #[test]
    fn uneven_items_still_merge_canonically() {
        let par = ParCounters::new();
        let items: Vec<u64> = (0..33).collect();
        let out = par.map_ordered(4, &items, |&i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
            i + 100
        });
        assert_eq!(out, (100..133).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_item_propagates_after_join() {
        let par = ParCounters::new();
        let items: Vec<usize> = (0..16).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par.map_ordered(4, &items, |&i| {
                if i == 7 {
                    panic!("item 7 exploded");
                }
                i
            })
        }));
        assert!(outcome.is_err(), "panic must propagate out of the fan-out");
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
