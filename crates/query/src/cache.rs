//! The sharded, single-flight, content-addressed query cache.
//!
//! ## Key contract
//!
//! A cache entry is addressed by `(sha256(source bytes), query
//! fingerprint)`. The fingerprint (see [`crate::fingerprint`]) encodes
//! every input that can change the value besides the source itself — the
//! query's own schema version plus the fingerprints of the queries it
//! depends on, plus option flags (`+matrices`, the `run` parameters).
//! Cached values deliberately contain *no* other inputs: no timestamps, no
//! hostnames, no request identity — so the same bytes under the same
//! fingerprint are guaranteed a byte-identical value, and a cached answer
//! is indistinguishable from a recompute. Display fields (program name,
//! origin) are restored per request *after* retrieval; the cached
//! canonical value always carries the content hash as its name.
//!
//! ## Single flight
//!
//! Concurrent requests for the same key compute the value once: the first
//! requester inserts an in-flight marker and computes; everyone else
//! blocks on the flight's condvar and receives the winner's `Arc`. If the
//! computing thread panics, the flight is marked failed and waiters retry
//! (one of them becomes the new computer), so a poisoned entry cannot
//! wedge the cache.
//!
//! ## Bounded capacity (CLOCK eviction)
//!
//! A cache built with [`Cache::bounded`] holds at most ~`capacity`
//! completed entries (enforced per shard, so the bound is approximate for
//! small capacities). Eviction is second-chance CLOCK: every hit sets the
//! entry's reference bit; when a shard is full, a clock hand sweeps its
//! ring, clearing reference bits, and evicts the first unreferenced entry
//! it finds. In-flight entries are never evicted. [`Cache::new`] (capacity
//! 0) keeps the historical no-eviction behavior: the corpus of distinct
//! sources a server sees is bounded by its clients' program set, and an
//! entry is a few KB of rendered report. Either way `/v1/stats` exposes
//! the entry and eviction counts so an operator can watch it.

use crate::sha::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent shards; keys spread by the first digest byte.
const SHARDS: usize = 16;

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The value was already cached in memory.
    Hit,
    /// This request computed the value.
    Miss,
    /// Another in-flight request computed it; this one waited.
    Coalesced,
    /// The value was loaded from the persistent disk tier (and promoted
    /// into the in-memory cache) instead of being recomputed.
    Disk,
}

impl Outcome {
    /// Stable lowercase name (used in the `X-Adds-Cache` response header).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
            Outcome::Disk => "disk",
        }
    }
}

/// Monotonic cache counters, shared across caches of different value
/// types (the server aggregates its report and run caches into one set).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from a completed entry.
    pub hits: AtomicU64,
    /// Lookups that computed the value.
    pub misses: AtomicU64,
    /// Lookups that waited on another request's computation.
    pub coalesced: AtomicU64,
    /// Computations currently running.
    pub in_flight: AtomicU64,
    /// Completed entries evicted to stay under a capacity bound.
    pub evicted: AtomicU64,
    /// Lookups satisfied from the persistent disk tier (subset of what
    /// would otherwise have been misses).
    pub disk_hits: AtomicU64,
}

impl CacheStats {
    fn add(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// One in-flight computation: waiters sleep on `cv` until `state` leaves
/// `Running`.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Running,
    Done(Arc<V>),
    /// The computing thread panicked; waiters must retry.
    Failed,
}

enum Entry<V> {
    Ready {
        value: Arc<V>,
        /// CLOCK reference bit: set on every hit, cleared by the sweeping
        /// hand; an unreferenced entry is the next eviction victim.
        referenced: bool,
    },
    Pending(Arc<Flight<V>>),
}

type Key = (Digest, String);

/// One shard: the entry map plus its CLOCK ring. The ring is lazy — it
/// may hold keys whose entries were already removed (failed flights); the
/// sweep discards those when it meets them.
struct Shard<V> {
    map: HashMap<Key, Entry<V>>,
    ring: Vec<Key>,
    hand: usize,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
        }
    }
}

/// Observer invoked with `(digest, fingerprint, value)` as an entry is
/// evicted — the write-behind hook that lets a disk tier capture values
/// the CLOCK sweep would otherwise silently drop. Called with the shard
/// lock held: the hook must not call back into the same cache.
pub type EvictHook<V> = Arc<dyn Fn(&Digest, &str, &Arc<V>) + Send + Sync>;

/// Borrowed [`EvictHook`], as threaded into the eviction sweep.
type EvictHookRef<'a, V> = &'a (dyn Fn(&Digest, &str, &Arc<V>) + Send + Sync);

/// A sharded single-flight cache from `(content digest, fingerprint)` to
/// immutable values, optionally bounded with CLOCK eviction.
pub struct Cache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Completed-entry bound per shard; 0 = unbounded.
    shard_capacity: usize,
    stats: Arc<CacheStats>,
    on_evict: Option<EvictHook<V>>,
}

impl<V> Cache<V> {
    /// An unbounded cache recording into `stats`.
    pub fn new(stats: Arc<CacheStats>) -> Self {
        Cache::bounded(stats, 0)
    }

    /// A cache holding at most ~`capacity` entries (completed or in
    /// flight; 0 = unbounded). The bound is enforced per shard —
    /// `capacity` is split over 16 shards, rounding up — so small
    /// capacities are approximate, and a shard whose entries are all in
    /// flight may briefly overshoot (in-flight entries are never evicted).
    pub fn bounded(stats: Arc<CacheStats>, capacity: usize) -> Self {
        Cache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(SHARDS)
            },
            stats,
            on_evict: None,
        }
    }

    /// Install the eviction observer ([`EvictHook`]). Built separately
    /// from [`Cache::bounded`] so callers without a disk tier pay
    /// nothing; replaces any previous hook.
    pub fn set_evict_hook(&mut self, hook: EvictHook<V>) {
        self.on_evict = Some(hook);
    }

    fn shard(&self, digest: &Digest) -> &Mutex<Shard<V>> {
        &self.shards[digest.0[0] as usize % SHARDS]
    }

    /// Total entries across shards (completed + in flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// True when no entry has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Fetch the value for `(digest, fingerprint)`, computing it with `f`
    /// on a miss. Concurrent calls with the same key compute once; the
    /// others block until the winner finishes and share its `Arc`.
    pub fn get_or_compute(
        &self,
        digest: Digest,
        fingerprint: &str,
        f: impl FnOnce() -> V,
    ) -> (Arc<V>, Outcome) {
        let key: Key = (digest, fingerprint.to_string());
        loop {
            let flight = {
                let mut shard = self.shard(&digest).lock().expect("cache shard");
                match shard.map.get_mut(&key) {
                    Some(Entry::Ready { value, referenced }) => {
                        *referenced = true;
                        let value = Arc::clone(value);
                        self.stats.add(&self.stats.hits);
                        return (value, Outcome::Hit);
                    }
                    Some(Entry::Pending(fl)) => Some(Arc::clone(fl)),
                    None => {
                        if self.shard_capacity > 0 {
                            if shard.map.len() >= self.shard_capacity {
                                evict_one(&mut shard, &self.stats, self.on_evict.as_deref());
                            }
                            // The ring only feeds the eviction sweep; an
                            // unbounded cache skips it entirely rather
                            // than mirroring every key a second time.
                            shard.ring.push(key.clone());
                        }
                        let fl = Arc::new(Flight {
                            state: Mutex::new(FlightState::Running),
                            cv: Condvar::new(),
                        });
                        shard
                            .map
                            .insert(key.clone(), Entry::Pending(Arc::clone(&fl)));
                        self.stats.add(&self.stats.misses);
                        None
                    }
                }
            };

            if let Some(fl) = flight {
                // Wait out the other request's computation.
                let mut st = fl.state.lock().expect("flight state");
                while matches!(*st, FlightState::Running) {
                    st = fl.cv.wait(st).expect("flight wait");
                }
                match &*st {
                    FlightState::Done(v) => {
                        self.stats.add(&self.stats.coalesced);
                        return (Arc::clone(v), Outcome::Coalesced);
                    }
                    // The computer panicked: retry from the top (this
                    // request may become the new computer).
                    FlightState::Failed => continue,
                    FlightState::Running => unreachable!("loop exits on non-Running"),
                }
            }

            // This request computes. The guard publishes failure (and
            // removes the pending entry) if `f` panics, so waiters retry
            // instead of hanging.
            self.stats.add(&self.stats.in_flight);
            let guard = FlightGuard {
                cache: self,
                key: &key,
            };
            let value = Arc::new(f());
            self.finish(&key, FlightState::Done(Arc::clone(&value)), true);
            std::mem::forget(guard);
            self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            return (value, Outcome::Miss);
        }
    }

    /// Look up a completed entry without computing.
    pub fn peek(&self, digest: &Digest, fingerprint: &str) -> Option<Arc<V>> {
        let key: Key = (*digest, fingerprint.to_string());
        let mut shard = self.shard(digest).lock().expect("cache shard");
        match shard.map.get_mut(&key) {
            Some(Entry::Ready { value, referenced }) => {
                *referenced = true;
                Some(Arc::clone(value))
            }
            _ => None,
        }
    }

    /// Publish a flight's terminal state and wake waiters. With
    /// `keep: true` the entry becomes `Ready`; otherwise it is removed
    /// (failure path).
    fn finish(&self, key: &Key, terminal: FlightState<V>, keep: bool) {
        let mut shard = self.shard(&key.0).lock().expect("cache shard");
        let Some(Entry::Pending(fl)) = (if keep {
            match &terminal {
                FlightState::Done(v) => shard.map.insert(
                    key.clone(),
                    Entry::Ready {
                        value: Arc::clone(v),
                        referenced: false,
                    },
                ),
                _ => unreachable!("keep implies Done"),
            }
        } else {
            // The ring slot goes stale; the CLOCK sweep discards it.
            shard.map.remove(key)
        }) else {
            return;
        };
        drop(shard);
        let mut st = fl.state.lock().expect("flight state");
        *st = terminal;
        fl.cv.notify_all();
    }
}

/// Advance the CLOCK hand until an unreferenced completed entry falls
/// out. Referenced entries get their second chance (bit cleared);
/// in-flight entries are skipped; stale ring slots are discarded. If a
/// full sweep finds only in-flight entries, the shard temporarily
/// overshoots its bound rather than stalling the insert. The victim is
/// handed to `on_evict` before it disappears (write-behind hook).
fn evict_one<V>(shard: &mut Shard<V>, stats: &CacheStats, on_evict: Option<EvictHookRef<'_, V>>) {
    let mut steps = 0;
    let budget = 2 * shard.ring.len() + 2;
    while steps < budget && !shard.ring.is_empty() {
        steps += 1;
        if shard.hand >= shard.ring.len() {
            shard.hand = 0;
        }
        let key = shard.ring[shard.hand].clone();
        match shard.map.get_mut(&key) {
            None => {
                // Stale slot; drop it without advancing — the swapped-in
                // slot is examined next.
                shard.ring.swap_remove(shard.hand);
            }
            Some(Entry::Pending(_)) => shard.hand += 1,
            Some(Entry::Ready { referenced, .. }) if *referenced => {
                *referenced = false;
                shard.hand += 1;
            }
            Some(Entry::Ready { .. }) => {
                if let Some(Entry::Ready { value, .. }) = shard.map.remove(&key) {
                    if let Some(hook) = on_evict {
                        hook(&key.0, &key.1, &value);
                    }
                }
                shard.ring.swap_remove(shard.hand);
                stats.add(&stats.evicted);
                return;
            }
        }
    }
}

/// Removes a pending entry and fails its flight if the computing closure
/// unwinds; defused with `mem::forget` on success.
struct FlightGuard<'a, V> {
    cache: &'a Cache<V>,
    key: &'a Key,
}

impl<V> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        self.cache.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.cache.finish(self.key, FlightState::Failed, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha::sha256;

    fn cache() -> Cache<String> {
        Cache::new(Arc::new(CacheStats::default()))
    }

    /// A digest landing in shard 0 with a distinguishing tail byte.
    fn d(n: u8) -> Digest {
        let mut bytes = [0u8; 32];
        bytes[31] = n;
        Digest(bytes)
    }

    #[test]
    fn hit_after_miss_returns_same_arc() {
        let c = cache();
        let d = sha256(b"source");
        let (v1, o1) = c.get_or_compute(d, "analyze/v2", || "report".to_string());
        let (v2, o2) = c.get_or_compute(d, "analyze/v2", || unreachable!("cached"));
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(c.stats().get(&c.stats().hits), 1);
        assert_eq!(c.stats().get(&c.stats().misses), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fingerprint_separates_entries() {
        let c = cache();
        let d = sha256(b"source");
        c.get_or_compute(d, "analyze/v2", || "a".to_string());
        let (v, o) = c.get_or_compute(d, "parallelize/v2", || "p".to_string());
        assert_eq!(o, Outcome::Miss);
        assert_eq!(*v, "p");
        assert_eq!(c.len(), 2);
        assert!(c.peek(&d, "analyze/v2").is_some());
        assert!(c.peek(&d, "check/v1").is_none());
    }

    #[test]
    fn panicking_compute_does_not_wedge() {
        let c = cache();
        let d = sha256(b"source");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.get_or_compute(d, "analyze/v2", || -> String { panic!("boom") })
        }));
        assert!(r.is_err());
        assert_eq!(c.stats().get(&c.stats().in_flight), 0);
        // The key is free again and computable.
        let (v, o) = c.get_or_compute(d, "analyze/v2", || "ok".to_string());
        assert_eq!(o, Outcome::Miss);
        assert_eq!(*v, "ok");
    }

    #[test]
    fn bounded_cache_evicts_at_capacity() {
        // Capacity 16 → one completed entry per shard; all keys below land
        // in shard 0, so the shard bound is exactly 1.
        let c: Cache<u8> = Cache::bounded(Arc::new(CacheStats::default()), 16);
        c.get_or_compute(d(1), "q/v1", || 1);
        assert_eq!(c.len(), 1);
        c.get_or_compute(d(2), "q/v1", || 2);
        assert_eq!(c.len(), 1, "inserting at capacity evicts");
        assert_eq!(c.stats().get(&c.stats().evicted), 1);
        assert!(c.peek(&d(1), "q/v1").is_none(), "victim gone");
        assert!(c.peek(&d(2), "q/v1").is_some());
        // The evicted key is recomputable.
        let (v, o) = c.get_or_compute(d(1), "q/v1", || 11);
        assert_eq!((*v, o), (11, Outcome::Miss));
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        // Shard-0 capacity 2: insert a and b, touch a, insert c — the
        // sweep clears a's reference bit and evicts b (unreferenced).
        let c: Cache<u8> = Cache::bounded(Arc::new(CacheStats::default()), 32);
        c.get_or_compute(d(1), "q/v1", || 1);
        c.get_or_compute(d(2), "q/v1", || 2);
        c.get_or_compute(d(1), "q/v1", || unreachable!("hit"));
        c.get_or_compute(d(3), "q/v1", || 3);
        assert!(c.peek(&d(1), "q/v1").is_some(), "recently used survives");
        assert!(c.peek(&d(2), "q/v1").is_none(), "cold entry evicted");
        assert!(c.peek(&d(3), "q/v1").is_some());
        assert_eq!(c.stats().get(&c.stats().evicted), 1);
    }

    #[test]
    fn evict_hook_sees_the_victim_before_it_disappears() {
        let mut c: Cache<u8> = Cache::bounded(Arc::new(CacheStats::default()), 16);
        let seen: Arc<Mutex<Vec<(Digest, String, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        c.set_evict_hook(Arc::new(move |digest, fp, value| {
            sink.lock()
                .unwrap()
                .push((*digest, fp.to_string(), **value));
        }));
        c.get_or_compute(d(1), "q/v1", || 41);
        c.get_or_compute(d(2), "q/v1", || 42);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[(d(1), "q/v1".to_string(), 41)]);
    }

    #[test]
    fn capacity_zero_never_evicts() {
        let c: Cache<u8> = Cache::new(Arc::new(CacheStats::default()));
        for n in 0..200u32 {
            c.get_or_compute(sha256(&n.to_le_bytes()), "q/v1", || n as u8);
        }
        assert_eq!(c.len(), 200);
        assert_eq!(c.stats().get(&c.stats().evicted), 0);
    }
}
