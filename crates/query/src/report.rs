//! The CLI's report model: one [`ProgramReport`] per input program, with
//! sections filled in according to the subcommand, plus text and JSON
//! renderers. JSON output is byte-stable (fixed key order, no timestamps),
//! which the golden tests rely on.

use crate::json::{str_arr, Json};

/// Order-preserving dedup for verdict reasons: checkers can emit the same
/// reason once per offending statement, which reads as noise in reports.
pub fn dedup_reasons<T: PartialEq>(reasons: impl IntoIterator<Item = T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for r in reasons {
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}

/// One structured not-parallelizable reason: the stable machine-readable
/// code plus the human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ReasonEntry {
    /// Stable code, e.g. `not_uniquely_forward` (see `adds_core::depend::Reason`).
    pub code: String,
    /// Rendered message.
    pub message: String,
}

impl ReasonEntry {
    /// Build from a checker reason.
    pub fn of(r: &adds_core::Reason) -> ReasonEntry {
        ReasonEntry {
            code: r.code().to_string(),
            message: r.to_string(),
        }
    }
}

/// Report for one input program.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Corpus name or file path.
    pub name: String,
    /// `"builtin"` or `"file"`.
    pub origin: &'static str,
    /// Whole pipeline stage succeeded for this program.
    pub ok: bool,
    /// Rendered diagnostics (parse/type errors), empty when `ok`.
    pub diagnostics: Vec<String>,
    /// `parse` section.
    pub parse: Option<ParseReport>,
    /// `check` section.
    pub check: Option<CheckReport>,
    /// `analyze` section.
    pub analyze: Option<AnalyzeReport>,
    /// `parallelize` section.
    pub transform: Option<TransformReport>,
}

impl ProgramReport {
    /// A report that failed before producing any section.
    pub fn failed(name: String, origin: &'static str, diagnostics: Vec<String>) -> Self {
        ProgramReport {
            name,
            origin,
            ok: false,
            diagnostics,
            parse: None,
            check: None,
            analyze: None,
            transform: None,
        }
    }
}

/// `parse` output: the pretty-printed program and round-trip stability.
#[derive(Clone, Debug)]
pub struct ParseReport {
    /// Pretty-printed source.
    pub pretty: String,
    /// `parse(print(p))` prints identically.
    pub roundtrip_stable: bool,
}

/// `check` output: the resolved ADDS model summary.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Per record type: name, dimensions, and route descriptions.
    pub types: Vec<TypeSummary>,
    /// Function names in source order.
    pub functions: Vec<String>,
}

/// Resolved ADDS summary for one record type.
#[derive(Clone, Debug)]
pub struct TypeSummary {
    /// Record type name.
    pub name: String,
    /// Declared dimension names.
    pub dims: Vec<String>,
    /// Human-readable route per pointer field, e.g.
    /// `next: uniquely forward along X`.
    pub routes: Vec<String>,
}

/// `analyze` output.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// Per analyzed function, in source order.
    pub functions: Vec<FnReport>,
}

/// Analysis report for one function.
#[derive(Clone, Debug)]
pub struct FnReport {
    /// Function name.
    pub name: String,
    /// Per-loop dependence verdicts, in source order.
    pub loops: Vec<LoopReport>,
    /// Abstraction broken/repaired events, in analysis order.
    pub events: Vec<String>,
    /// No violation is active at function exit.
    pub exit_valid: bool,
    /// Rendered exit path matrix (only with `--matrices`).
    pub exit_matrix: Option<Vec<String>>,
}

/// Dependence verdict for one loop.
#[derive(Clone, Debug)]
pub struct LoopReport {
    /// 1-based source line of the loop head.
    pub line: u32,
    /// Recognized pointer-chase pattern, e.g. `p via next`.
    pub pattern: Option<String>,
    /// Strip-mining is licensed.
    pub parallelizable: bool,
    /// Structured reasons when not parallelizable.
    pub reasons: Vec<ReasonEntry>,
    /// The body's composed effect summary, when the pattern was recognized.
    pub effects: Option<LoopEffectsReport>,
}

/// Rendered per-loop effect summary (`core::effects`).
#[derive(Clone, Debug)]
pub struct LoopEffectsReport {
    /// Heap writes as access paths, e.g. `r[across*].data`.
    pub writes: Vec<String>,
    /// Heap reads as access paths.
    pub reads: Vec<String>,
    /// Pointer-field writes (shape mutations) as access paths.
    pub ptr_writes: Vec<String>,
    /// Summarized inner-cursor advance relations, e.g. `p via across`.
    pub advances: Vec<String>,
}

/// `parallelize` output.
#[derive(Clone, Debug)]
pub struct TransformReport {
    /// Loops transformed: `func: chase var via field`.
    pub parallelized: Vec<TransformDecision>,
    /// Loops left sequential, with reasons.
    pub skipped: Vec<SkippedLoop>,
    /// The transformed program, pretty-printed.
    pub source: String,
    /// The transformed source re-parses and re-typechecks.
    pub reparses: bool,
}

/// One applied transformation.
#[derive(Clone, Debug)]
pub struct TransformDecision {
    /// Enclosing function.
    pub func: String,
    /// Chased induction variable.
    pub var: String,
    /// Chased link field.
    pub field: String,
}

/// One loop the transformer declined.
#[derive(Clone, Debug)]
pub struct SkippedLoop {
    /// Enclosing function.
    pub func: String,
    /// 1-based source line of the loop head.
    pub line: u32,
    /// Why it stayed sequential.
    pub reasons: Vec<ReasonEntry>,
}

// ------------------------------------------------------------------- JSON

impl ProgramReport {
    /// The report as a JSON value (section presence follows the command).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("program".to_string(), Json::str(&self.name)),
            ("origin".to_string(), Json::str(self.origin)),
            ("ok".to_string(), Json::Bool(self.ok)),
            ("diagnostics".to_string(), str_arr(&self.diagnostics)),
        ];
        if let Some(p) = &self.parse {
            pairs.push((
                "parse".to_string(),
                Json::obj([
                    ("roundtrip_stable", Json::Bool(p.roundtrip_stable)),
                    ("pretty", Json::str(&p.pretty)),
                ]),
            ));
        }
        if let Some(c) = &self.check {
            pairs.push((
                "check".to_string(),
                Json::obj([
                    (
                        "types",
                        Json::Arr(
                            c.types
                                .iter()
                                .map(|t| {
                                    Json::obj([
                                        ("name", Json::str(&t.name)),
                                        ("dims", str_arr(&t.dims)),
                                        ("routes", str_arr(&t.routes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("functions", str_arr(&c.functions)),
                ]),
            ));
        }
        if let Some(a) = &self.analyze {
            pairs.push((
                "analyze".to_string(),
                Json::obj([(
                    "functions",
                    Json::Arr(a.functions.iter().map(FnReport::to_json).collect()),
                )]),
            ));
        }
        if let Some(t) = &self.transform {
            pairs.push((
                "parallelize".to_string(),
                Json::obj([
                    (
                        "parallelized",
                        Json::Arr(
                            t.parallelized
                                .iter()
                                .map(|d| {
                                    Json::obj([
                                        ("function", Json::str(&d.func)),
                                        ("var", Json::str(&d.var)),
                                        ("field", Json::str(&d.field)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "skipped",
                        Json::Arr(
                            t.skipped
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("function", Json::str(&s.func)),
                                        ("line", Json::Int(s.line as i64)),
                                        ("reasons", reasons_json(&s.reasons)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("reparses", Json::Bool(t.reparses)),
                    ("source", Json::str(&t.source)),
                ]),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Reasons as an array of `{code, message}` objects.
fn reasons_json(reasons: &[ReasonEntry]) -> Json {
    Json::Arr(
        reasons
            .iter()
            .map(|r| {
                Json::obj([
                    ("code", Json::str(&r.code)),
                    ("message", Json::str(&r.message)),
                ])
            })
            .collect(),
    )
}

impl FnReport {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::str(&self.name)),
            (
                "loops".to_string(),
                Json::Arr(
                    self.loops
                        .iter()
                        .map(|l| {
                            let mut fields = vec![
                                ("line".to_string(), Json::Int(l.line as i64)),
                                (
                                    "pattern".to_string(),
                                    l.pattern.as_deref().map(Json::str).unwrap_or(Json::Null),
                                ),
                                ("parallelizable".to_string(), Json::Bool(l.parallelizable)),
                                ("reasons".to_string(), reasons_json(&l.reasons)),
                            ];
                            if let Some(fx) = &l.effects {
                                fields.push((
                                    "effects".to_string(),
                                    Json::obj([
                                        ("writes", str_arr(&fx.writes)),
                                        ("reads", str_arr(&fx.reads)),
                                        ("ptr_writes", str_arr(&fx.ptr_writes)),
                                        ("advances", str_arr(&fx.advances)),
                                    ]),
                                ));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
            ("events".to_string(), str_arr(&self.events)),
            ("exit_valid".to_string(), Json::Bool(self.exit_valid)),
        ];
        if let Some(m) = &self.exit_matrix {
            pairs.push(("exit_matrix".to_string(), str_arr(m)));
        }
        Json::Obj(pairs)
    }
}

// ------------------------------------------------------------------- text

impl ProgramReport {
    /// Render for humans.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} ({})\n", self.name, self.origin);
        if !self.ok {
            out.push_str("  FAILED\n");
            for d in &self.diagnostics {
                for line in d.lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
            return out;
        }
        if let Some(p) = &self.parse {
            out.push_str(&format!(
                "  roundtrip: {}\n",
                if p.roundtrip_stable {
                    "stable"
                } else {
                    "UNSTABLE"
                }
            ));
            out.push_str(&p.pretty);
            if !p.pretty.ends_with('\n') {
                out.push('\n');
            }
        }
        if let Some(c) = &self.check {
            for t in &c.types {
                out.push_str(&format!("  type {} [{}]\n", t.name, t.dims.join("][")));
                for r in &t.routes {
                    out.push_str(&format!("    {r}\n"));
                }
            }
            if !c.functions.is_empty() {
                out.push_str(&format!("  functions: {}\n", c.functions.join(", ")));
            }
            out.push_str("  check: ok\n");
        }
        if let Some(a) = &self.analyze {
            for f in &a.functions {
                out.push_str(&format!("  function {}\n", f.name));
                if f.loops.is_empty() {
                    out.push_str("    (no loops)\n");
                }
                for l in &f.loops {
                    let verdict = if l.parallelizable {
                        "PARALLELIZABLE".to_string()
                    } else {
                        let msgs: Vec<&str> =
                            l.reasons.iter().map(|r| r.message.as_str()).collect();
                        format!("sequential ({})", msgs.join("; "))
                    };
                    let pattern = l
                        .pattern
                        .as_deref()
                        .map(|p| format!("chase {p} — "))
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "    loop at line {}: {pattern}{verdict}\n",
                        l.line
                    ));
                    if let Some(fx) = &l.effects {
                        if !fx.writes.is_empty() || !fx.advances.is_empty() {
                            out.push_str(&format!(
                                "      effects: writes [{}]{}\n",
                                fx.writes.join(", "),
                                if fx.advances.is_empty() {
                                    String::new()
                                } else {
                                    format!("  inner advances [{}]", fx.advances.join(", "))
                                }
                            ));
                        }
                    }
                }
                for e in &f.events {
                    out.push_str(&format!("    event: {e}\n"));
                }
                if !f.exit_valid {
                    out.push_str("    exit: abstraction NOT valid\n");
                }
                if let Some(m) = &f.exit_matrix {
                    for line in m {
                        out.push_str(&format!("    | {line}\n"));
                    }
                }
            }
        }
        if let Some(t) = &self.transform {
            for d in &t.parallelized {
                out.push_str(&format!(
                    "  parallelized {}: chase {} via {}\n",
                    d.func, d.var, d.field
                ));
            }
            for s in &t.skipped {
                let msgs: Vec<&str> = s.reasons.iter().map(|r| r.message.as_str()).collect();
                out.push_str(&format!(
                    "  sequential {} loop at line {}: {}\n",
                    s.func,
                    s.line,
                    msgs.join("; ")
                ));
            }
            out.push_str(&format!(
                "  transformed source re-parses: {}\n",
                if t.reparses { "yes" } else { "NO" }
            ));
            out.push_str(&t.source);
            if !t.source.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}
