//! Minimal JSON document model and serializer.
//!
//! The workspace has no network access to pull `serde`/`serde_json`, and the
//! CLI's reports are write-only, so this hand-rolled emitter is all that is
//! needed. Object keys keep insertion order, making the output byte-stable —
//! the property the golden tests rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a fraction).
    Int(i64),
    /// Unsigned integer (cycles counters exceed `i64` comfort zone).
    UInt(u64),
    /// Float (emitted via shortest-roundtrip `{}` formatting).
    Float(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto one line with no trailing newline (access-log
    /// lines, headers).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut s = format!("{f}");
                    // `{}` prints integral floats without a point; keep the
                    // value unambiguously a float.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: a JSON array of strings.
pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
    Json::Arr(items.into_iter().map(|s| Json::str(s.as_ref())).collect())
}

// ---------------------------------------------------------------- reading

impl Json {
    /// Parse a JSON document (the `POST /v1/batch` request body). Strict
    /// enough for the API surface: full value grammar, string escapes
    /// (incl. `\uXXXX` with surrogate pairs), no trailing garbage.
    /// Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a non-negative integer (accepts integral floats).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as usize),
            Json::UInt(u) => usize::try_from(*u).ok(),
            Json::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as usize),
            _ => None,
        }
    }
}

/// Deepest accepted container nesting: the parser is recursive descent,
/// so unbounded depth would let a small hostile body (`[[[[…`) overflow
/// the worker-thread stack — and a stack overflow aborts the process, not
/// the request.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        let v = f(self)?;
        self.depth -= 1;
        Ok(v)
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the next escape must be a
                                // valid low half, or the whole escape is
                                // rejected (never combined unchecked —
                                // `\ud800\ud800` would overflow).
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("bad \\u escape before byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape.
                    // Both delimiters are ASCII, so they cannot split a
                    // multi-byte scalar, and the run is valid UTF-8 (the
                    // input is a &str) — one O(run) copy instead of a
                    // per-character re-validation of the whole tail.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Json::obj([
            ("name", Json::str("say \"hi\"\nthere")),
            ("n", Json::Int(-3)),
            ("f", Json::Float(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"say \\\"hi\\\"\\nthere\""));
        assert!(s.contains("\"f\": 2.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integral_floats_keep_a_point() {
        let s = Json::Float(3.0).pretty();
        assert_eq!(s, "3.0\n");
    }

    #[test]
    fn parses_what_it_prints() {
        let v = Json::obj([
            ("name", Json::str("say \"hi\"\nthere")),
            ("n", Json::Int(-3)),
            ("f", Json::Float(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let back = Json::parse(&v.pretty()).expect("round trips");
        assert_eq!(back, v);
        assert_eq!(back.get("n").and_then(Json::as_usize), None, "negative");
        assert_eq!(back.get("arr").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            back.get("name").unwrap().as_str().unwrap().lines().count(),
            2
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        // Lone/invalid surrogate halves are errors, not panics.
        assert!(Json::parse("\"\\ud800\\ud800\"").is_err());
        assert!(Json::parse("\"\\ud800\\u0041\"").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err(), "lone low half");
        // Hostile nesting is an error, not a stack overflow.
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
        let ok_depth = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok_depth).is_ok());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"s": "aAé😀", "f": 1.5e2, "i": 42}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aAé😀");
        assert_eq!(v.get("f").unwrap().as_f64(), Some(150.0));
        assert_eq!(v.get("i").unwrap().as_usize(), Some(42));
        let v = Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(
            v.as_str().unwrap(),
            "A😀",
            "\\u escapes incl. surrogate pair"
        );
    }
}
