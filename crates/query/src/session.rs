//! The **analysis session**: one typed, demand-driven front door shared
//! by the CLI, the HTTP server, and library consumers. A [`Session`]
//! wraps an [`AnalysisDb`] and answers typed requests
//! ([`StageRequest`], [`RunRequest`]) with shared, memoized responses
//! ([`StageOutcome`], [`RunOutcome`]) — a warm `parallelize` after an
//! `analyze` of the same bytes reuses the parse, typecheck, and analysis
//! artifacts instead of recomputing them.
//!
//! ```
//! use adds_query::session::{Session, StageRequest, Stage};
//!
//! let session = Session::new();
//! let src = adds_lang::programs::LIST_SCALE_ADDS;
//! let analyzed = session.stage(src, StageRequest::new(Stage::Analyze));
//! assert!(analyzed.report.ok);
//! // Same bytes again: answered from cache, same Arc.
//! let again = session.stage(src, StageRequest::new(Stage::Analyze));
//! assert_eq!(again.outcome.name(), "hit");
//! ```

use crate::cache::{CacheStats, Outcome};
use crate::db::{AnalysisDb, QueryKind};
use crate::fingerprint::Versions;
use crate::json::Json;
use crate::report::ProgramReport;
use crate::runner::{self, RunOptions, RunReport};
use crate::sha::Digest;
use std::sync::Arc;

/// A report-producing pipeline stage, as named in CLI commands and URL
/// paths. Dispatch goes through the typed [`StageRequest`]; this enum is
/// the stable *name* of the stage on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Parse and pretty-print, verifying the print→parse round trip.
    Parse,
    /// ADDS well-formedness + type check.
    Check,
    /// Path-matrix analysis with per-loop dependence verdicts.
    Analyze,
    /// Strip-mine parallelizable loops and emit transformed source.
    Parallelize,
}

impl Stage {
    /// The stage's lowercase name, as used in CLI commands and URL paths.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Check => "check",
            Stage::Analyze => "analyze",
            Stage::Parallelize => "parallelize",
        }
    }

    /// The JSON `schema` tag of the stage's report document.
    pub fn schema(self) -> &'static str {
        match self {
            Stage::Parse => "adds.parse/v1",
            Stage::Check => "adds.check/v1",
            Stage::Analyze => "adds.analyze/v2",
            Stage::Parallelize => "adds.parallelize/v2",
        }
    }

    /// Parse a stage name (`analyze`, …) as appearing in URLs and CLI
    /// arguments.
    pub fn parse_name(name: &str) -> Option<Stage> {
        Some(match name {
            "parse" => Stage::Parse,
            "check" => Stage::Check,
            "analyze" => Stage::Analyze,
            "parallelize" => Stage::Parallelize,
            _ => None?,
        })
    }
}

/// A typed stage request: which derived document, under which options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageRequest {
    /// The requested stage.
    pub stage: Stage,
    /// Include per-function exit path matrices (analyze only).
    pub matrices: bool,
}

impl StageRequest {
    /// A plain request for `stage`.
    pub fn new(stage: Stage) -> StageRequest {
        StageRequest {
            stage,
            matrices: false,
        }
    }

    /// Request `stage` with the `--matrices` option.
    pub fn with_matrices(stage: Stage, matrices: bool) -> StageRequest {
        StageRequest { stage, matrices }
    }
}

/// A typed run request (the §4 simulation experiment).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRequest {
    /// Simulation parameters.
    pub opts: RunOptions,
}

/// The answer to a [`StageRequest`]: the content address, the shared
/// canonical report (named by its hash; clone-and-rename for display),
/// and how the cache satisfied the request.
#[derive(Clone)]
pub struct StageOutcome {
    /// sha256 of the request's source bytes.
    pub digest: Digest,
    /// The canonical report (name = content hash, origin `"file"`).
    pub report: Arc<ProgramReport>,
    /// Hit / miss / coalesced.
    pub outcome: Outcome,
}

impl StageOutcome {
    /// The report cloned with the caller's display name and origin.
    pub fn named(&self, name: &str, origin: &'static str) -> ProgramReport {
        let mut r = (*self.report).clone();
        r.name = name.to_string();
        r.origin = origin;
        r
    }
}

/// The answer to a [`RunRequest`].
#[derive(Clone)]
pub struct RunOutcome {
    /// sha256 of the request's source bytes.
    pub digest: Digest,
    /// The canonical run report or error (program named by content hash).
    pub result: Arc<Result<RunReport, String>>,
    /// Hit / miss / coalesced.
    pub outcome: Outcome,
}

/// Session construction knobs.
#[derive(Clone, Debug, Default)]
pub struct SessionConfig {
    /// Per-cache entry bound (0 = unbounded), evicting CLOCK-style.
    pub cache_capacity: usize,
    /// Fingerprint version table override (None = the live defaults).
    pub versions: Option<Versions>,
    /// Parallel fan-out worker budget (0 = one per core, 1 = serial).
    /// Only affects wall-clock — every report is byte-identical at every
    /// value, which the determinism tests pin.
    pub jobs: usize,
    /// Optional persistent second tier under the report/run caches: a
    /// miss probes it before recomputing, computes write behind into it,
    /// and a restart over the same directory serves warm, byte-identical
    /// answers. The frontend owns commit scheduling (see
    /// [`adds_store::Store::commit`]).
    pub store: Option<Arc<adds_store::Store>>,
}

/// One demand-driven analysis session over a shared [`AnalysisDb`].
/// Thread-safe and cheap to clone (clones share the database).
#[derive(Clone, Default)]
pub struct Session {
    db: AnalysisDb,
}

impl Session {
    /// An unbounded session under the live fingerprint versions.
    pub fn new() -> Session {
        Session {
            db: AnalysisDb::new(),
        }
    }

    /// A session with explicit capacity / fingerprint / parallelism
    /// configuration.
    pub fn with_config(config: &SessionConfig) -> Session {
        let db = AnalysisDb::with_store(config.cache_capacity, config.jobs, config.store.clone());
        let db = match &config.versions {
            Some(v) => db.fork_with_versions(v),
            None => db,
        };
        Session { db }
    }

    /// A session with an explicit fan-out worker budget (0 = one per
    /// core, 1 = serial) and default caches/fingerprints.
    pub fn with_jobs(jobs: usize) -> Session {
        Session::with_config(&SessionConfig {
            jobs,
            ..SessionConfig::default()
        })
    }

    /// The underlying query database (artifact-level queries:
    /// `parsed`, `typed`, `effects`, `loop_verdict`, `compiled`, …).
    pub fn db(&self) -> &AnalysisDb {
        &self.db
    }

    /// Answer a typed stage request.
    pub fn stage(&self, source: &str, req: StageRequest) -> StageOutcome {
        let (digest, report, outcome) = self.db.stage_report(source, req.stage, req.matrices);
        StageOutcome {
            digest,
            report,
            outcome,
        }
    }

    /// `parse` convenience.
    pub fn parse(&self, source: &str) -> StageOutcome {
        self.stage(source, StageRequest::new(Stage::Parse))
    }

    /// `check` convenience.
    pub fn check(&self, source: &str) -> StageOutcome {
        self.stage(source, StageRequest::new(Stage::Check))
    }

    /// `analyze` convenience.
    pub fn analyze(&self, source: &str, matrices: bool) -> StageOutcome {
        self.stage(
            source,
            StageRequest::with_matrices(Stage::Analyze, matrices),
        )
    }

    /// `parallelize` convenience.
    pub fn parallelize(&self, source: &str) -> StageOutcome {
        self.stage(source, StageRequest::new(Stage::Parallelize))
    }

    /// Answer a run request. Errors (e.g. a program without a `simulate`
    /// entry) are cached too: the same bytes produce the same error.
    pub fn run(&self, source: &str, req: &RunRequest) -> RunOutcome {
        let (digest, result, outcome) = self.db.run(source, &req.opts);
        RunOutcome {
            digest,
            result,
            outcome,
        }
    }

    /// Look up an already-computed stage report by content hash, without
    /// computing (`GET /v1/report/{sha256}`).
    pub fn lookup(&self, digest: &Digest, req: StageRequest) -> Option<Arc<ProgramReport>> {
        self.db.lookup_report(digest, req.stage, req.matrices)
    }

    /// Request-level cache counters (reports + runs) — what `/v1/stats`
    /// has always surfaced as `cache`.
    pub fn stats(&self) -> &Arc<CacheStats> {
        self.db.report_stats()
    }

    /// Artifact-level cache counters (parse … compile queries).
    pub fn query_stats(&self) -> &Arc<CacheStats> {
        self.db.artifact_stats()
    }

    /// Parallel-executor counters (fan-outs, tasks, steals, worker
    /// utilization) — the `parallel` section of `/v1/stats`.
    pub fn par_stats(&self) -> &crate::par::ParCounters {
        self.db.par()
    }

    /// The session's fan-out worker budget (0 = one per core).
    pub fn jobs(&self) -> usize {
        self.db.jobs()
    }

    /// Map `f` over `items` on the session's worker budget, results in
    /// input order. Batch frontends use this to execute whole items
    /// concurrently through the shared database; determinism is the
    /// executor's contract (canonical merge order, single-flight
    /// coalescing underneath).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.db.par_map(items, f)
    }

    /// Completed entries across the request-level caches.
    pub fn entries(&self) -> usize {
        self.db.report_entries()
    }

    /// The full response document for a stage request: the CLI's
    /// `{schema, ok, programs}` wrapper around the canonical report with
    /// the caller's display name restored. With `name = <digest hex>` and
    /// origin `"file"` this is byte-identical to
    /// `adds-cli <stage> <file> --format json`. The report is only cloned
    /// when a rename is actually requested — the default (canonical-name)
    /// path is a pure render, keeping warm cache hits cheap.
    pub fn stage_doc(stage: Stage, report: &ProgramReport, name: Option<&str>) -> Json {
        let program = match name {
            Some(n) if n != report.name => {
                let mut r = report.clone();
                r.name = n.to_string();
                r.to_json()
            }
            _ => report.to_json(),
        };
        Json::obj([
            ("schema", Json::str(stage.schema())),
            ("ok", Json::Bool(report.ok)),
            ("programs", Json::Arr(vec![program])),
        ])
    }

    /// The full response document for a `run` request, with the caller's
    /// display name restored (clones only when renaming).
    pub fn run_doc(report: &RunReport, name: Option<&str>) -> Json {
        match name {
            Some(n) if n != report.program => {
                let mut r = report.clone();
                r.program = n.to_string();
                runner::to_json(&r)
            }
            _ => runner::to_json(report),
        }
    }

    /// Total computes per query kind, for `/v1/stats`.
    pub fn query_computes(&self) -> Vec<(&'static str, u64)> {
        QueryKind::ALL
            .iter()
            .map(|&k| (k.name(), self.db.total_computes(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;

    #[test]
    fn repeated_stage_request_hits_cache() {
        let session = Session::new();
        let src = programs::LIST_SCALE_ADDS;
        let r1 = session.analyze(src, false);
        let r2 = session.analyze(src, false);
        assert_eq!(r1.digest, r2.digest);
        assert_eq!(r1.outcome, Outcome::Miss);
        assert_eq!(r2.outcome, Outcome::Hit);
        assert!(Arc::ptr_eq(&r1.report, &r2.report));
        assert_eq!(session.entries(), 1);
        assert!(session
            .lookup(&r1.digest, StageRequest::new(Stage::Analyze))
            .is_some());
        assert!(session
            .lookup(&r1.digest, StageRequest::new(Stage::Parallelize))
            .is_none());
    }

    #[test]
    fn canonical_report_is_named_by_content_hash() {
        let session = Session::new();
        let src = programs::LIST_SUM;
        let out = session.check(src);
        assert_eq!(out.report.name, out.digest.hex());
        assert_eq!(out.report.origin, "file");
        // Renaming through the doc wrapper restores the caller's view.
        let doc = Session::stage_doc(Stage::Check, &out.report, Some("lists/sum.il")).pretty();
        assert!(doc.contains("\"program\": \"lists/sum.il\""));
        assert!(doc.contains("\"schema\": \"adds.check/v1\""));
    }

    #[test]
    fn run_errors_are_cached() {
        let session = Session::new();
        let src = programs::LIST_SUM; // no `simulate` entry
        let r1 = session.run(src, &RunRequest::default());
        let r2 = session.run(src, &RunRequest::default());
        assert!(r1.result.is_err());
        assert_eq!(r1.outcome, Outcome::Miss);
        assert_eq!(r2.outcome, Outcome::Hit);
        assert!(Arc::ptr_eq(&r1.result, &r2.result));
    }

    #[test]
    fn matrices_flag_separates_report_entries() {
        let session = Session::new();
        let src = programs::LIST_SCALE_ADDS;
        let plain = session.analyze(src, false);
        let with = session.analyze(src, true);
        assert_eq!(with.outcome, Outcome::Miss, "distinct fingerprint");
        let a = with.report.analyze.as_ref().unwrap();
        assert!(a.functions[0].exit_matrix.is_some());
        let a = plain.report.analyze.as_ref().unwrap();
        assert!(a.functions[0].exit_matrix.is_none());
    }
}
