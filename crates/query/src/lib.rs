//! # adds-query — the ADDS pipeline as a demand-driven session
//!
//! The paper's pipeline is inherently layered — parse → typecheck → ADDS
//! declarations → effect summaries → per-loop verdicts → transform →
//! machine compile → run — and this crate exposes it that way: as a
//! memoized **query database** plus a typed **session** front door shared
//! by the CLI (`adds-cli`), the HTTP server (`adds-serve`), and library
//! consumers (`adds::api`).
//!
//! * [`db`] — [`db::AnalysisDb`]: each pipeline layer is a derived query
//!   (`parsed`, `typed`, `adds_decls`, `effects`, `loop_verdict`,
//!   `transformed`, `compiled`, `run`, plus the rendered stage reports),
//!   individually memoized under the `(sha256(source), fingerprint)`
//!   contract. Dependent queries pull their inputs from upstream queries,
//!   so a warm `parallelize` after an `analyze` re-parses nothing.
//! * [`fingerprint`] — the composed fingerprint contract: every query's
//!   key embeds its own `layer/version` token plus the fingerprints of
//!   its dependencies, so schema bumps self-invalidate per layer.
//! * [`session`] — [`session::Session`] with typed request/response
//!   structs ([`session::StageRequest`], [`session::RunRequest`]), the
//!   document renderers, and the cache/compute counters.
//! * [`cache`] — the sharded, single-flight, optionally bounded
//!   (CLOCK-evicting) content-hash cache underneath every query.
//! * [`persist`] — the exact binary codec that carries request-level
//!   cache values (stage reports, run results) to and from the optional
//!   disk tier (`adds-store`) without perturbing a single output byte.
//! * [`par`] — the deterministic parallel executor: fans independent
//!   queries (per-function `effects`, per-PE runs, batch items) over a
//!   bounded worker budget, merging results in canonical input order so
//!   parallelism never changes a single output byte.
//! * [`report`] / [`json`] / [`runner`] — the byte-stable report model
//!   shared verbatim by the CLI and the server (plus a small JSON reader
//!   for batch requests).
//! * [`sha`] — the self-contained SHA-256 content address.

#![warn(missing_docs)]

pub mod cache;
pub mod db;
pub mod fingerprint;
pub mod json;
pub mod par;
pub mod persist;
pub mod report;
pub mod runner;
pub mod session;
pub mod sha;

pub use db::{AnalysisDb, QueryKind};
pub use session::{
    RunOutcome, RunRequest, Session, SessionConfig, Stage, StageOutcome, StageRequest,
};
