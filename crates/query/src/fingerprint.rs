//! The **query-fingerprint contract**: every memoized query is addressed
//! by `(sha256(source), fingerprint)`, and a query's fingerprint embeds
//! its own `layer/version` token *plus the full fingerprints of the
//! queries it depends on*. Bumping one layer's version therefore rewrites
//! the keys of that layer and everything downstream of it — upstream
//! entries stay valid — so schema changes self-invalidate per layer
//! instead of flushing the whole cache.
//!
//! | query | fingerprint |
//! |---|---|
//! | `parsed` | `parsed/v1` |
//! | `roundtrip` | `roundtrip/v1(parsed/v1)` |
//! | `typed` | `typed/v1(parsed/v1)` |
//! | `adds_decls` | `adds-decls/v1(typed/v1(parsed/v1))` |
//! | `analyzed` | `analyzed/v1(typed/v1(parsed/v1))` |
//! | `effects(fn)` | `effects/v1(analyzed/…)#fn=NAME` |
//! | `loop_verdict(fn, i)` | `loop-verdict/v1(effects/…)#loop=NAME@i` |
//! | `transformed` | `transformed/v1(analyzed/…,typed/…)` |
//! | `compiled` | `machine-bytecode/v2(typed/…)` |
//! | report (`parse` …) | `parse/v1(roundtrip/…)` etc., version from [`Stage::schema`] |
//! | `run` | `run/v1(transformed/…,machine-bytecode/…):pes=…;bodies=…` |
//!
//! Report-level versions are derived from the report schema tags
//! (`adds.analyze/v2` → `analyze/v2`), so bumping a report schema still
//! invalidates its cached documents with no second table to edit — the
//! same property the PR 4 flat fingerprints had, now compositional.

use crate::runner::{self, RunOptions};
use crate::session::Stage;

/// The per-layer schema-version tokens (`layer/vN`). [`Versions::default`]
/// is the live contract; tests (and staged rollouts) can bump a single
/// layer and get precisely scoped invalidation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versions {
    /// Source → AST.
    pub parsed: String,
    /// Pretty-print + print→parse round-trip verdict.
    pub roundtrip: String,
    /// ADDS resolution + type check.
    pub typed: String,
    /// Resolved ADDS declaration summary.
    pub adds_decls: String,
    /// Effect summaries + path-matrix fixpoints (`core::compile`).
    pub analyzed: String,
    /// Per-function loop checks (`core::check_function`).
    pub effects: String,
    /// Single-loop verdict projection.
    pub loop_verdict: String,
    /// Strip-mined program + decisions.
    pub transformed: String,
    /// Machine bytecode artifact (tracks the VM's bytecode schema).
    pub machine: String,
}

impl Default for Versions {
    fn default() -> Self {
        Versions {
            parsed: "parsed/v1".into(),
            roundtrip: "roundtrip/v1".into(),
            typed: "typed/v1".into(),
            adds_decls: "adds-decls/v1".into(),
            analyzed: "analyzed/v1".into(),
            effects: "effects/v1".into(),
            loop_verdict: "loop-verdict/v1".into(),
            transformed: "transformed/v1".into(),
            machine: adds_machine::compile::BYTECODE_SCHEMA.into(),
        }
    }
}

/// The composed fingerprints of every query layer, precomputed once per
/// database from a [`Versions`] table.
#[derive(Clone, Debug)]
pub struct Fingerprints {
    /// `parsed/v1`
    pub parsed: String,
    /// `roundtrip/v1(parsed/v1)`
    pub roundtrip: String,
    /// `typed/v1(parsed/v1)`
    pub typed: String,
    /// `adds-decls/v1(typed/…)`
    pub adds_decls: String,
    /// `analyzed/v1(typed/…)`
    pub analyzed: String,
    /// `transformed/v1(analyzed/…,typed/…)`
    pub transformed: String,
    /// `machine-bytecode/v2(typed/…)`
    pub compiled: String,
    effects_base: String,
    loop_verdict_base: String,
    parse_report: String,
    check_report: String,
    analyze_report: String,
    parallelize_report: String,
    run_base: String,
}

impl Default for Fingerprints {
    fn default() -> Self {
        Fingerprints::new(&Versions::default())
    }
}

impl Fingerprints {
    /// Compose the full fingerprint table from per-layer versions.
    pub fn new(v: &Versions) -> Fingerprints {
        let parsed = v.parsed.clone();
        let roundtrip = format!("{}({parsed})", v.roundtrip);
        let typed = format!("{}({parsed})", v.typed);
        let adds_decls = format!("{}({typed})", v.adds_decls);
        let analyzed = format!("{}({typed})", v.analyzed);
        let effects_base = format!("{}({analyzed})", v.effects);
        let loop_verdict_base = format!("{}({effects_base})", v.loop_verdict);
        // The transform emits new source and proves it re-checks, so it
        // depends on the typed layer as well as the analysis.
        let transformed = format!("{}({analyzed},{typed})", v.transformed);
        let compiled = format!("{}({typed})", v.machine);
        let report = |stage: Stage, dep: &str| format!("{}({dep})", schema_version(stage.schema()));
        Fingerprints {
            parse_report: report(Stage::Parse, &roundtrip),
            check_report: report(Stage::Check, &adds_decls),
            analyze_report: report(Stage::Analyze, &effects_base),
            parallelize_report: report(Stage::Parallelize, &transformed),
            run_base: format!(
                "{}({transformed},{compiled})",
                schema_version(runner::RUN_SCHEMA)
            ),
            parsed,
            roundtrip,
            typed,
            adds_decls,
            analyzed,
            effects_base,
            loop_verdict_base,
            transformed,
            compiled,
        }
    }

    /// The fingerprint of an `effects` query for one function.
    pub fn effects(&self, func: &str) -> String {
        format!("{}#fn={func}", self.effects_base)
    }

    /// The fingerprint of a `loop_verdict` query for one loop (the
    /// `index`-th `while` of `func`, in source order).
    pub fn loop_verdict(&self, func: &str, index: usize) -> String {
        format!("{}#loop={func}@{index}", self.loop_verdict_base)
    }

    /// The fingerprint of a rendered stage report.
    pub fn stage_report(&self, stage: Stage, matrices: bool) -> String {
        let base = match stage {
            Stage::Parse => &self.parse_report,
            Stage::Check => &self.check_report,
            Stage::Analyze => &self.analyze_report,
            Stage::Parallelize => &self.parallelize_report,
        };
        if matrices && stage == Stage::Analyze {
            format!("{base}+matrices")
        } else {
            base.clone()
        }
    }

    /// The fingerprint of a `run` query: the composed dependency chain
    /// plus every parameter that shapes the simulation.
    pub fn run_report(&self, opts: &RunOptions) -> String {
        let pes: Vec<String> = opts.pes.iter().map(|p| p.to_string()).collect();
        format!(
            "{}:pes={};bodies={};steps={};theta={};dt={}",
            self.run_base,
            pes.join(","),
            opts.bodies,
            opts.steps,
            opts.theta,
            opts.dt
        )
    }
}

/// `adds.analyze/v2` → `analyze/v2`: the version segment of a report
/// schema tag, shared by fingerprints so a schema bump invalidates cached
/// documents automatically.
fn schema_version(schema: &str) -> &str {
    schema.strip_prefix("adds.").unwrap_or(schema)
}

/// The fingerprint of a stage request under the default [`Versions`]
/// (see the module table).
pub fn stage_fingerprint(stage: Stage, matrices: bool) -> String {
    Fingerprints::default().stage_report(stage, matrices)
}

/// The fingerprint of a `run` request under the default [`Versions`].
pub fn run_fingerprint(opts: &RunOptions) -> String {
    Fingerprints::default().run_report(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_compose_dependencies() {
        let fp = Fingerprints::default();
        assert_eq!(fp.parsed, "parsed/v1");
        assert_eq!(fp.typed, "typed/v1(parsed/v1)");
        assert_eq!(fp.analyzed, "analyzed/v1(typed/v1(parsed/v1))");
        assert_eq!(
            fp.effects("scale"),
            "effects/v1(analyzed/v1(typed/v1(parsed/v1)))#fn=scale"
        );
        assert_eq!(
            fp.stage_report(Stage::Analyze, false),
            "analyze/v2(effects/v1(analyzed/v1(typed/v1(parsed/v1))))"
        );
        assert_eq!(
            fp.stage_report(Stage::Analyze, true),
            "analyze/v2(effects/v1(analyzed/v1(typed/v1(parsed/v1))))+matrices"
        );
        // `--matrices` only affects analyze reports.
        assert_eq!(
            fp.stage_report(Stage::Check, true),
            fp.stage_report(Stage::Check, false)
        );
        assert!(fp
            .run_report(&RunOptions::default())
            .ends_with(":pes=4;bodies=64;steps=2;theta=0.7;dt=0.001"));
    }

    #[test]
    fn every_query_fingerprint_embeds_its_schema_version() {
        // The CI contract: each layer token appears as `name/vN` inside
        // its own fingerprint, and report fingerprints lead with the
        // version segment of their report schema tag.
        let fp = Fingerprints::default();
        let versioned = |s: &str, layer: &str| {
            let token = s
                .split(['(', ')', ',', '#', ':', '+'])
                .find(|t| t.starts_with(layer))
                .unwrap_or_else(|| panic!("`{s}` lacks a `{layer}` token"));
            let (name, version) = token
                .rsplit_once("/v")
                .unwrap_or_else(|| panic!("token `{token}` of `{s}` lacks a /vN schema version"));
            assert_eq!(name, layer, "{s}");
            assert!(
                !version.is_empty() && version.chars().all(|c| c.is_ascii_digit()),
                "`{token}` version must be numeric"
            );
        };
        versioned(&fp.parsed, "parsed");
        versioned(&fp.roundtrip, "roundtrip");
        versioned(&fp.typed, "typed");
        versioned(&fp.adds_decls, "adds-decls");
        versioned(&fp.analyzed, "analyzed");
        versioned(&fp.effects("f"), "effects");
        versioned(&fp.loop_verdict("f", 0), "loop-verdict");
        versioned(&fp.transformed, "transformed");
        versioned(&fp.compiled, "machine-bytecode");
        for stage in [
            Stage::Parse,
            Stage::Check,
            Stage::Analyze,
            Stage::Parallelize,
        ] {
            let f = fp.stage_report(stage, false);
            let version = schema_version(stage.schema());
            assert!(
                f.starts_with(&format!("{version}(")),
                "report fingerprint `{f}` must lead with `{version}`"
            );
            versioned(&f, stage.name());
        }
        versioned(&fp.run_report(&RunOptions::default()), "run");
    }

    #[test]
    fn bumping_one_layer_rewrites_exactly_the_downstream_fingerprints() {
        let base = Fingerprints::default();
        let bumped = Fingerprints::new(&Versions {
            typed: "typed/v2".into(),
            ..Versions::default()
        });
        // Upstream of the bump: unchanged.
        assert_eq!(base.parsed, bumped.parsed);
        assert_eq!(base.roundtrip, bumped.roundtrip);
        assert_eq!(
            base.stage_report(Stage::Parse, false),
            bumped.stage_report(Stage::Parse, false)
        );
        // The bumped layer and everything depending on it: rewritten.
        assert_ne!(base.typed, bumped.typed);
        assert_ne!(base.adds_decls, bumped.adds_decls);
        assert_ne!(base.analyzed, bumped.analyzed);
        assert_ne!(base.effects("f"), bumped.effects("f"));
        assert_ne!(base.transformed, bumped.transformed);
        assert_ne!(base.compiled, bumped.compiled);
        assert_ne!(
            base.stage_report(Stage::Analyze, false),
            bumped.stage_report(Stage::Analyze, false)
        );
        assert_ne!(
            base.run_report(&RunOptions::default()),
            bumped.run_report(&RunOptions::default())
        );
    }
}
