//! The `run` subcommand: execute the Barnes–Hut workload on the simulated
//! Sequent-class MIMD machine, original source sequentially and the
//! strip-mined transform at each requested PE count, and report cycle
//! counts, speedups, conflicts, and whether the physics agrees — the §4
//! experiment as one command.

use crate::json::Json;

/// Parameters of a `run` workload execution. The defaults match the CLI's
/// (`--pes 4 --bodies 64 --steps 2 --theta 0.7 --dt 0.001`), so a bare
/// `POST /v1/run` reproduces `adds-cli run` exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// PE counts to simulate, one parallel execution each.
    pub pes: Vec<usize>,
    /// Particle count.
    pub bodies: usize,
    /// Simulated steps.
    pub steps: i64,
    /// Opening angle.
    pub theta: f64,
    /// Time step.
    pub dt: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pes: vec![4],
            bodies: 64,
            steps: 2,
            theta: 0.7,
            dt: 0.001,
        }
    }
}

/// Deterministic seed for the particle cloud (same cloud every invocation,
/// so cycle counts are reproducible).
pub(crate) const CLOUD_SEED: u64 = 3;

/// The `run` report's schema tag; the cache fingerprint is derived from
/// it, so bumping the tag invalidates cached run entries automatically.
pub const RUN_SCHEMA: &str = "adds.run/v1";

/// One parallel execution's outcome.
#[derive(Clone, Debug)]
pub struct ParRun {
    /// Simulated PE count.
    pub pes: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// Speedup over the sequential run.
    pub speedup: f64,
    /// Dynamic conflicts detected (must be 0).
    pub conflicts: usize,
    /// Barrier-synchronized parallel rounds executed.
    pub parallel_rounds: u64,
    /// Positions/velocities match the sequential run to 1e-9.
    pub physics_matches: bool,
}

/// The whole `run` report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Program name (corpus entry or file).
    pub program: String,
    /// Particle count.
    pub bodies: usize,
    /// Simulated steps.
    pub steps: i64,
    /// Sequential (1 PE, untransformed) cycles.
    pub seq_cycles: u64,
    /// One entry per `--pes` value.
    pub parallel: Vec<ParRun>,
}

/// Execute the workload one-shot. `source` must contain the Barnes–Hut
/// `simulate` entry procedure (the built-in `barnes_hut` program, or a
/// file with the same shape). This is a convenience front over the
/// `run(src, opts)` query of a throwaway [`crate::db::AnalysisDb`] — the
/// single implementation both the CLI and the server memoize through —
/// with the caller's display `name` restored in the report and any error
/// message.
pub fn run_workload(name: &str, source: &str, args: &RunOptions) -> Result<RunReport, String> {
    let (digest, result, _) = crate::db::AnalysisDb::new().run(source, args);
    match &*result {
        Ok(report) => {
            let mut report = report.clone();
            report.program = name.to_string();
            Ok(report)
        }
        Err(msg) => Err(msg.replace(&digest.hex(), name)),
    }
}

/// JSON document for `run --format json`.
pub fn to_json(r: &RunReport) -> Json {
    Json::obj([
        ("schema", Json::str(RUN_SCHEMA)),
        ("program", Json::str(&r.program)),
        ("bodies", Json::Int(r.bodies as i64)),
        ("steps", Json::Int(r.steps)),
        ("seq_cycles", Json::UInt(r.seq_cycles)),
        (
            "parallel",
            Json::Arr(
                r.parallel
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("pes", Json::Int(p.pes as i64)),
                            ("cycles", Json::UInt(p.cycles)),
                            (
                                "speedup",
                                Json::Float((p.speedup * 1000.0).round() / 1000.0),
                            ),
                            ("conflicts", Json::Int(p.conflicts as i64)),
                            ("parallel_rounds", Json::UInt(p.parallel_rounds)),
                            ("physics_matches", Json::Bool(p.physics_matches)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text rendering for `run`.
pub fn to_text(r: &RunReport) -> String {
    let mut out = format!(
        "{}: {} bodies, {} steps, simulated Sequent cost model\n",
        r.program, r.bodies, r.steps
    );
    out.push_str(&format!("  seq     {:>14} cycles\n", r.seq_cycles));
    for p in &r.parallel {
        out.push_str(&format!(
            "  par({:>2}) {:>14} cycles  speedup {:>5.2}  conflicts {}  rounds {}{}\n",
            p.pes,
            p.cycles,
            p.speedup,
            p.conflicts,
            p.parallel_rounds,
            if p.physics_matches {
                ""
            } else {
                "  PHYSICS MISMATCH"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barnes_hut_speeds_up_with_no_conflicts() {
        let args = RunOptions {
            bodies: 48,
            steps: 1,
            pes: vec![4],
            ..RunOptions::default()
        };
        let r = run_workload("barnes_hut", adds_lang::programs::BARNES_HUT, &args).unwrap();
        assert_eq!(r.parallel.len(), 1);
        let p = &r.parallel[0];
        assert_eq!(p.conflicts, 0);
        assert!(p.physics_matches);
        assert!(p.speedup > 1.0, "speedup {}", p.speedup);
    }

    #[test]
    fn non_nbody_program_is_a_clean_error() {
        let args = RunOptions::default();
        let err = run_workload(
            "list_scale_adds",
            adds_lang::programs::LIST_SCALE_ADDS,
            &args,
        )
        .unwrap_err();
        assert!(err.contains("simulate"), "{err}");
    }
}
