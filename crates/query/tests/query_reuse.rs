//! The two load-bearing properties of the query layer, pinned:
//!
//! 1. **Reuse** — a warm `parallelize` after an `analyze` of the same
//!    bytes performs *zero* re-parses / re-checks / re-analyses of the
//!    input source (per-digest compute counters on the db prove it), and
//!    the `run` query reuses the transformed source's typecheck from the
//!    `parallelize` that produced it.
//! 2. **Scoped invalidation** — bumping one layer's fingerprint version
//!    invalidates exactly that layer and its downstream queries; upstream
//!    entries keep hitting.

use adds_query::cache::Outcome;
use adds_query::db::{sha256, QueryKind};
use adds_query::fingerprint::Versions;
use adds_query::runner::RunOptions;
use adds_query::session::{RunRequest, Session, Stage, StageRequest};

const SRC: &str = adds_lang::programs::BARNES_HUT;

#[test]
fn warm_parallelize_after_analyze_reparses_nothing() {
    let session = Session::new();
    let db = session.db();
    let digest = sha256(SRC.as_bytes());

    let analyzed = session.analyze(SRC, false);
    assert!(analyzed.report.ok);
    assert_eq!(analyzed.outcome, Outcome::Miss);
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Typed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Analyzed, &digest), 1);

    // The dependent stage: new document, zero upstream recomputation of
    // the input bytes.
    let parallelized = session.parallelize(SRC);
    assert!(parallelized.report.ok);
    assert_eq!(parallelized.outcome, Outcome::Miss, "different document");
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1, "zero re-parses");
    assert_eq!(db.computes(QueryKind::Typed, &digest), 1, "zero re-checks");
    assert_eq!(
        db.computes(QueryKind::Analyzed, &digest),
        1,
        "zero re-analyses"
    );
    assert_eq!(db.computes(QueryKind::Transformed, &digest), 1);

    // Repeating either stage is a pure cache hit.
    assert_eq!(session.analyze(SRC, false).outcome, Outcome::Hit);
    assert_eq!(session.parallelize(SRC).outcome, Outcome::Hit);
    assert_eq!(db.computes(QueryKind::Report, &digest), 2, "two documents");
}

#[test]
fn run_reuses_the_transform_chain() {
    let session = Session::new();
    let db = session.db();
    let digest = sha256(SRC.as_bytes());

    // Warm the analysis side first, as a client mixing endpoints would.
    session.parallelize(SRC);
    let transformed_src = session
        .db()
        .transformed(SRC)
        .as_ref()
        .as_ref()
        .expect("transforms")
        .source
        .clone();
    let t_digest = sha256(transformed_src.as_bytes());
    // The reparses proof already typechecked the emitted source.
    assert_eq!(db.computes(QueryKind::Typed, &t_digest), 1);

    let opts = RunOptions {
        bodies: 24,
        steps: 1,
        pes: vec![2],
        ..RunOptions::default()
    };
    let out = session.run(SRC, &RunRequest { opts });
    assert!(out.result.is_ok(), "{:?}", out.result);
    // run compiled both programs but re-derived nothing upstream.
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Typed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Analyzed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Transformed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Typed, &t_digest), 1, "reused");
    assert_eq!(db.computes(QueryKind::Compiled, &digest), 1);
    assert_eq!(db.computes(QueryKind::Compiled, &t_digest), 1);
}

#[test]
fn bumping_one_layer_invalidates_only_downstream_queries() {
    let session = Session::new();
    let db = session.db();
    let digest = sha256(SRC.as_bytes());
    assert!(session.analyze(SRC, false).report.ok);
    assert_eq!(db.computes(QueryKind::Parsed, &digest), 1);
    assert_eq!(db.computes(QueryKind::Analyzed, &digest), 1);
    let effects_before = db.total_computes(QueryKind::Effects);
    assert!(effects_before > 0);

    // Fork the db under a bumped *analyzed* layer: same caches, new keys
    // for analyzed and everything downstream of it.
    let bumped = db.fork_with_versions(&Versions {
        analyzed: "analyzed/v2".into(),
        ..Versions::default()
    });
    let (_, report, outcome) = bumped.stage_report(SRC, Stage::Analyze, false);
    assert!(report.ok);
    assert_eq!(outcome, Outcome::Miss, "report fingerprint changed");
    // Upstream layers: still warm, not recomputed.
    assert_eq!(bumped.computes(QueryKind::Parsed, &digest), 1, "parse kept");
    assert_eq!(bumped.computes(QueryKind::Typed, &digest), 1, "check kept");
    // The bumped layer and its dependents: recomputed once each.
    assert_eq!(bumped.computes(QueryKind::Analyzed, &digest), 2);
    assert_eq!(
        bumped.total_computes(QueryKind::Effects),
        2 * effects_before
    );
    assert_eq!(bumped.computes(QueryKind::Report, &digest), 2);

    // Queries *upstream* of the bump resolve to the shared warm entries
    // from either handle.
    assert!(bumped
        .lookup_report(&digest, Stage::Analyze, false)
        .is_some());
    assert!(db.lookup_report(&digest, Stage::Analyze, false).is_some());
    // And the two handles' reports are byte-identical documents.
    let (_, old_report, _) = db.stage_report(SRC, Stage::Analyze, false);
    assert_eq!(
        Session::stage_doc(Stage::Analyze, &report, None).pretty(),
        Session::stage_doc(Stage::Analyze, &old_report, None).pretty()
    );
}

#[test]
fn session_request_structs_cover_the_stage_surface() {
    // The typed request path and the convenience methods answer
    // identically (same Arc out of the same cache).
    let session = Session::new();
    let a = session.stage(SRC, StageRequest::new(Stage::Check));
    let b = session.check(SRC);
    assert!(std::sync::Arc::ptr_eq(&a.report, &b.report));
    assert_eq!(b.outcome, Outcome::Hit);
}
