//! # adds-nbody — the Barnes–Hut tree-code of §4, natively in Rust
//!
//! The workload the ADDS paper parallelizes: an N-body simulation over an
//! octree whose leaves (the particles) form a one-way linked list
//! (Figure 5). Provides:
//!
//! * [`octree`] — incremental tree construction exactly as in §4.3.2
//!   (`expand_box` / `insert_particle` with the temporary-sharing insertion
//!   order) plus run-time shape validation,
//! * [`force`] — the recursive well-separated force computation and the
//!   O(N²) direct sum baseline,
//! * [`sim`] — the per-time-step driver (build → BHL1 → BHL2),
//! * [`parallel`] — the §4.3.3 strip-mined parallel loops on real threads
//!   (plus dynamic scheduling and subtree parallelism for the ablations),
//! * [`stride`] — stride-disjoint mutable views: the Rust embodiment of the
//!   disjointness the path-matrix analysis proves,
//! * [`gen`] — seeded uniform-cube and Plummer initial conditions,
//! * [`water`] — the §4.2 aside: a SPLASH-Water-style O(N²) arrays-and-
//!   iteration MD code, the “ease of parallelization” counterpoint.

#![warn(missing_docs)]

pub mod force;
pub mod gen;
pub mod octree;
pub mod parallel;
pub mod particle;
pub mod sim;
pub mod stride;
pub mod vec3;
pub mod water;

pub use force::{accumulate_force, direct_force, force_visits, DEFAULT_EPS, DEFAULT_THETA};
pub use octree::{Node, NodeId, Octree};
pub use parallel::{force_parallel_subtrees, Schedule};
pub use particle::{Particle, ParticleId, ParticleList};
pub use sim::{SimParams, Simulation};
pub use stride::{disjoint_strides, StrideWriter};
pub use vec3::Vec3;
pub use water::{lattice, Molecule, WaterParams, WaterSim};
