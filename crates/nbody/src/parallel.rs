//! Parallel drivers — the native realization of the §4.3.3 transformation.
//!
//! * [`Schedule::StaticStrip`] is the paper's code: thread *i* starts at the
//!   head of the leaf list, skips *i* nodes (FOR2), processes one node, then
//!   skips `threads` nodes (FOR1) — honest pointer chasing, relying on
//!   speculative traversability at the end of the list.
//! * [`Schedule::Dynamic`] is the A1 ablation: self-scheduling from an
//!   atomic counter. Note it must first *flatten the list to an array* —
//!   exactly the restructuring (\[Her90, Mak90\]) the paper's approach
//!   avoids.
//! * [`force_parallel_subtrees`] exploits the independent subtree
//!   computations inside `compute_force` — the paper's caveat (2) /
//!   future-work parallelism (A2 ablation).
//!
//! Forces land in stride-disjoint slots ([`crate::stride`]); the `unsafe`
//! disjointness proof mirrors what the path matrix analysis established.

use crate::force::accumulate_force;
use crate::octree::Octree;
use crate::particle::{ParticleId, ParticleList};
use crate::sim::Simulation;
use crate::stride::disjoint_strides;
use crate::vec3::{Vec3, ZERO};
use std::sync::atomic::{AtomicUsize, Ordering};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
/// How `step_parallel_sched` distributes leaf-list iterations over threads.
pub enum Schedule {
    /// The paper's static strip scheduling.
    StaticStrip,
    /// Self-scheduling via an atomic counter over a flattened index array.
    Dynamic,
}

impl Simulation {
    /// One parallel Barnes–Hut step with the given schedule.
    pub fn step_parallel_sched(&mut self, threads: usize, schedule: Schedule) {
        assert!(threads >= 1);
        let tree = Octree::build(&self.particles);
        self.last_tree_nodes = tree.len();
        self.last_tree_depth = tree.depth();

        match schedule {
            Schedule::StaticStrip => self.forces_static_strip(&tree, threads),
            Schedule::Dynamic => self.forces_dynamic(&tree, threads),
        }
        self.integrate_parallel(threads);
    }

    /// One parallel step with the paper's schedule.
    pub fn step_parallel(&mut self, threads: usize) {
        self.step_parallel_sched(threads, Schedule::StaticStrip);
    }

    /// Run `steps` parallel steps on a persistent pool: threads are spawned
    /// once and synchronize with barriers between the three phases of each
    /// step (sequential tree build by thread 0 — as in the paper, where
    /// `build_tree` stays sequential — then parallel BHL1, then parallel
    /// BHL2). This is the configuration the §4.4 tables measure.
    pub fn run_parallel(&mut self, steps: usize, threads: usize) {
        let threads = threads.max(1);
        if threads == 1 {
            for _ in 0..steps {
                self.step_parallel(1);
            }
            return;
        }
        let n = self.particles.len();
        debug_assert_eq!(self.forces.len(), n);
        let barrier = std::sync::Barrier::new(threads);
        let tree_slot: std::sync::RwLock<Option<Octree>> = std::sync::RwLock::new(None);
        let params = self.params;

        // SAFETY CONTRACT for the raw pointers below: phases are separated
        // by barriers. In the build phase only thread 0 touches the world;
        // in the force phase all threads read particles and write disjoint
        // stride classes of `forces`; in the integrate phase all threads
        // read `forces` and write disjoint stride classes of `particles`.
        struct World(*mut Simulation);
        unsafe impl Sync for World {}
        let world = World(self as *mut Simulation);
        let world = &world;

        crossbeam::scope(|s| {
            for t in 0..threads {
                let barrier = &barrier;
                let tree_slot = &tree_slot;
                s.spawn(move |_| {
                    for _ in 0..steps {
                        if t == 0 {
                            // Exclusive phase: rebuild the tree.
                            // SAFETY: all other threads are blocked on the
                            // barrier below.
                            let sim = unsafe { &mut *world.0 };
                            let tree = Octree::build(&sim.particles);
                            sim.last_tree_nodes = tree.len();
                            sim.last_tree_depth = tree.depth();
                            *tree_slot.write().expect("tree slot") = Some(tree);
                        }
                        barrier.wait();
                        {
                            // Force phase: shared reads, strided force writes.
                            // SAFETY: no &mut exists; this thread writes only
                            // indices ≡ t (mod threads) of `forces`.
                            let sim = unsafe { &*world.0 };
                            let guard = tree_slot.read().expect("tree slot");
                            let tree = guard.as_ref().expect("tree built");
                            let forces_ptr = sim.forces.as_ptr() as *mut Vec3;
                            let mut p = sim.particles.head();
                            let mut pos = 0usize;
                            for _ in 0..t {
                                p = sim.particles.next_of(p);
                                pos += 1;
                            }
                            while let Some(id) = p {
                                debug_assert_eq!(id as usize, pos);
                                let f = accumulate_force(
                                    tree,
                                    &sim.particles,
                                    id,
                                    tree.root,
                                    params.theta,
                                    params.eps,
                                );
                                unsafe { *forces_ptr.add(pos) = f };
                                for _ in 0..threads {
                                    p = sim.particles.next_of(p);
                                }
                                pos += threads;
                            }
                        }
                        barrier.wait();
                        {
                            // Integrate phase: strided particle writes.
                            // SAFETY: this thread writes only particle
                            // indices ≡ t (mod threads); forces are read-only.
                            let sim = unsafe { &*world.0 };
                            let parts_ptr = sim.particles.particles().as_ptr()
                                as *mut crate::particle::Particle;
                            let mut i = t;
                            while i < n {
                                let f = sim.forces[i];
                                unsafe {
                                    let part = &mut *parts_ptr.add(i);
                                    part.vel += f * (params.dt / part.mass);
                                    part.pos += part.vel * params.dt;
                                }
                                i += threads;
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        })
        .expect("worker pool");
    }

    /// BHL1 under static strip scheduling: each thread walks the leaf list
    /// itself, processing positions ≡ t (mod threads).
    fn forces_static_strip(&mut self, tree: &Octree, threads: usize) {
        let params = self.params;
        let particles = &self.particles;
        let head = particles.head();
        let writers = disjoint_strides(&mut self.forces, threads);
        crossbeam::scope(|s| {
            for (t, mut writer) in writers.into_iter().enumerate() {
                s.spawn(move |_| {
                    // FOR2: skip t nodes ahead (speculative past the end).
                    let mut p = head;
                    let mut pos = 0usize;
                    for _ in 0..t {
                        p = particles.next_of(p);
                        pos += 1;
                    }
                    while let Some(id) = p {
                        debug_assert_eq!(id as usize, pos, "leaf list is in id order");
                        let f = accumulate_force(
                            tree,
                            particles,
                            id,
                            tree.root,
                            params.theta,
                            params.eps,
                        );
                        writer.set(pos, f);
                        // FOR1: skip `threads` nodes ahead.
                        for _ in 0..threads {
                            p = particles.next_of(p);
                        }
                        pos += threads;
                    }
                });
            }
        })
        .expect("force threads");
    }

    /// BHL1 under dynamic self-scheduling: flatten the chain, then pop
    /// indices from a shared counter.
    fn forces_dynamic(&mut self, tree: &Octree, threads: usize) {
        let params = self.params;
        let particles = &self.particles;
        // The flattening step the paper's approach makes unnecessary.
        let order: Vec<ParticleId> = particles.iter_chain().collect();
        let counter = AtomicUsize::new(0);
        let mut partials: Vec<Vec<(usize, Vec3)>> = Vec::new();
        crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let order = &order;
                let counter = &counter;
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let k = counter.fetch_add(1, Ordering::Relaxed);
                        if k >= order.len() {
                            return local;
                        }
                        let id = order[k];
                        let f = accumulate_force(
                            tree,
                            particles,
                            id,
                            tree.root,
                            params.theta,
                            params.eps,
                        );
                        local.push((id as usize, f));
                    }
                }));
            }
            for h in handles {
                partials.push(h.join().expect("force worker"));
            }
        })
        .expect("force threads");
        for part in partials {
            for (i, f) in part {
                self.forces[i] = f;
            }
        }
    }

    /// BHL2 in parallel: stride-disjoint updates of the particle array.
    fn integrate_parallel(&mut self, threads: usize) {
        let dt = self.params.dt;
        let forces = &self.forces;
        let writers = disjoint_strides(self.particles.particles_mut(), threads);
        crossbeam::scope(|s| {
            for mut w in writers {
                s.spawn(move |_| {
                    let idxs: Vec<usize> = w.indices().collect();
                    for i in idxs {
                        let f = forces[i];
                        let p = w.get_mut(i);
                        p.vel += f * (dt / p.mass);
                        p.pos += p.vel * dt;
                    }
                });
            }
        })
        .expect("integrate threads");
    }
}

/// Force on one particle with the *subtree* parallelism of compute_force
/// exploited: the recursive calls on the root's children are independent
/// (disjoint subtrees — exactly what the ADDS `uniquely forward along down`
/// declaration proves), so they can run on different threads.
pub fn force_parallel_subtrees(
    tree: &Octree,
    plist: &ParticleList,
    p: ParticleId,
    theta: f64,
    eps: f64,
) -> Vec3 {
    let Some(root) = tree.root else {
        return ZERO;
    };
    let n = tree.node(root);
    if n.body.is_some() {
        return accumulate_force(tree, plist, p, tree.root, theta, eps);
    }
    // Well-separated roots don't recurse; fall back to sequential.
    let body = plist.get(p);
    let dist = (n.com - body.pos).norm() + eps;
    if crate::force::well_separated(n.half_width, dist, theta) {
        return accumulate_force(tree, plist, p, tree.root, theta, eps);
    }
    let mut total = ZERO;
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for q in 0..8 {
            let child = n.children[q];
            if child.is_none() {
                continue;
            }
            handles.push(s.spawn(move |_| accumulate_force(tree, plist, p, child, theta, eps)));
        }
        for h in handles {
            total += h.join().expect("subtree worker");
        }
    })
    .expect("subtree threads");
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::sim::SimParams;

    fn sims(n: usize) -> (Simulation, Simulation) {
        let params = SimParams::default();
        (
            Simulation::new(gen::uniform_cube(n, 17), params),
            Simulation::new(gen::uniform_cube(n, 17), params),
        )
    }

    #[test]
    fn parallel_strip_matches_sequential() {
        let (mut seq, mut par) = sims(100);
        seq.run_sequential(3);
        par.run_parallel(3, 4);
        for (a, b) in seq
            .particles
            .particles()
            .iter()
            .zip(par.particles.particles())
        {
            assert!((a.pos - b.pos).norm() < 1e-12, "{a:?} vs {b:?}");
            assert!((a.vel - b.vel).norm() < 1e-12);
        }
    }

    #[test]
    fn parallel_dynamic_matches_sequential() {
        let (mut seq, mut par) = sims(64);
        seq.run_sequential(2);
        for _ in 0..2 {
            par.step_parallel_sched(4, Schedule::Dynamic);
        }
        for (a, b) in seq
            .particles
            .particles()
            .iter()
            .zip(par.particles.particles())
        {
            assert!((a.pos - b.pos).norm() < 1e-12);
        }
    }

    #[test]
    fn thread_counts_dont_change_results() {
        let params = SimParams::default();
        let mut base = Simulation::new(gen::plummer(50, 5), params);
        base.run_parallel(2, 1);
        for threads in [2, 3, 4, 7, 16] {
            let mut s = Simulation::new(gen::plummer(50, 5), params);
            s.run_parallel(2, threads);
            for (a, b) in base
                .particles
                .particles()
                .iter()
                .zip(s.particles.particles())
            {
                assert!(
                    (a.pos - b.pos).norm() < 1e-12,
                    "threads={threads}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_particles_is_fine() {
        let params = SimParams::default();
        let mut s = Simulation::new(gen::uniform_cube(3, 1), params);
        s.run_parallel(2, 8);
        assert_eq!(s.particles.len(), 3);
    }

    #[test]
    fn subtree_parallel_force_matches_sequential() {
        let plist = gen::plummer(200, 9);
        let tree = Octree::build(&plist);
        for p in [0u32, 7, 99, 199] {
            let seq = accumulate_force(&tree, &plist, p, tree.root, 0.5, 1e-4);
            let par = force_parallel_subtrees(&tree, &plist, p, 0.5, 1e-4);
            assert!(
                (seq - par).norm() < 1e-12,
                "particle {p}: {seq:?} vs {par:?}"
            );
        }
    }

    #[test]
    fn single_particle_subtree_force_is_zero() {
        let plist = gen::uniform_cube(1, 1);
        let tree = Octree::build(&plist);
        assert_eq!(force_parallel_subtrees(&tree, &plist, 0, 0.5, 1e-4), ZERO);
    }
}
