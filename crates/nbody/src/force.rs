//! Force computation: the recursive `compute_force` of §4.1 with the
//! Barnes–Hut well-separated criterion, plus the O(N²) direct sum it
//! replaces.

use crate::octree::{NodeId, Octree};
use crate::particle::{ParticleId, ParticleList};
use crate::vec3::{Vec3, ZERO};

/// Gravitational constant (natural units) and default softening.
pub const G: f64 = 1.0;
/// Default gravitational softening ε.
pub const DEFAULT_EPS: f64 = 1e-4;
/// Default Barnes–Hut opening angle θ.
pub const DEFAULT_THETA: f64 = 0.7;

/// Pairwise force on a body at `pos` with mass `m` from a point mass.
#[inline]
pub fn pair_force(pos: Vec3, m: f64, other_pos: Vec3, other_m: f64, eps: f64) -> Vec3 {
    let d = other_pos - pos;
    let dist = (d.norm_sq() + eps * eps).sqrt();
    let f = G * m * other_m / (dist * dist * dist);
    d * f
}

/// The paper's WELL-SEPARATED test: the node's box (side `2·hw`) subtends
/// less than `theta` at distance `dist`.
#[inline]
pub fn well_separated(half_width: f64, dist: f64, theta: f64) -> bool {
    half_width * 2.0 / dist < theta
}

/// Recursive force accumulation on particle `p` from the subtree at `node`
/// — the paper's `compute_force`. Once a node is included, its subtrees are
/// ignored.
pub fn accumulate_force(
    tree: &Octree,
    plist: &ParticleList,
    p: ParticleId,
    node: Option<NodeId>,
    theta: f64,
    eps: f64,
) -> Vec3 {
    let Some(id) = node else {
        return ZERO;
    };
    let n = tree.node(id);
    let body = plist.get(p);

    if let Some(other) = n.body {
        if other == p {
            return ZERO;
        }
        return pair_force(body.pos, body.mass, n.com, n.mass, eps);
    }

    let dist = (n.com - body.pos).norm() + eps;
    if well_separated(n.half_width, dist, theta) {
        return pair_force(body.pos, body.mass, n.com, n.mass, eps);
    }
    let mut f = ZERO;
    for q in 0..8 {
        f += accumulate_force(tree, plist, p, n.children[q], theta, eps);
    }
    f
}

/// Count of tree nodes *visited* while computing the force on `p` — the
/// per-iteration work metric used by the scheduling ablations.
pub fn force_visits(
    tree: &Octree,
    plist: &ParticleList,
    p: ParticleId,
    node: Option<NodeId>,
    theta: f64,
    eps: f64,
) -> usize {
    let Some(id) = node else {
        return 0;
    };
    let n = tree.node(id);
    let body = plist.get(p);
    if n.body.is_some() {
        return 1;
    }
    let dist = (n.com - body.pos).norm() + eps;
    if well_separated(n.half_width, dist, theta) {
        return 1;
    }
    1 + (0..8)
        .map(|q| force_visits(tree, plist, p, n.children[q], theta, eps))
        .sum::<usize>()
}

/// Direct O(N²) force on particle `p` — the "obvious implementation" of
/// §4.1 that the tree-code replaces, and the reference for accuracy tests.
pub fn direct_force(plist: &ParticleList, p: ParticleId, eps: f64) -> Vec3 {
    let body = plist.get(p);
    let mut f = ZERO;
    for (i, other) in plist.particles().iter().enumerate() {
        if i as ParticleId == p {
            continue;
        }
        f += pair_force(body.pos, body.mass, other.pos, other.mass, eps);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::Particle;

    fn plist(points: &[[f64; 3]]) -> ParticleList {
        ParticleList::new(
            points
                .iter()
                .map(|p| Particle::at_rest(1.0, Vec3::from_array(*p)))
                .collect(),
        )
    }

    #[test]
    fn pair_force_is_attractive_and_antisymmetric() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        let fab = pair_force(a, 1.0, b, 1.0, 0.0);
        let fba = pair_force(b, 1.0, a, 1.0, 0.0);
        assert!(fab.x > 0.0, "force on a points toward b");
        assert!((fab + fba).norm() < 1e-12, "Newton's third law");
        assert!(
            (fab.x - 1.0).abs() < 1e-12,
            "inverse square at unit distance"
        );
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let f = pair_force(ZERO, 1.0, Vec3::new(1e-12, 0.0, 0.0), 1.0, 1e-2);
        assert!(f.norm() < 1e6, "softened force stays finite: {}", f.norm());
    }

    #[test]
    fn well_separated_criterion() {
        assert!(well_separated(0.5, 10.0, 0.5)); // far box
        assert!(!well_separated(0.5, 1.0, 0.5)); // near box
    }

    #[test]
    fn tree_force_matches_direct_for_small_theta() {
        let pts: Vec<[f64; 3]> = (0..40)
            .map(|i| {
                let f = i as f64 * 0.61803398875;
                [
                    (f * 1.7).sin() * 2.0,
                    (f * 2.3).cos() * 2.0,
                    (f * 3.1).sin() * 2.0,
                ]
            })
            .collect();
        let l = plist(&pts);
        let t = crate::octree::Octree::build(&l);
        for p in 0..l.len() as ParticleId {
            let bh = accumulate_force(&t, &l, p, t.root, 0.0, DEFAULT_EPS);
            let direct = direct_force(&l, p, DEFAULT_EPS);
            assert!(
                (bh - direct).norm() < 1e-9,
                "theta=0 must equal direct: {bh:?} vs {direct:?}"
            );
        }
    }

    #[test]
    fn tree_force_approximates_direct_for_moderate_theta() {
        let pts: Vec<[f64; 3]> = (0..100)
            .map(|i| {
                let f = i as f64;
                [
                    (f * 0.37).sin() * 5.0,
                    (f * 0.73).cos() * 5.0,
                    (f * 1.09).sin() * 5.0,
                ]
            })
            .collect();
        let l = plist(&pts);
        let t = crate::octree::Octree::build(&l);
        // Normalize by the mean force magnitude: particles whose net force
        // nearly cancels make the pointwise relative error meaningless.
        let mean_f: f64 = (0..l.len() as ParticleId)
            .map(|p| direct_force(&l, p, DEFAULT_EPS).norm())
            .sum::<f64>()
            / l.len() as f64;
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0f64;
        for p in 0..l.len() as ParticleId {
            let bh = accumulate_force(&t, &l, p, t.root, 0.5, DEFAULT_EPS);
            let direct = direct_force(&l, p, DEFAULT_EPS);
            let err = (bh - direct).norm() / mean_f;
            max_err = max_err.max(err);
            sum_err += err;
        }
        let mean_err = sum_err / l.len() as f64;
        assert!(mean_err < 0.02, "theta=0.5 mean error {mean_err}");
        // Individual particles in tight clumps can see larger (still
        // bounded) deviations; the aggregate accuracy is what BH promises.
        assert!(max_err < 0.5, "theta=0.5 worst error {max_err}");
    }

    #[test]
    fn tree_force_visits_fewer_nodes_than_direct() {
        let pts: Vec<[f64; 3]> = (0..256)
            .map(|i| {
                let f = i as f64;
                [
                    (f * 0.37).sin() * 5.0,
                    (f * 0.73).cos() * 5.0,
                    (f * 1.09).sin() * 5.0,
                ]
            })
            .collect();
        let l = plist(&pts);
        let t = crate::octree::Octree::build(&l);
        let visits = force_visits(&t, &l, 0, t.root, 1.0, DEFAULT_EPS);
        assert!(
            visits < l.len(),
            "BH visits ({visits}) should be below N ({})",
            l.len()
        );
    }

    #[test]
    fn self_force_is_zero() {
        let l = plist(&[[0.0, 0.0, 0.0]]);
        let t = crate::octree::Octree::build(&l);
        let f = accumulate_force(&t, &l, 0, t.root, 0.5, DEFAULT_EPS);
        assert_eq!(f, ZERO);
        assert_eq!(direct_force(&l, 0, DEFAULT_EPS), ZERO);
    }
}
