//! The octree of §4.3.1, built exactly as the paper describes: incrementally
//! per particle, growing the root box upward (`expand_box`) and descending
//! to an empty octant (`insert_particle`, subdividing on collision), then a
//! bottom-up mass/center-of-mass pass (`compute_mass`).
//!
//! Nodes live in an arena; the "pointers" of the paper are node ids. The
//! `down` dimension is the `children` array (uniquely forward — every node
//! has one parent); the `leaves` dimension is the particle list.

use crate::particle::{ParticleId, ParticleList};
use crate::vec3::{Vec3, ZERO};

/// Index of an octree node within its arena.
pub type NodeId = u32;

#[derive(Clone, Debug)]
/// One octree node: an internal point-mass or a leaf particle.
pub struct Node {
    /// Box center (internal nodes).
    pub center: Vec3,
    /// Half the box side length.
    pub half_width: f64,
    /// Total mass of the subtree (set by `compute_mass`).
    pub mass: f64,
    /// Center of mass of the subtree (set by `compute_mass`).
    pub com: Vec3,
    /// The eight `down`-dimension subtrees (Figure 5).
    pub children: [Option<NodeId>; 8],
    /// `Some(p)` for leaves: the particle this node represents.
    pub body: Option<ParticleId>,
}

impl Node {
    fn internal(center: Vec3, half_width: f64) -> Node {
        Node {
            center,
            half_width,
            mass: 0.0,
            com: ZERO,
            children: [None; 8],
            body: None,
        }
    }

    fn leaf(p: ParticleId) -> Node {
        Node {
            center: ZERO,
            half_width: 0.0,
            mass: 0.0,
            com: ZERO,
            children: [None; 8],
            body: Some(p),
        }
    }

    /// Is this a leaf (holds exactly one particle)?
    pub fn is_leaf(&self) -> bool {
        self.body.is_some()
    }
}

#[derive(Clone, Debug, Default)]
/// The octree arena plus its root.
pub struct Octree {
    nodes: Vec<Node>,
    /// The root node; `None` for an empty tree.
    pub root: Option<NodeId>,
}

impl Octree {
    /// The node `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Number of nodes (internal + leaf).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn alloc(&mut self, n: Node) -> NodeId {
        self.nodes.push(n);
        (self.nodes.len() - 1) as NodeId
    }

    /// Octant of `pos` relative to `center`: bit 0 = x≥cx, bit 1 = y≥cy,
    /// bit 2 = z≥cz.
    pub fn octant_of(center: Vec3, pos: Vec3) -> usize {
        (usize::from(pos.x >= center.x))
            | (usize::from(pos.y >= center.y) << 1)
            | (usize::from(pos.z >= center.z) << 2)
    }

    /// Center of child octant `q` of a node.
    pub fn child_center(center: Vec3, half_width: f64, q: usize) -> Vec3 {
        let h = half_width / 2.0;
        Vec3::new(
            center.x + if q & 1 != 0 { h } else { -h },
            center.y + if q & 2 != 0 { h } else { -h },
            center.z + if q & 4 != 0 { h } else { -h },
        )
    }

    fn contains(&self, id: NodeId, pos: Vec3) -> bool {
        let n = self.node(id);
        (pos - n.center).max_abs() < n.half_width
    }

    /// Grow the root box until it contains `pos` (the paper's
    /// `expand_box`), returning the (possibly new) root.
    fn expand_box(&mut self, pos: Vec3, root: Option<NodeId>) -> NodeId {
        let Some(mut root) = root else {
            return self.alloc(Node::internal(pos, 1.0));
        };
        while !self.contains(root, pos) {
            let (c, hw) = {
                let r = self.node(root);
                (r.center, r.half_width)
            };
            let nc = Vec3::new(
                c.x + if pos.x >= c.x { hw } else { -hw },
                c.y + if pos.y >= c.y { hw } else { -hw },
                c.z + if pos.z >= c.z { hw } else { -hw },
            );
            let new_root = self.alloc(Node::internal(nc, hw * 2.0));
            let q = Self::octant_of(nc, c);
            self.nodes[new_root as usize].children[q] = Some(root);
            root = new_root;
        }
        root
    }

    /// Descend from `root` to an empty octant for particle `p`, subdividing
    /// when an octant is already occupied by another particle (the paper's
    /// `insert_particle`, including the order that produces the §4.3.2
    /// temporary sharing: the competitor is linked under the new internal
    /// node first, then the new node replaces it in the original tree).
    fn insert_particle(&mut self, p: ParticleId, plist: &ParticleList, root: NodeId) {
        let pos = plist.get(p).pos;
        let mut cur = root;
        loop {
            let (center, hw) = {
                let n = self.node(cur);
                (n.center, n.half_width)
            };
            let q = Self::octant_of(center, pos);
            match self.node(cur).children[q] {
                None => {
                    let leaf = self.alloc(Node::leaf(p));
                    self.nodes[cur as usize].children[q] = Some(leaf);
                    return;
                }
                Some(child) if self.node(child).is_leaf() => {
                    let competitor = child;
                    let cpos = plist.get(self.node(competitor).body.unwrap()).pos;
                    let m = self.alloc(Node::internal(Self::child_center(center, hw, q), hw / 2.0));
                    let qc = Self::octant_of(self.node(m).center, cpos);
                    // Temporary sharing: competitor reachable from both `cur`
                    // and `m` between these two statements (§4.3.2).
                    self.nodes[m as usize].children[qc] = Some(competitor);
                    self.nodes[cur as usize].children[q] = Some(m);
                    cur = m;
                }
                Some(child) => {
                    cur = child;
                }
            }
        }
    }

    /// Bottom-up mass and center-of-mass computation.
    fn compute_mass(&mut self, id: NodeId, plist: &ParticleList) -> (f64, Vec3) {
        if let Some(p) = self.node(id).body {
            let part = plist.get(p);
            self.nodes[id as usize].mass = part.mass;
            self.nodes[id as usize].com = part.pos;
            return (part.mass, part.pos * part.mass);
        }
        let mut mass = 0.0;
        let mut weighted = ZERO;
        for q in 0..8 {
            if let Some(c) = self.node(id).children[q] {
                let (m, w) = self.compute_mass(c, plist);
                mass += m;
                weighted += w;
            }
        }
        self.nodes[id as usize].mass = mass;
        self.nodes[id as usize].com = if mass > 0.0 { weighted / mass } else { ZERO };
        (mass, weighted)
    }

    /// Build the tree for the current particle positions — the paper's
    /// `build_tree`, walking the *leaf list* in link order.
    pub fn build(plist: &ParticleList) -> Octree {
        let mut tree = Octree::default();
        let mut root: Option<NodeId> = None;
        let mut p = plist.head();
        while let Some(id) = p {
            let pos = plist.get(id).pos;
            let r = tree.expand_box(pos, root);
            tree.insert_particle(id, plist, r);
            root = Some(r);
            p = plist.next_of(p);
        }
        if let Some(r) = root {
            tree.compute_mass(r, plist);
        }
        tree.root = root;
        tree
    }

    /// Depth of the tree (diagnostic).
    pub fn depth(&self) -> usize {
        fn rec(t: &Octree, id: NodeId) -> usize {
            1 + t
                .node(id)
                .children
                .iter()
                .flatten()
                .map(|c| rec(t, *c))
                .max()
                .unwrap_or(0)
        }
        self.root.map_or(0, |r| rec(self, r))
    }

    /// Number of leaves (must equal the particle count).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Structural validation: every node has at most one parent (the
    /// `uniquely forward` property of `down`), the root has none, and every
    /// particle appears in exactly one leaf. This is the run-time check the
    /// paper's §2.2 mentions compilers could generate from ADDS.
    pub fn validate_shape(&self, plist: &ParticleList) -> Result<(), String> {
        let mut parents = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for c in n.children.iter().flatten() {
                parents[*c as usize] += 1;
            }
        }
        let mut seen = vec![false; plist.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if parents[i] > 1 {
                return Err(format!("node {i} has {} parents", parents[i]));
            }
            if Some(i as NodeId) == self.root && parents[i] != 0 {
                return Err("root has a parent".into());
            }
            if let Some(p) = n.body {
                if seen[p as usize] {
                    return Err(format!("particle {p} appears in two leaves"));
                }
                seen[p as usize] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            if self.root.is_some() {
                return Err(format!("particle {missing} not in the tree"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::Particle;

    fn plist(points: &[[f64; 3]]) -> ParticleList {
        ParticleList::new(
            points
                .iter()
                .map(|p| Particle::at_rest(1.0, Vec3::from_array(*p)))
                .collect(),
        )
    }

    #[test]
    fn octant_numbering() {
        let c = ZERO;
        assert_eq!(Octree::octant_of(c, Vec3::new(-1.0, -1.0, -1.0)), 0);
        assert_eq!(Octree::octant_of(c, Vec3::new(1.0, -1.0, -1.0)), 1);
        assert_eq!(Octree::octant_of(c, Vec3::new(-1.0, 1.0, -1.0)), 2);
        assert_eq!(Octree::octant_of(c, Vec3::new(1.0, 1.0, 1.0)), 7);
    }

    #[test]
    fn child_center_offsets() {
        let cc = Octree::child_center(ZERO, 2.0, 7);
        assert_eq!(cc, Vec3::new(1.0, 1.0, 1.0));
        let cc = Octree::child_center(ZERO, 2.0, 0);
        assert_eq!(cc, Vec3::new(-1.0, -1.0, -1.0));
    }

    #[test]
    fn single_particle_tree() {
        let l = plist(&[[0.5, 0.5, 0.5]]);
        let t = Octree::build(&l);
        assert_eq!(t.leaf_count(), 1);
        assert!(t.root.is_some());
        t.validate_shape(&l).unwrap();
        let root = t.node(t.root.unwrap());
        assert_eq!(root.mass, 1.0);
        assert_eq!(root.com, Vec3::new(0.5, 0.5, 0.5));
    }

    #[test]
    fn two_distant_particles_expand_box() {
        let l = plist(&[[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]]);
        let t = Octree::build(&l);
        assert_eq!(t.leaf_count(), 2);
        t.validate_shape(&l).unwrap();
        // Root box must contain both.
        let root = t.node(t.root.unwrap());
        assert!(root.half_width >= 5.0);
        assert_eq!(root.mass, 2.0);
        assert_eq!(root.com, Vec3::new(5.0, 5.0, 5.0));
    }

    #[test]
    fn close_particles_subdivide() {
        let l = plist(&[[0.1, 0.1, 0.1], [0.11, 0.1, 0.1], [0.9, 0.9, 0.9]]);
        let t = Octree::build(&l);
        assert_eq!(t.leaf_count(), 3);
        assert!(
            t.depth() > 2,
            "collision forces subdivision: depth {}",
            t.depth()
        );
        t.validate_shape(&l).unwrap();
    }

    #[test]
    fn mass_conservation() {
        let pts: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let f = i as f64;
                [f.sin() * 3.0, f.cos() * 2.0, (f * 0.7).sin()]
            })
            .collect();
        let l = plist(&pts);
        let t = Octree::build(&l);
        assert_eq!(t.leaf_count(), 50);
        let root = t.node(t.root.unwrap());
        assert!((root.mass - 50.0).abs() < 1e-9);
        t.validate_shape(&l).unwrap();
    }

    #[test]
    fn empty_particle_list() {
        let l = plist(&[]);
        let t = Octree::build(&l);
        assert!(t.root.is_none());
        assert_eq!(t.leaf_count(), 0);
        t.validate_shape(&l).unwrap();
    }

    #[test]
    fn rebuild_after_motion_is_fresh() {
        let mut l = plist(&[[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]);
        let t1 = Octree::build(&l);
        l.get_mut(0).pos = Vec3::new(-5.0, 0.0, 0.0);
        let t2 = Octree::build(&l);
        t2.validate_shape(&l).unwrap();
        assert!(t2.node(t2.root.unwrap()).half_width >= t1.node(t1.root.unwrap()).half_width);
    }
}
