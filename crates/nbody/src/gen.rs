//! Particle initial-condition generators.
//!
//! The paper does not state its initial distribution; we provide a uniform
//! cube and the standard Plummer (1911) model used by the N-body community
//! (cf. Barnes & Hut 1986, Appel 1985). Both are seeded and deterministic.

use crate::particle::{Particle, ParticleList};
use crate::vec3::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// N equal-mass particles uniform in the cube [-1, 1]³, at rest.
pub fn uniform_cube(n: usize, seed: u64) -> ParticleList {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mass = 1.0 / n.max(1) as f64;
    ParticleList::new(
        (0..n)
            .map(|_| {
                Particle::at_rest(
                    mass,
                    Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ),
                )
            })
            .collect(),
    )
}

/// Plummer sphere: centrally concentrated cluster — the classic tree-code
/// workload, and deliberately *imbalanced* for static scheduling (denser
/// center ⇒ more expensive force evaluations), which is what shapes the
/// paper's sublinear speedups.
pub fn plummer(n: usize, seed: u64) -> ParticleList {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mass = 1.0 / n.max(1) as f64;
    let a = 1.0; // scale radius
    let particles = (0..n)
        .map(|_| {
            // Radius from the cumulative mass profile.
            let m: f64 = rng.gen_range(1e-6..1.0f64);
            let r = a / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
            let r = r.min(10.0 * a); // clip the rare far tail
                                     // Isotropic direction.
            let z: f64 = rng.gen_range(-1.0..1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let s = (1.0 - z * z).sqrt();
            let pos = Vec3::new(r * s * phi.cos(), r * s * phi.sin(), r * z);
            Particle::at_rest(mass, pos)
        })
        .collect();
    ParticleList::new(particles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_is_seed_deterministic() {
        let a = uniform_cube(32, 9);
        let b = uniform_cube(32, 9);
        assert_eq!(a.particles(), b.particles());
        let c = uniform_cube(32, 10);
        assert_ne!(a.particles(), c.particles());
    }

    #[test]
    fn uniform_cube_in_bounds() {
        let l = uniform_cube(100, 1);
        for p in l.particles() {
            assert!(p.pos.max_abs() <= 1.0);
            assert_eq!(p.vel, crate::vec3::ZERO);
        }
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        let l = plummer(500, 2);
        let inner = l.particles().iter().filter(|p| p.pos.norm() < 1.0).count();
        let outer = l.particles().iter().filter(|p| p.pos.norm() >= 1.0).count();
        // Half-mass radius of Plummer is ≈ 1.3a; the inner region should
        // hold a large fraction.
        assert!(inner > outer / 4, "inner {inner} outer {outer}");
        assert!(l.particles().iter().all(|p| p.pos.norm() <= 10.0 + 1e-9));
    }

    #[test]
    fn masses_sum_to_one() {
        for l in [uniform_cube(64, 3), plummer(64, 3)] {
            let total: f64 = l.particles().iter().map(|p| p.mass).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
