//! Minimal 3-vector used throughout the N-body code.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

#[derive(Clone, Copy, Debug, Default, PartialEq)]
/// A 3-vector of f64.
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO: Vec3 = Vec3 {
    x: 0.0,
    y: 0.0,
    z: 0.0,
};

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiply by scalar `s`.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Component-wise maximum absolute coordinate.
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// The components as an array.
    pub fn as_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Construct from an array.
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        self.scale(1.0 / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_norm() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
    }

    #[test]
    fn max_abs() {
        assert_eq!(Vec3::new(-7.0, 2.0, 3.0).max_abs(), 7.0);
        assert_eq!(ZERO.max_abs(), 0.0);
    }

    #[test]
    fn array_round_trip() {
        let a = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(a.as_array()), a);
    }
}
