//! Disjoint strided mutable views of a slice.
//!
//! The strip-mined loop of §4.3.3 has PE *i* write to list positions
//! `i, i+PEs, i+2·PEs, …` — provably disjoint index sets. This module is the
//! Rust embodiment of that proof: [`disjoint_strides`] splits one `&mut [T]`
//! into `k` writers, writer `i` being allowed exactly the indices
//! `≡ i (mod k)`. The `unsafe` inside is justified by the same invariant the
//! ADDS analysis establishes for the C loop: distinct residues ⇒ distinct
//! elements.

use std::marker::PhantomData;

/// A writer that may access only indices congruent to `offset` mod `stride`.
pub struct StrideWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    offset: usize,
    stride: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: each writer touches a disjoint set of elements (distinct residues
// mod `stride`), so sending writers to different threads cannot race.
unsafe impl<'a, T: Send> Send for StrideWriter<'a, T> {}

impl<'a, T> StrideWriter<'a, T> {
    /// The global indices this writer owns.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (self.offset..self.len).step_by(self.stride)
    }

    /// Mutable access to global index `i`. Panics if `i` is out of range or
    /// not owned by this writer — the panic is the runtime analogue of the
    /// compile-time disjointness proof.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        assert_eq!(
            i % self.stride,
            self.offset,
            "index {i} not owned by stride writer {} (mod {})",
            self.offset,
            self.stride
        );
        // SAFETY: bounds checked above; ownership of residue class
        // guarantees no other writer aliases this element; lifetime tied to
        // the original borrow by `_marker`.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Write to global index `i`.
    pub fn set(&mut self, i: usize, value: T) {
        *self.get_mut(i) = value;
    }

    /// Does this writer own global index `i`?
    pub fn owns(&self, i: usize) -> bool {
        i < self.len && i % self.stride == self.offset
    }
}

/// Split `slice` into `k ≥ 1` stride-disjoint writers.
pub fn disjoint_strides<T>(slice: &mut [T], k: usize) -> Vec<StrideWriter<'_, T>> {
    assert!(k >= 1, "need at least one stride class");
    let ptr = slice.as_mut_ptr();
    let len = slice.len();
    (0..k)
        .map(|offset| StrideWriter {
            ptr,
            len,
            offset,
            stride: k,
            _marker: PhantomData,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_cover_all_indices_disjointly() {
        let mut data = vec![0usize; 17];
        let writers = disjoint_strides(&mut data, 4);
        let mut seen = vec![0usize; 17];
        for w in &writers {
            for i in w.indices() {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|c| *c == 1), "{seen:?}");
    }

    #[test]
    fn writes_land_in_the_right_slots() {
        let mut data = vec![0usize; 10];
        let mut writers = disjoint_strides(&mut data, 3);
        for w in writers.iter_mut() {
            let idxs: Vec<usize> = w.indices().collect();
            for i in idxs {
                w.set(i, i * 10);
            }
        }
        drop(writers);
        assert_eq!(data, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_index_panics() {
        let mut data = vec![0u8; 8];
        let mut writers = disjoint_strides(&mut data, 2);
        writers[0].set(1, 9); // index 1 belongs to writer 1
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut data = vec![0u8; 4];
        let mut writers = disjoint_strides(&mut data, 2);
        writers[0].set(8, 1);
    }

    #[test]
    fn parallel_writes_are_race_free() {
        let mut data = vec![0usize; 1000];
        let writers = disjoint_strides(&mut data, 8);
        crossbeam::scope(|s| {
            for mut w in writers {
                s.spawn(move |_| {
                    let idxs: Vec<usize> = w.indices().collect();
                    for i in idxs {
                        w.set(i, i + 1);
                    }
                });
            }
        })
        .unwrap();
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn single_stride_owns_everything() {
        let mut data = vec![0u8; 5];
        let mut w = disjoint_strides(&mut data, 1);
        assert_eq!(w[0].indices().count(), 5);
        for i in 0..5 {
            assert!(w[0].owns(i));
            w[0].set(i, i as u8);
        }
    }
}
