//! The simulation drivers: the paper's per-time-step algorithm
//! (`build_tree`; BHL1: forces; BHL2: integrate) in sequential form, plus
//! the O(N²) baseline.

use crate::force::{accumulate_force, direct_force, DEFAULT_EPS, DEFAULT_THETA};
use crate::octree::Octree;
use crate::particle::{ParticleId, ParticleList};
use crate::vec3::{Vec3, ZERO};

#[derive(Clone, Copy, Debug)]
/// Physical and algorithmic parameters of a run.
pub struct SimParams {
    /// Barnes–Hut opening angle.
    pub theta: f64,
    /// Time step.
    pub dt: f64,
    /// Gravitational softening.
    pub eps: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            theta: DEFAULT_THETA,
            dt: 0.001,
            eps: DEFAULT_EPS,
        }
    }
}

/// A Barnes–Hut simulation over a particle leaf list.
#[derive(Clone, Debug)]
pub struct Simulation {
    /// The bodies and their leaf chain.
    pub particles: ParticleList,
    /// Run parameters.
    pub params: SimParams,
    /// Per-particle forces of the current step (BHL1's output).
    pub forces: Vec<Vec3>,
    /// Tree statistics from the last step (diagnostics).
    pub last_tree_nodes: usize,
    /// Depth of the most recently built tree (instrumentation).
    pub last_tree_depth: usize,
}

impl Simulation {
    /// A simulation over `particles`.
    pub fn new(particles: ParticleList, params: SimParams) -> Simulation {
        let n = particles.len();
        Simulation {
            particles,
            params,
            forces: vec![ZERO; n],
            last_tree_nodes: 0,
            last_tree_depth: 0,
        }
    }

    /// One sequential Barnes–Hut time step: rebuild, BHL1, BHL2 — walking
    /// the leaf list exactly as the paper's loops do.
    pub fn step_sequential(&mut self) {
        let tree = Octree::build(&self.particles);
        self.last_tree_nodes = tree.len();
        self.last_tree_depth = tree.depth();

        // BHL1: force on each particle.
        let mut p = self.particles.head();
        while let Some(id) = p {
            self.forces[id as usize] = accumulate_force(
                &tree,
                &self.particles,
                id,
                tree.root,
                self.params.theta,
                self.params.eps,
            );
            p = self.particles.next_of(p);
        }

        // BHL2: new velocity and position.
        let dt = self.params.dt;
        let mut p = self.particles.head();
        while let Some(id) = p {
            let f = self.forces[id as usize];
            let part = self.particles.get_mut(id);
            part.vel += f * (dt / part.mass);
            part.pos += part.vel * dt;
            p = self.particles.next_of(p);
        }
    }

    /// One O(N²) direct-sum step (the §4.1 baseline).
    pub fn step_direct(&mut self) {
        let n = self.particles.len();
        for i in 0..n as ParticleId {
            self.forces[i as usize] = direct_force(&self.particles, i, self.params.eps);
        }
        let dt = self.params.dt;
        for i in 0..n {
            let f = self.forces[i];
            let part = &mut self.particles.particles_mut()[i];
            part.vel += f * (dt / part.mass);
            part.pos += part.vel * dt;
        }
    }

    /// Run `steps` sequential BH steps.
    pub fn run_sequential(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step_sequential();
        }
    }

    /// Run `steps` direct-sum steps.
    pub fn run_direct(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step_direct();
        }
    }

    /// Approximate total energy (kinetic + pairwise potential), for
    /// conservation diagnostics.
    pub fn total_energy(&self) -> f64 {
        let kin = self.particles.kinetic_energy();
        let parts = self.particles.particles();
        let mut pot = 0.0;
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                let d = (parts[i].pos - parts[j].pos).norm().max(self.params.eps);
                pot -= parts[i].mass * parts[j].mass / d;
            }
        }
        kin + pot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::particle::Particle;

    fn two_body() -> ParticleList {
        // Circular-ish binary.
        ParticleList::new(vec![
            Particle {
                mass: 1.0,
                pos: Vec3::new(-0.5, 0.0, 0.0),
                vel: Vec3::new(0.0, -0.7, 0.0),
            },
            Particle {
                mass: 1.0,
                pos: Vec3::new(0.5, 0.0, 0.0),
                vel: Vec3::new(0.0, 0.7, 0.0),
            },
        ])
    }

    #[test]
    fn bh_and_direct_agree_for_small_steps() {
        let params = SimParams {
            theta: 0.0, // exact
            dt: 0.001,
            eps: 1e-4,
        };
        let mut a = Simulation::new(two_body(), params);
        let mut b = Simulation::new(two_body(), params);
        a.run_sequential(10);
        b.run_direct(10);
        for (x, y) in a.particles.particles().iter().zip(b.particles.particles()) {
            assert!((x.pos - y.pos).norm() < 1e-10);
            assert!((x.vel - y.vel).norm() < 1e-10);
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let bodies = gen::uniform_cube(64, 42);
        let mut sim = Simulation::new(bodies, SimParams::default());
        let p0 = sim.particles.momentum();
        sim.run_sequential(5);
        let p1 = sim.particles.momentum();
        // theta > 0 breaks exact symmetry; momentum drift must stay small.
        assert!(
            (p1 - p0).norm() < 1e-2,
            "momentum drift {} too large",
            (p1 - p0).norm()
        );
    }

    #[test]
    fn energy_roughly_conserved_over_short_run() {
        let bodies = gen::plummer(32, 7);
        let mut sim = Simulation::new(
            bodies,
            SimParams {
                theta: 0.3,
                dt: 0.0005,
                eps: 0.05,
            },
        );
        let e0 = sim.total_energy();
        sim.run_sequential(20);
        let e1 = sim.total_energy();
        let rel = ((e1 - e0) / e0.abs()).abs();
        assert!(rel < 0.05, "energy drift {rel}");
    }

    #[test]
    fn tree_stats_are_recorded() {
        let mut sim = Simulation::new(gen::uniform_cube(32, 3), SimParams::default());
        sim.step_sequential();
        assert!(sim.last_tree_nodes >= 32);
        assert!(sim.last_tree_depth >= 2);
    }

    #[test]
    fn empty_simulation_steps() {
        let mut sim = Simulation::new(ParticleList::new(vec![]), SimParams::default());
        sim.run_sequential(3);
        sim.run_direct(3);
    }
}
