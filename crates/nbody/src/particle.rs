//! Particles and the leaf list.
//!
//! Particles live in an arena and are threaded onto a one-way linked list
//! (the `leaves` dimension of the paper's octree, Figure 5). The parallel
//! drivers traverse this *list*, not the array — the strip-mined loop of
//! §4.3.3 is a pointer-chasing loop, and we keep it one.

use crate::vec3::{Vec3, ZERO};

/// Index of a particle within the arena.
pub type ParticleId = u32;

#[derive(Clone, Copy, Debug, PartialEq)]
/// One body: mass, position, velocity.
pub struct Particle {
    /// Particle mass.
    pub mass: f64,
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
}

impl Particle {
    /// A particle at `pos` with zero velocity.
    pub fn at_rest(mass: f64, pos: Vec3) -> Particle {
        Particle {
            mass,
            pos,
            vel: ZERO,
        }
    }
}

/// The particle arena plus the one-way leaf list over it.
#[derive(Clone, Debug, Default)]
pub struct ParticleList {
    particles: Vec<Particle>,
    next: Vec<Option<ParticleId>>,
    head: Option<ParticleId>,
}

impl ParticleList {
    /// Wrap `particles` and chain them in index order.
    pub fn new(particles: Vec<Particle>) -> ParticleList {
        let n = particles.len();
        let next = (0..n)
            .map(|i| {
                if i + 1 < n {
                    Some((i + 1) as ParticleId)
                } else {
                    None
                }
            })
            .collect();
        ParticleList {
            particles,
            next,
            head: if n == 0 { None } else { Some(0) },
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether there are no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// First particle of the leaf chain.
    pub fn head(&self) -> Option<ParticleId> {
        self.head
    }

    /// Follow the `next` link. `None` in, `None` out — speculative
    /// traversability (§3.2) at the API level.
    pub fn next_of(&self, p: Option<ParticleId>) -> Option<ParticleId> {
        p.and_then(|i| self.next.get(i as usize).copied().flatten())
    }

    /// The particle `id`.
    pub fn get(&self, id: ParticleId) -> &Particle {
        &self.particles[id as usize]
    }

    /// Mutable access to particle `id`.
    pub fn get_mut(&mut self, id: ParticleId) -> &mut Particle {
        &mut self.particles[id as usize]
    }

    /// The underlying arena, in index order.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Mutable access to the arena.
    pub fn particles_mut(&mut self) -> &mut [Particle] {
        &mut self.particles
    }

    /// Iterate the leaf chain in link order.
    pub fn iter_chain(&self) -> ChainIter<'_> {
        ChainIter {
            list: self,
            cur: self.head,
        }
    }

    /// Total momentum (diagnostic).
    pub fn momentum(&self) -> Vec3 {
        self.particles
            .iter()
            .fold(ZERO, |acc, p| acc + p.vel * p.mass)
    }

    /// Total kinetic energy (diagnostic).
    pub fn kinetic_energy(&self) -> f64 {
        self.particles
            .iter()
            .map(|p| 0.5 * p.mass * p.vel.norm_sq())
            .sum()
    }
}

/// Iterator over the leaf chain (`next` links).
pub struct ChainIter<'a> {
    list: &'a ParticleList,
    cur: Option<ParticleId>,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = ParticleId;
    fn next(&mut self) -> Option<ParticleId> {
        let c = self.cur?;
        self.cur = self.list.next_of(Some(c));
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> ParticleList {
        ParticleList::new(
            (0..n)
                .map(|i| Particle::at_rest(1.0, Vec3::new(i as f64, 0.0, 0.0)))
                .collect(),
        )
    }

    #[test]
    fn chain_visits_every_particle_once() {
        let l = mk(5);
        let order: Vec<ParticleId> = l.iter_chain().collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_list() {
        let l = mk(0);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        assert_eq!(l.iter_chain().count(), 0);
    }

    #[test]
    fn speculative_next_of_none_is_none() {
        let l = mk(2);
        assert_eq!(l.next_of(None), None);
        let last = Some(1);
        assert_eq!(l.next_of(last), None);
        assert_eq!(l.next_of(l.next_of(last)), None);
    }

    #[test]
    fn momentum_and_energy() {
        let mut l = mk(2);
        l.get_mut(0).vel = Vec3::new(1.0, 0.0, 0.0);
        l.get_mut(1).vel = Vec3::new(-1.0, 0.0, 0.0);
        assert_eq!(l.momentum(), ZERO);
        assert_eq!(l.kinetic_energy(), 1.0);
    }
}
