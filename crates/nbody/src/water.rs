//! The §4.2 aside, made runnable: a SPLASH-Water-style O(N²) molecular
//! dynamics code over **arrays and iteration**.
//!
//! > "the Water benchmark from the SPLASH suite \[SWG91\] is a similar
//! > N-body simulator of water molecules. It is based however on a O(N²)
//! > algorithm using arrays and iteration, most likely for ease of
//! > parallelization."
//!
//! The point of this module is structural, not chemical: an array-based
//! all-pairs code parallelizes *trivially* — each thread owns a contiguous
//! slice of the force array, no alias analysis required — which is exactly
//! why (the paper argues) authors of scientific codes retreated from
//! pointer structures. The Barnes–Hut octree in the sibling modules is the
//! counterpoint: asymptotically better, but its parallelization needs the
//! shape knowledge ADDS provides.
//!
//! Simplifications relative to real SPLASH Water (documented per
//! DESIGN.md §5): point molecules with a truncated-shifted Lennard-Jones
//! pair potential and velocity-Verlet integration, instead of rigid
//! three-site molecules with a predictor–corrector. The array layout, the
//! O(N²) doubly nested force loop, and the slice-parallel decomposition —
//! the properties the paper's aside concerns — are preserved.

use crate::vec3::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One point molecule in the array-of-structs layout SPLASH-era codes used.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Molecule {
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Force accumulated by the last step.
    pub force: Vec3,
}

/// Parameters of the truncated-shifted Lennard-Jones potential.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaterParams {
    /// LJ well depth ε.
    pub epsilon: f64,
    /// LJ length scale σ.
    pub sigma: f64,
    /// Interaction cutoff radius (potential shifted to 0 here).
    pub cutoff: f64,
    /// Integration step.
    pub dt: f64,
}

impl Default for WaterParams {
    fn default() -> WaterParams {
        WaterParams {
            epsilon: 1.0,
            sigma: 1.0,
            cutoff: 2.5,
            dt: 1e-4,
        }
    }
}

/// An O(N²) arrays-and-iteration MD simulation.
#[derive(Clone, Debug)]
pub struct WaterSim {
    /// Potential and integration parameters.
    pub params: WaterParams,
    mols: Vec<Molecule>,
}

/// Deterministic initial conditions: molecules on a cubic lattice at
/// roughly liquid density (spacing ≈ 1.1 σ), with a small seeded thermal
/// perturbation and zero net momentum.
pub fn lattice(n: usize, seed: u64, params: WaterParams) -> WaterSim {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = (n as f64).cbrt().ceil() as usize;
    let spacing = 1.1 * params.sigma;
    let mut mols = Vec::with_capacity(n);
    'fill: for ix in 0..side {
        for iy in 0..side {
            for iz in 0..side {
                if mols.len() == n {
                    break 'fill;
                }
                let mut jitter = || (rng_f(&mut rng) - 0.5) * 0.05 * spacing;
                let pos = Vec3::new(
                    ix as f64 * spacing + jitter(),
                    iy as f64 * spacing + jitter(),
                    iz as f64 * spacing + jitter(),
                );
                let vel = Vec3::new(
                    (rng_f(&mut rng) - 0.5) * 0.1,
                    (rng_f(&mut rng) - 0.5) * 0.1,
                    (rng_f(&mut rng) - 0.5) * 0.1,
                );
                mols.push(Molecule {
                    pos,
                    vel,
                    force: Vec3::default(),
                });
            }
        }
    }
    // Remove net drift so the box doesn't wander.
    if !mols.is_empty() {
        let mut p = Vec3::default();
        for m in &mols {
            p += m.vel;
        }
        let drift = p.scale(1.0 / mols.len() as f64);
        for m in &mut mols {
            m.vel -= drift;
        }
    }
    WaterSim { params, mols }
}

fn rng_f(rng: &mut SmallRng) -> f64 {
    rng.gen::<f64>()
}

/// LJ force on a molecule at separation `d` (pointing from the partner
/// toward the molecule), truncated at the cutoff.
fn lj_force(d: Vec3, p: &WaterParams) -> Vec3 {
    let r2 = d.norm_sq();
    if r2 == 0.0 || r2 > p.cutoff * p.cutoff {
        return Vec3::default();
    }
    let s2 = p.sigma * p.sigma / r2;
    let s6 = s2 * s2 * s2;
    let s12 = s6 * s6;
    // F = 24ε (2 σ¹²/r¹² − σ⁶/r⁶) / r² · d
    let mag = 24.0 * p.epsilon * (2.0 * s12 - s6) / r2;
    d.scale(mag)
}

/// LJ pair potential, shifted so it is 0 at the cutoff.
fn lj_potential(r2: f64, p: &WaterParams) -> f64 {
    if r2 == 0.0 || r2 > p.cutoff * p.cutoff {
        return 0.0;
    }
    let v = |r2: f64| {
        let s2 = p.sigma * p.sigma / r2;
        let s6 = s2 * s2 * s2;
        4.0 * p.epsilon * (s6 * s6 - s6)
    };
    v(r2) - v(p.cutoff * p.cutoff)
}

impl WaterSim {
    /// The molecule array.
    pub fn molecules(&self) -> &[Molecule] {
        &self.mols
    }

    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.mols.len()
    }

    /// Whether the box is empty.
    pub fn is_empty(&self) -> bool {
        self.mols.is_empty()
    }

    /// Compute the force on molecule `i` by a full sweep over all
    /// partners. Both the sequential and the parallel drivers use this,
    /// in the same order, so they agree bitwise.
    fn force_on(&self, i: usize) -> Vec3 {
        let mut f = Vec3::default();
        let pi = self.mols[i].pos;
        for (j, mj) in self.mols.iter().enumerate() {
            if j != i {
                f += lj_force(pi - mj.pos, &self.params);
            }
        }
        f
    }

    /// One velocity-Verlet step with the O(N²) force loop, sequentially.
    ///
    /// This is the *array-and-iteration* structure of the paper's aside:
    /// two perfectly nested counted loops over indices — the kind of code
    /// 1990s parallelizing compilers already handled.
    pub fn step_sequential(&mut self) {
        let dt = self.params.dt;
        for i in 0..self.mols.len() {
            let a = self.mols[i].force; // force from the previous step
            self.mols[i].vel += a.scale(0.5 * dt);
            let v = self.mols[i].vel;
            self.mols[i].pos += v.scale(dt);
        }
        for i in 0..self.mols.len() {
            self.mols[i].force = self.force_on(i);
        }
        let dt = self.params.dt;
        for m in &mut self.mols {
            let f = m.force;
            m.vel += f.scale(0.5 * dt);
        }
    }

    /// The same step with the force loop cut into contiguous slices, one
    /// per thread. No shape analysis is needed to see this is safe: each
    /// thread writes `force[lo..hi]` and reads positions immutably —
    /// Rust's borrow checker proves what, for the pointer code, required
    /// the ADDS declaration. Bitwise-identical to [`Self::step_sequential`].
    pub fn step_parallel(&mut self, threads: usize) {
        let threads = threads.max(1);
        let dt = self.params.dt;
        for i in 0..self.mols.len() {
            let a = self.mols[i].force;
            self.mols[i].vel += a.scale(0.5 * dt);
            let v = self.mols[i].vel;
            self.mols[i].pos += v.scale(dt);
        }

        let n = self.mols.len();
        let mut forces = vec![Vec3::default(); n];
        let chunk = n.div_ceil(threads).max(1);
        // Immutable self-borrow for readers; disjoint chunks for writers.
        let me: &WaterSim = self;
        crossbeam::scope(|s| {
            for (t, out) in forces.chunks_mut(chunk).enumerate() {
                let lo = t * chunk;
                s.spawn(move |_| {
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = me.force_on(lo + k);
                    }
                });
            }
        })
        .expect("force workers");

        for (m, f) in self.mols.iter_mut().zip(forces) {
            m.force = f;
            m.vel += f.scale(0.5 * dt);
        }
    }

    /// The classic sequential optimization: Newton's third law halves the
    /// pair work but makes the writes scatter (`force[i]` **and**
    /// `force[j]`), which is precisely what breaks the trivial slice
    /// decomposition. Kept for the ablation: fast sequential baseline,
    /// hostile to parallelization.
    pub fn step_sequential_newton3(&mut self) {
        let dt = self.params.dt;
        for i in 0..self.mols.len() {
            let a = self.mols[i].force;
            self.mols[i].vel += a.scale(0.5 * dt);
            let v = self.mols[i].vel;
            self.mols[i].pos += v.scale(dt);
        }
        let n = self.mols.len();
        let mut forces = vec![Vec3::default(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let f = lj_force(self.mols[i].pos - self.mols[j].pos, &self.params);
                forces[i] += f;
                forces[j] -= f;
            }
        }
        for (m, f) in self.mols.iter_mut().zip(forces) {
            m.force = f;
            m.vel += f.scale(0.5 * dt);
        }
    }

    /// Run `steps` steps; `threads == 1` means sequential.
    pub fn run(&mut self, steps: usize, threads: usize) {
        // Prime forces so the first half-kick uses the true field.
        for i in 0..self.mols.len() {
            self.mols[i].force = self.force_on(i);
        }
        for _ in 0..steps {
            if threads <= 1 {
                self.step_sequential();
            } else {
                self.step_parallel(threads);
            }
        }
    }

    /// Total energy (kinetic + shifted-LJ potential); conserved up to
    /// integration error, used by the sanity tests.
    pub fn energy(&self) -> f64 {
        let mut e = 0.0;
        for m in &self.mols {
            e += 0.5 * m.vel.norm_sq();
        }
        for i in 0..self.mols.len() {
            for j in (i + 1)..self.mols.len() {
                let r2 = (self.mols[i].pos - self.mols[j].pos).norm_sq();
                e += lj_potential(r2, &self.params);
            }
        }
        e
    }

    /// Net momentum; conserved exactly by the pair forces (up to fp
    /// rounding) and ≈ 0 for [`lattice`] initial conditions.
    pub fn momentum(&self) -> Vec3 {
        let mut p = Vec3::default();
        for m in &self.mols {
            p += m.vel;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize) -> WaterSim {
        lattice(n, 42, WaterParams::default())
    }

    #[test]
    fn lattice_is_deterministic_and_sized() {
        let a = sim(27);
        let b = sim(27);
        assert_eq!(a.len(), 27);
        assert_eq!(a.molecules(), b.molecules());
        let c = lattice(27, 43, WaterParams::default());
        assert_ne!(a.molecules(), c.molecules(), "seed must matter");
    }

    #[test]
    fn lattice_has_no_net_momentum() {
        let s = sim(64);
        assert!(s.momentum().norm() < 1e-12, "{:?}", s.momentum());
    }

    #[test]
    fn lattice_molecules_are_separated() {
        let s = sim(64);
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let d = (s.molecules()[i].pos - s.molecules()[j].pos).norm();
                assert!(d > 0.5, "molecules {i},{j} overlap: {d}");
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        for threads in [2, 3, 7] {
            let mut a = sim(40);
            let mut b = sim(40);
            a.run(3, 1);
            b.run(3, threads);
            assert_eq!(a.molecules(), b.molecules(), "threads={threads}");
        }
    }

    #[test]
    fn newton3_agrees_with_full_sweep() {
        let mut a = sim(30);
        let mut b = sim(30);
        // Prime, then one step of each.
        a.run(1, 1);
        for i in 0..b.mols.len() {
            b.mols[i].force = b.force_on(i);
        }
        b.step_sequential_newton3();
        for (x, y) in a.molecules().iter().zip(b.molecules()) {
            assert!((x.pos - y.pos).norm() < 1e-9);
            assert!((x.vel - y.vel).norm() < 1e-9);
        }
    }

    #[test]
    fn energy_is_roughly_conserved() {
        let mut s = sim(27);
        for i in 0..s.mols.len() {
            s.mols[i].force = s.force_on(i);
        }
        let e0 = s.energy();
        for _ in 0..50 {
            s.step_sequential();
        }
        let e1 = s.energy();
        let scale = e0.abs().max(1.0);
        assert!(
            (e1 - e0).abs() / scale < 0.05,
            "energy drifted: {e0} -> {e1}"
        );
    }

    #[test]
    fn momentum_is_conserved_through_steps() {
        let mut s = sim(27);
        s.run(20, 1);
        assert!(s.momentum().norm() < 1e-9, "{:?}", s.momentum());
    }

    #[test]
    fn pair_forces_are_antisymmetric() {
        let p = WaterParams::default();
        let d = Vec3::new(0.9, 0.3, -0.2);
        let f = lj_force(d, &p);
        let g = lj_force(d.scale(-1.0), &p);
        assert!((f + g).norm() < 1e-12);
    }

    #[test]
    fn cutoff_truncates_force_and_potential() {
        let p = WaterParams::default();
        let far = Vec3::new(p.cutoff + 0.1, 0.0, 0.0);
        assert_eq!(lj_force(far, &p), Vec3::default());
        assert_eq!(lj_potential(far.norm_sq(), &p), 0.0);
        // The shift makes the potential continuous at the cutoff.
        let eps = 1e-6;
        let just_in = (p.cutoff - eps) * (p.cutoff - eps);
        assert!(lj_potential(just_in, &p).abs() < 1e-4);
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        for n in [0, 1, 2] {
            let mut s = sim(n);
            s.run(2, 1);
            let mut t = sim(n);
            t.run(2, 4);
            assert_eq!(s.molecules(), t.molecules());
        }
    }
}
