//! Cross-validation of the two §4 execution substrates on the SAME
//! workload: the real-thread native Barnes–Hut (`adds-nbody`) against the
//! simulated Sequent-class machine running the IL program (`adds-machine`).
//!
//! Two consistency properties, both tolerance-based:
//!
//! 1. **Physics**: the native simulation and the IL interpretation implement
//!    the same algorithm (same incremental tree build, same opening
//!    criterion, same integrator), so after a few steps their particle
//!    states must agree closely — the only divergence sources are the
//!    softening formula (`dist + ε` in IL vs `sqrt(dist² + ε²)` natively)
//!    and floating-point summation order.
//! 2. **Speedup model**: the simulated machine's parallel speedup at P PEs
//!    must be consistent with the work-balance model derived from the
//!    native tree: total force-phase work divided by the busiest static
//!    stripe's work (the §4.3.3 schedule both substrates implement).
//!    Simulated cycles also pay the sequential tree build and barrier
//!    costs, so the model is an upper bound the measurement must approach
//!    but not exceed by more than the tolerance.
//!
//! Wall-clock is deliberately NOT asserted — CI machines make thread timing
//! meaningless; the machine's deterministic cycle counter plays that role.

use adds_machine::{run_barnes_hut, uniform_cloud, BodyInit, CostModel};
use adds_nbody::force::force_visits;
use adds_nbody::octree::Octree;
use adds_nbody::particle::{Particle, ParticleList};
use adds_nbody::sim::{SimParams, Simulation};
use adds_nbody::vec3::Vec3;

const BODIES: usize = 48;
const STEPS: usize = 2;
const PES: usize = 4;
const THETA: f64 = 0.5;
const DT: f64 = 0.001;
const EPS: f64 = 1e-4; // matches the IL program's hard-coded softening

fn native_particles(bodies: &[BodyInit]) -> ParticleList {
    ParticleList::new(
        bodies
            .iter()
            .map(|b| Particle {
                mass: b.mass,
                pos: Vec3::new(b.pos[0], b.pos[1], b.pos[2]),
                vel: Vec3::new(b.vel[0], b.vel[1], b.vel[2]),
            })
            .collect(),
    )
}

fn machine_runs(bodies: &[BodyInit]) -> (adds_machine::SimRun, adds_machine::SimRun) {
    let src = adds_lang::programs::BARNES_HUT;
    let tp_seq = adds_lang::check_source(src).unwrap();
    let transformed = adds_core::parallelize_to_source(src).unwrap();
    let tp_par = adds_lang::check_source(&transformed).unwrap();
    let seq = run_barnes_hut(
        &tp_seq,
        bodies,
        STEPS as i64,
        THETA,
        DT,
        1,
        CostModel::sequent(),
        false,
    )
    .unwrap();
    let par = run_barnes_hut(
        &tp_par,
        bodies,
        STEPS as i64,
        THETA,
        DT,
        PES,
        CostModel::sequent(),
        true,
    )
    .unwrap();
    (seq, par)
}

#[test]
fn real_thread_result_matches_simulated_machine() {
    let bodies = uniform_cloud(BODIES, 11);
    let (_, par) = machine_runs(&bodies);
    assert_eq!(par.conflict_count, 0);

    // Real threads on the native implementation, same workload.
    let mut sim = Simulation::new(
        native_particles(&bodies),
        SimParams {
            theta: THETA,
            dt: DT,
            eps: EPS,
        },
    );
    sim.run_parallel(STEPS, PES);

    let mut worst = 0.0f64;
    for (a, b) in par.bodies.iter().zip(sim.particles.particles()) {
        for d in 0..3 {
            worst = worst.max((a.pos[d] - [b.pos.x, b.pos.y, b.pos.z][d]).abs());
            worst = worst.max((a.vel[d] - [b.vel.x, b.vel.y, b.vel.z][d]).abs());
        }
    }
    // The softening formulas differ at O(ε) (ε = 1e-4); everything else is
    // the same algorithm in two implementations, so agreement must hold at
    // the ε scale (observed ~2e-6 on this workload; positions are O(1)).
    assert!(
        worst < EPS,
        "native real-thread result diverged from the simulated machine: {worst:e}"
    );
}

#[test]
fn simulated_speedup_is_consistent_with_native_work_model() {
    let bodies = uniform_cloud(BODIES, 11);
    let (seq, par) = machine_runs(&bodies);
    let simulated = seq.cycles as f64 / par.cycles as f64;
    assert!(par.parallel_rounds > 0);

    // Work-balance model from the native tree: per-particle force work is
    // the number of tree nodes the recursion visits; the §4.3.3 static
    // strip assigns particle i to PE i mod P.
    let plist = native_particles(&bodies);
    let tree = Octree::build(&plist);
    let mut per_pe = [0usize; PES];
    let mut total = 0usize;
    for p in 0..BODIES {
        let visits = force_visits(&tree, &plist, p as u32, tree.root, THETA, EPS);
        per_pe[p % PES] += visits;
        total += visits;
    }
    let model = total as f64 / *per_pe.iter().max().unwrap() as f64;

    // The model ignores the sequential tree build, barriers, and the (well
    // balanced) BHL2 — the measurement must land below the model but within
    // tolerance of it, and both must show real parallelism.
    assert!(
        simulated > 1.5,
        "simulated machine shows no parallelism: {simulated:.2}"
    );
    assert!(
        simulated <= model * 1.10,
        "simulated speedup {simulated:.2} exceeds the work-balance bound {model:.2}"
    );
    assert!(
        simulated >= model * 0.55,
        "simulated speedup {simulated:.2} inconsistent with work model {model:.2}: \
         more than 45% lost to serial sections on this workload"
    );
}
