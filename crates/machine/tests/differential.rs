//! Differential suite: the bytecode VM must match the tree-walking
//! interpreter on output, final heap, `ExecStats`, cycle counts, shape
//! reports, and conflict sets for every corpus program (original and
//! pipeline-parallelized), across machine configurations — including a
//! proptest sweep over random configurations (PEs 1..8, speculative
//! on/off, conflict detection on/off) and fuel-truncated runs.

use adds_lang::programs;
use adds_lang::types::{check_source, TypedProgram};
use adds_machine::diff::{
    assert_equivalent, assert_equivalent_with, run_pair, run_pair_with, workloads,
};
use adds_machine::{CompileOptions, CostModel, Exec, MachineConfig, Value};
use proptest::prelude::*;

/// One corpus workload the harness knows how to drive.
struct Workload {
    label: &'static str,
    tp: TypedProgram,
    entry: &'static str,
    setup: fn(&mut dyn Exec) -> Vec<Value>,
}

fn parallelized(src: &str) -> TypedProgram {
    let out = adds_core::parallelize_to_source(src).expect("pipeline runs");
    check_source(&out).expect("transformed source re-checks")
}

fn corpus() -> Vec<Workload> {
    fn scale_args(m: &mut dyn Exec) -> Vec<Value> {
        vec![workloads::scale_list(m, 23), Value::Int(3)]
    }
    fn sum_args(m: &mut dyn Exec) -> Vec<Value> {
        vec![workloads::sum_list(m, 17)]
    }
    fn orth_args(m: &mut dyn Exec) -> Vec<Value> {
        vec![workloads::orth_rows(m, &[4, 1, 7, 3, 5]), Value::Int(3)]
    }
    fn bh_args(m: &mut dyn Exec) -> Vec<Value> {
        let bodies = adds_machine::uniform_cloud(12, 11);
        let head = adds_machine::sequent::build_particles(m, &bodies);
        vec![head, Value::Int(1), Value::Real(0.7), Value::Real(0.01)]
    }

    vec![
        Workload {
            label: "list_scale_plain",
            tp: check_source(programs::LIST_SCALE_PLAIN).unwrap(),
            entry: "scale",
            setup: scale_args,
        },
        Workload {
            label: "list_scale_adds",
            tp: check_source(programs::LIST_SCALE_ADDS).unwrap(),
            entry: "scale",
            setup: scale_args,
        },
        Workload {
            label: "list_scale_adds (parallelized)",
            tp: parallelized(programs::LIST_SCALE_ADDS),
            entry: "scale",
            setup: scale_args,
        },
        Workload {
            label: "list_sum",
            tp: check_source(programs::LIST_SUM).unwrap(),
            entry: "sum",
            setup: sum_args,
        },
        Workload {
            label: "subtree_move",
            tp: check_source(programs::SUBTREE_MOVE).unwrap(),
            entry: "move_subtree",
            setup: |m| workloads::bintree_pair(m),
        },
        Workload {
            label: "orth_row_scale",
            tp: check_source(programs::ORTH_ROW_SCALE).unwrap(),
            entry: "scale_rows",
            setup: orth_args,
        },
        Workload {
            label: "orth_row_scale (parallelized)",
            tp: parallelized(programs::ORTH_ROW_SCALE),
            entry: "scale_rows",
            setup: orth_args,
        },
        Workload {
            label: "barnes_hut",
            tp: check_source(programs::BARNES_HUT).unwrap(),
            entry: "simulate",
            setup: bh_args,
        },
        Workload {
            label: "barnes_hut (parallelized)",
            tp: parallelized(programs::BARNES_HUT),
            entry: "simulate",
            setup: bh_args,
        },
    ]
}

fn cfg(pes: usize, speculative: bool, detect: bool, shapes: bool) -> MachineConfig {
    MachineConfig {
        pes,
        speculative,
        detect_conflicts: detect,
        check_shapes: shapes,
        strict_conflicts: false,
        cost: CostModel::sequent(),
        fuel: Some(500_000_000),
    }
}

#[test]
fn whole_corpus_matches_across_fixed_configs() {
    let configs = [
        cfg(1, true, false, false),
        cfg(4, true, true, false),
        cfg(4, true, true, true),
        cfg(7, false, true, false),
    ];
    for w in corpus() {
        for c in &configs {
            assert_equivalent(w.label, &w.tp, c, w.entry, w.setup);
        }
    }
}

#[test]
fn uniform_cost_model_matches_too() {
    let c = MachineConfig {
        cost: CostModel::uniform(),
        detect_conflicts: true,
        ..MachineConfig::default()
    };
    for w in corpus() {
        assert_equivalent(w.label, &w.tp, &c, w.entry, w.setup);
    }
}

#[test]
fn optimization_switches_preserve_equivalence() {
    // Every compile-time optimization combination must match the
    // interpreter on the whole corpus (the default all-on combination is
    // covered by every other test in this file).
    let grids = [
        CompileOptions {
            inline: false,
            fuse: false,
        },
        CompileOptions {
            inline: true,
            fuse: false,
        },
        CompileOptions {
            inline: false,
            fuse: true,
        },
    ];
    let c = cfg(4, true, true, false);
    for w in corpus() {
        for opts in grids {
            assert_equivalent_with(w.label, &w.tp, &c, opts, w.entry, w.setup);
        }
    }
}

#[test]
fn fuel_truncation_inside_superblocks_agrees() {
    // Sweep every fuel point through the superblock-heavy list workloads:
    // exhaustion landing *inside* a fused block must strike at exactly
    // the interpreter's statement, which the fused VM reproduces by
    // falling back to per-op accounting when remaining fuel is below the
    // block charge. Statement counts are compared too — the only errors
    // this sweep produces are out-of-fuel, which always takes the exact
    // per-op path.
    struct Case {
        label: &'static str,
        tp: TypedProgram,
        entry: &'static str,
        setup: fn(&mut dyn Exec) -> Vec<Value>,
    }
    let cases = [
        Case {
            label: "list_scale_adds",
            tp: check_source(programs::LIST_SCALE_ADDS).unwrap(),
            entry: "scale",
            setup: |m| vec![workloads::scale_list(m, 4), Value::Int(2)],
        },
        Case {
            label: "list_scale_adds (parallelized)",
            tp: parallelized(programs::LIST_SCALE_ADDS),
            entry: "scale",
            setup: |m| vec![workloads::scale_list(m, 4), Value::Int(2)],
        },
        Case {
            label: "list_sum",
            tp: check_source(programs::LIST_SUM).unwrap(),
            entry: "sum",
            setup: |m| vec![workloads::sum_list(m, 4)],
        },
    ];
    let unfused = CompileOptions {
        inline: true,
        fuse: false,
    };
    for case in &cases {
        for fuel in 0..70u64 {
            let c = MachineConfig {
                fuel: Some(fuel),
                ..MachineConfig::default()
            };
            let (a, b) = run_pair(&case.tp, &c, case.entry, case.setup);
            assert_eq!(a.result, b.result, "{} fuel={fuel}", case.label);
            assert_eq!(
                a.stats.stmts, b.stats.stmts,
                "{} fuel={fuel}: exhaustion point moved",
                case.label
            );
            // The fused and unfused VM lowerings agree with each other
            // too (same oracle, so comparing candidates pins the fusion
            // fallback path specifically).
            let (_, u) = run_pair_with(&case.tp, &c, unfused, case.entry, case.setup);
            assert_eq!(b.result, u.result, "{} fuel={fuel}", case.label);
            assert_eq!(b.stats.stmts, u.stats.stmts, "{} fuel={fuel}", case.label);
        }
    }
}

#[test]
fn fuel_truncation_points_agree() {
    // Out-of-fuel must strike after the same statement count in both
    // engines — this pins stmt accounting even on partial runs.
    let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
    for fuel in [1, 2, 7, 40, 90] {
        let c = MachineConfig {
            fuel: Some(fuel),
            ..MachineConfig::default()
        };
        let (a, b) = run_pair(&tp, &c, "scale", |m| {
            vec![workloads::scale_list(m, 40), Value::Int(2)]
        });
        assert_eq!(a.result, b.result, "fuel={fuel}");
        if fuel < 90 {
            assert_eq!(a.result, Err("out of fuel".to_string()), "fuel={fuel}");
        }
    }
}

#[test]
fn self_assignment_still_burns_fuel() {
    // `p = p;` compiles to no data movement, but its statement-fuel burn
    // must survive — stmt counts and out-of-fuel points are part of the
    // machine model.
    let src = "
        type L [X] { int v; L *next is uniquely forward along X; };
        procedure idle(head: L*) {
            var p: L*;
            var i: int;
            p = head;
            for i = 1 to 5 { p = p; }
        }";
    let tp = check_source(src).unwrap();
    assert_equivalent(
        "self-assignment",
        &tp,
        &MachineConfig::default(),
        "idle",
        |m| vec![workloads::sum_list(m, 1)],
    );
    for fuel in [1, 3, 8, 11] {
        let c = MachineConfig {
            fuel: Some(fuel),
            ..MachineConfig::default()
        };
        let (a, b) = run_pair(&tp, &c, "idle", |m| vec![workloads::sum_list(m, 1)]);
        assert_eq!(a.result, b.result, "fuel={fuel}");
    }
}

#[test]
fn strict_conflicts_abort_in_both_engines() {
    let tp = check_source(ILLEGAL_PARALLEL_SUM).unwrap();
    let c = MachineConfig {
        pes: 4,
        detect_conflicts: true,
        strict_conflicts: true,
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };
    let (a, b) = run_pair(&tp, &c, "bad_parallel_sum", illegal_sum_args);
    let a = a.result.unwrap_err();
    let b = b.result.unwrap_err();
    assert!(a.starts_with("parallel conflict:"), "{a}");
    assert!(b.starts_with("parallel conflict:"), "{b}");
}

/// An ILLEGAL hand-"parallelization" of a reduction (also used by
/// `tests/runtime_checks.rs`): every strip iteration adds into the same
/// accumulator node, so iterations conflict.
const ILLEGAL_PARALLEL_SUM: &str = "
type L [X] { int v; L *next is uniquely forward along X; };
type Acc [A] { int total; Acc *self is forward along A; };

procedure _sum_iteration(i: int, p: L*, acc: Acc*)
{
    var k: int;
    for k = 1 to i { p = p->next; }
    if p <> NULL { acc->total = acc->total + p->v; }
}

procedure bad_parallel_sum(head: L*, acc: Acc*)
{
    var p: L*;
    var i: int;
    p = head;
    while p <> NULL
    {
        parfor i = 0 to PEs - 1 { _sum_iteration(i, p, acc); }
        for i = 0 to PEs - 1 { p = p->next; }
    }
}
";

fn illegal_sum_args(m: &mut dyn Exec) -> Vec<Value> {
    let head = workloads::sum_list(m, 8);
    let acc = m.host_alloc("Acc");
    vec![head, Value::Ptr(acc)]
}

#[test]
fn vm_is_reusable_after_an_aborted_run() {
    // A strict-conflict abort (or any error) unwinds mid-parfor; the
    // machine must stay usable: a later call may not spuriously report
    // NestedParfor from a stale detection flag or run on leaked frames.
    let src = format!(
        "{ILLEGAL_PARALLEL_SUM}
        procedure ok_parallel(head: L*) {{
            var i: int;
            var p: L*;
            parfor i = 0 to 3 {{ p = head; }}
        }}"
    );
    let tp = check_source(&src).unwrap();
    let compiled = adds_machine::CompiledProgram::compile(&tp);
    let mut vm = adds_machine::Vm::new(
        &compiled,
        MachineConfig {
            pes: 4,
            detect_conflicts: true,
            strict_conflicts: true,
            cost: CostModel::uniform(),
            ..MachineConfig::default()
        },
    );
    let args = illegal_sum_args(&mut vm);
    let err = vm.call("bad_parallel_sum", &args).unwrap_err();
    assert!(err.to_string().starts_with("parallel conflict:"), "{err}");
    vm.call("ok_parallel", &[args[0]])
        .expect("machine usable after an aborted run");
}

#[test]
fn single_pass_detector_pins_pairwise_conflict_set() {
    // The satellite pinning test: on known-conflicting programs the VM's
    // epoch-stamped single-pass detector must report exactly the
    // interpreter's pairwise conflict set (compared order-insensitively —
    // `Outcome` already sorts).
    let c = MachineConfig {
        pes: 4,
        detect_conflicts: true,
        cost: CostModel::uniform(),
        ..MachineConfig::default()
    };

    // The racing reduction: all-write/write conflicts on the accumulator.
    let tp = check_source(ILLEGAL_PARALLEL_SUM).unwrap();
    let (a, b) = run_pair(&tp, &c, "bad_parallel_sum", illegal_sum_args);
    assert!(!a.conflicts.is_empty());
    assert!(a.conflicts.iter().all(|x| x.write_write));
    assert_eq!(a, b);

    // Two writers plus pure readers: both conflict kinds at once.
    let mixed = "
        type L [X] { int v; L *next is uniquely forward along X; };
        procedure mixed(head: L*) {
            var i: int;
            var x: int;
            parfor i = 0 to 3 {
                if i < 2 { head->v = i; }
                x = head->v;
            }
        }";
    let tp = check_source(mixed).unwrap();
    let (a, b) = run_pair(&tp, &c, "mixed", |m| vec![workloads::sum_list(m, 1)]);
    // Writers {0,1}, readers {0,1,2,3}: one ww pair + {2,3}×{0,1} wr pairs.
    assert_eq!(a.conflicts.iter().filter(|x| x.write_write).count(), 1);
    assert_eq!(a.conflicts.iter().filter(|x| !x.write_write).count(), 4);
    assert_eq!(a.conflicts, b.conflicts);
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random machine configurations over the non-nbody corpus: PEs 1..8,
    /// speculative on/off, conflict detection on/off, shape checks
    /// on/off, both cost models, varied workload sizes, and the
    /// compile-time inlining/fusion switches.
    #[test]
    fn random_configs_are_equivalent(
        pes in 1usize..8,
        speculative in (0u8..2).prop_map(|b| b == 1),
        detect in (0u8..2).prop_map(|b| b == 1),
        shapes in (0u8..2).prop_map(|b| b == 1),
        uniform_cost in (0u8..2).prop_map(|b| b == 1),
        inline in (0u8..2).prop_map(|b| b == 1),
        fuse in (0u8..2).prop_map(|b| b == 1),
        n in 1usize..40,
        which in 0usize..5,
    ) {
        let c = MachineConfig {
            pes,
            speculative,
            detect_conflicts: detect,
            check_shapes: shapes,
            strict_conflicts: false,
            cost: if uniform_cost { CostModel::uniform() } else { CostModel::sequent() },
            fuel: Some(500_000_000),
        };
        let opts = CompileOptions { inline, fuse };
        let widths = [n.max(1), 1, (n / 2).max(1), 3];
        match which {
            0 => assert_equivalent_with(
                "list_scale_adds",
                &check_source(programs::LIST_SCALE_ADDS).unwrap(),
                &c,
                opts,
                "scale",
                |m| vec![workloads::scale_list(m, n), Value::Int(3)],
            ),
            1 => assert_equivalent_with(
                "list_scale_adds (parallelized)",
                &parallelized(programs::LIST_SCALE_ADDS),
                &c,
                opts,
                "scale",
                |m| vec![workloads::scale_list(m, n), Value::Int(3)],
            ),
            2 => assert_equivalent_with(
                "orth_row_scale (parallelized)",
                &parallelized(programs::ORTH_ROW_SCALE),
                &c,
                opts,
                "scale_rows",
                |m| vec![workloads::orth_rows(m, &widths), Value::Int(5)],
            ),
            3 => assert_equivalent_with(
                "list_sum",
                &check_source(programs::LIST_SUM).unwrap(),
                &c,
                opts,
                "sum",
                |m| vec![workloads::sum_list(m, n)],
            ),
            _ => assert_equivalent_with(
                "illegal_parallel_sum",
                &check_source(ILLEGAL_PARALLEL_SUM).unwrap(),
                &c,
                opts,
                "bad_parallel_sum",
                illegal_sum_args,
            ),
        }
    }
}
