//! Runtime values, record layouts and the heap of the IL machine.

use adds_lang::adds::{AddsEnv, AddsFieldKind};
use adds_lang::ast::ScalarTy;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// A non-null pointer to a heap node.
    Ptr(NodeId),
    /// The null pointer.
    Null,
}

/// Index of a heap record.
pub type NodeId = u32;

impl Value {
    /// The boolean this value denotes, or a type error.
    pub fn truthy(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other}")),
        }
    }

    /// The integer this value denotes, or a type error.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(format!("expected int, got {other}")),
        }
    }

    /// The real this value denotes (ints coerce), or a type error.
    pub fn as_real(&self) -> Result<f64, String> {
        match self {
            Value::Real(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(format!("expected real, got {other}")),
        }
    }

    /// Is this the null pointer?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ptr(n) => write!(f, "node#{n}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Where a field lives inside a record: contiguous slots (array pointer
/// fields occupy `len` slots).
#[derive(Clone, Debug)]
pub struct FieldSlot {
    /// First slot of the field within the record.
    pub offset: usize,
    /// Number of slots (1, or the array length).
    pub len: usize,
    /// Whether the slots hold pointers.
    pub is_ptr: bool,
    /// The scalar type, for scalar fields.
    pub scalar: Option<ScalarTy>,
}

/// Layout of one record type.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Record type this layout realizes (shared so allocation never clones
    /// the name's bytes).
    pub type_name: Arc<str>,
    /// Total slot count.
    pub slots: usize,
    /// Field name → slot placement.
    pub fields: BTreeMap<String, FieldSlot>,
    /// Default slot values in offset order, precomputed once so that
    /// [`Heap::alloc`] is a single memcpy instead of a per-field rebuild.
    pub defaults: Box<[Value]>,
}

/// Why resolving a `field[idx]` access against a [`Layout`] failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotError {
    /// The record type has no field of that name.
    NoSuchField,
    /// The index is outside the field's slot group.
    IndexOutOfRange,
}

impl Layout {
    /// Placement of `field`, if declared.
    pub fn slot(&self, field: &str) -> Option<&FieldSlot> {
        self.fields.get(field)
    }

    /// Resolved record offset of `field[idx]` — the one place slot
    /// arithmetic lives, shared by the interpreter, the VM, and host access.
    pub fn offset_of(&self, field: &str, idx: usize) -> Result<usize, SlotError> {
        let slot = self.fields.get(field).ok_or(SlotError::NoSuchField)?;
        if idx >= slot.len {
            return Err(SlotError::IndexOutOfRange);
        }
        Ok(slot.offset + idx)
    }

    fn default_value(slot: &FieldSlot) -> Value {
        if slot.is_ptr {
            Value::Null
        } else {
            match slot.scalar {
                Some(ScalarTy::Int) => Value::Int(0),
                Some(ScalarTy::Real) => Value::Real(0.0),
                Some(ScalarTy::Bool) => Value::Bool(false),
                None => Value::Null,
            }
        }
    }
}

/// Layouts for every record type of a program.
#[derive(Clone, Debug, Default)]
pub struct Layouts {
    map: BTreeMap<String, Layout>,
}

impl Layouts {
    /// Compute layouts for every record type in the environment.
    pub fn from_adds(adds: &AddsEnv) -> Layouts {
        let mut map = BTreeMap::new();
        for t in adds.types() {
            let mut fields = BTreeMap::new();
            let mut offset = 0usize;
            for f in &t.fields {
                let (len, is_ptr, scalar) = match &f.kind {
                    AddsFieldKind::Scalar(st) => (1, false, Some(*st)),
                    AddsFieldKind::Pointer { array_len, .. } => {
                        (array_len.unwrap_or(1), true, None)
                    }
                };
                fields.insert(
                    f.name.clone(),
                    FieldSlot {
                        offset,
                        len,
                        is_ptr,
                        scalar,
                    },
                );
                offset += len;
            }
            let mut defaults = vec![Value::Null; offset];
            for f in fields.values() {
                for k in 0..f.len {
                    defaults[f.offset + k] = Layout::default_value(f);
                }
            }
            map.insert(
                t.name.clone(),
                Layout {
                    type_name: Arc::from(t.name.as_str()),
                    slots: offset,
                    fields,
                    defaults: defaults.into_boxed_slice(),
                },
            );
        }
        Layouts { map }
    }

    /// The layout of record type `ty`.
    pub fn get(&self, ty: &str) -> Option<&Layout> {
        self.map.get(ty)
    }

    /// Resolve `field[idx]` of the record `node` points to, for host-side
    /// (zero-cost, uninstrumented) access. Panics on host misuse, exactly
    /// like the historical per-machine helpers it replaces.
    pub fn host_offset(&self, heap: &Heap, node: NodeId, field: &str, idx: usize) -> usize {
        let ty = heap.type_of(node).expect("valid node");
        let layout = self
            .get(ty)
            .unwrap_or_else(|| panic!("no layout for record type {ty}"));
        match layout.offset_of(field, idx) {
            Ok(off) => off,
            Err(SlotError::NoSuchField) => panic!("field {field} of {ty}"),
            Err(SlotError::IndexOutOfRange) => {
                panic!("index {idx} out of range for {field}")
            }
        }
    }
}

/// A borrowed view of one heap record.
#[derive(Clone, Copy, Debug)]
pub struct RecordView<'h> {
    /// The record's type.
    pub type_name: &'h str,
    /// Field storage, addressed via the type's [`Layout`].
    pub slots: &'h [Value],
}

/// Per-record arena placement.
#[derive(Clone, Debug)]
struct RecMeta {
    /// First slot in the flat value arena.
    start: u32,
    /// Slot count.
    len: u32,
    /// The record's type (shared with the [`Layout`] it came from).
    type_name: Arc<str>,
}

/// The heap: an arena of records. `NodeId`s are indices; NULL is a distinct
/// [`Value`] variant, which is what makes every structure *speculatively
/// traversable* (§3.2) — following a link off the end yields NULL, never a
/// fault.
///
/// Storage is flat: all records' slots live in one contiguous `Vec<Value>`
/// in allocation order, so structure walks that follow allocation order
/// (the common case for the paper's list/tree builders) are
/// prefetch-friendly and a field access costs one metadata read plus one
/// value read — no per-record allocation, no second dependent pointer
/// chase.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    values: Vec<Value>,
    recs: Vec<RecMeta>,
}

impl Heap {
    /// The empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of allocated records.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Allocate a record of `layout`'s type with NULL/zero fields: one
    /// arena append of the precomputed default-slot vector.
    pub fn alloc(&mut self, layout: &Layout) -> NodeId {
        debug_assert_eq!(layout.defaults.len(), layout.slots);
        assert!(
            self.values.len() + layout.slots <= u32::MAX as usize,
            "heap arena exceeds 2^32 slots"
        );
        let start = self.values.len() as u32;
        self.values.extend_from_slice(&layout.defaults);
        self.recs.push(RecMeta {
            start,
            len: layout.slots as u32,
            type_name: Arc::clone(&layout.type_name),
        });
        (self.recs.len() - 1) as NodeId
    }

    fn meta(&self, id: NodeId) -> Result<&RecMeta, String> {
        self.recs
            .get(id as usize)
            .ok_or_else(|| format!("dangling node id {id}"))
    }

    /// The record `id`, or an error for a dangling id.
    pub fn record(&self, id: NodeId) -> Result<RecordView<'_>, String> {
        let m = self.meta(id)?;
        Ok(RecordView {
            type_name: &m.type_name,
            slots: &self.values[m.start as usize..m.start as usize + m.len as usize],
        })
    }

    /// The type of record `id`.
    pub fn type_of(&self, id: NodeId) -> Result<&str, String> {
        Ok(&self.meta(id)?.type_name)
    }

    /// Read slot `slot` of record `id`.
    #[inline]
    pub fn load(&self, id: NodeId, slot: usize) -> Result<Value, String> {
        let m = self.meta(id)?;
        if slot >= m.len as usize {
            return Err(format!("slot {slot} out of range for node {id}"));
        }
        Ok(self.values[m.start as usize + slot])
    }

    /// Like [`Heap::load`], but also returns the slot's index in the flat
    /// value arena — a dense stable key instrumentation (the conflict
    /// table) can use instead of hashing `(node, slot)`.
    #[inline]
    pub fn load_flat(&self, id: NodeId, slot: usize) -> Result<(Value, u32), String> {
        let m = self.meta(id)?;
        if slot >= m.len as usize {
            return Err(format!("slot {slot} out of range for node {id}"));
        }
        let flat = m.start + slot as u32;
        Ok((self.values[flat as usize], flat))
    }

    /// Like [`Heap::store`], but also returns the flat arena index.
    #[inline]
    pub fn store_flat(&mut self, id: NodeId, slot: usize, v: Value) -> Result<u32, String> {
        let m = self
            .recs
            .get(id as usize)
            .ok_or_else(|| format!("dangling node id {id}"))?;
        if slot >= m.len as usize {
            return Err(format!("slot {slot} out of range for node {id}"));
        }
        let flat = m.start + slot as u32;
        self.values[flat as usize] = v;
        Ok(flat)
    }

    /// Write slot `slot` of record `id`.
    #[inline]
    pub fn store(&mut self, id: NodeId, slot: usize, v: Value) -> Result<(), String> {
        let m = self
            .recs
            .get(id as usize)
            .ok_or_else(|| format!("dangling node id {id}"))?;
        if slot >= m.len as usize {
            return Err(format!("slot {slot} out of range for node {id}"));
        }
        self.values[m.start as usize + slot] = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::parser::parse_program;

    fn layouts(src: &str) -> Layouts {
        let p = parse_program(src).unwrap();
        let adds = AddsEnv::build(&p).unwrap();
        Layouts::from_adds(&adds)
    }

    #[test]
    fn layout_sizes_account_for_arrays() {
        let l = layouts(
            "type Octree [down] {
                real mass, x;
                bool is_leaf;
                Octree *subtrees[8] is uniquely forward along down;
            };",
        );
        let lay = l.get("Octree").unwrap();
        assert_eq!(lay.slots, 3 + 8);
        assert_eq!(lay.slot("subtrees").unwrap().len, 8);
        assert!(lay.slot("subtrees").unwrap().is_ptr);
        assert_eq!(lay.slot("mass").unwrap().len, 1);
    }

    #[test]
    fn alloc_initializes_defaults() {
        let l = layouts("type N [X] { int a; real b; bool c; N *next is forward along X; };");
        let lay = l.get("N").unwrap();
        let mut heap = Heap::new();
        let id = heap.alloc(lay);
        assert_eq!(
            heap.load(id, lay.slot("a").unwrap().offset).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            heap.load(id, lay.slot("b").unwrap().offset).unwrap(),
            Value::Real(0.0)
        );
        assert_eq!(
            heap.load(id, lay.slot("c").unwrap().offset).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            heap.load(id, lay.slot("next").unwrap().offset).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn store_and_load_round_trip() {
        let l = layouts("type N [X] { int a; N *next is forward along X; };");
        let lay = l.get("N").unwrap();
        let mut heap = Heap::new();
        let a = heap.alloc(lay);
        let b = heap.alloc(lay);
        heap.store(a, lay.slot("next").unwrap().offset, Value::Ptr(b))
            .unwrap();
        assert_eq!(
            heap.load(a, lay.slot("next").unwrap().offset).unwrap(),
            Value::Ptr(b)
        );
        assert_eq!(heap.type_of(b).unwrap(), "N");
    }

    #[test]
    fn dangling_ids_error() {
        let heap = Heap::new();
        assert!(heap.load(42, 0).is_err());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_real().unwrap(), 3.0);
        assert_eq!(Value::Real(2.5).as_real().unwrap(), 2.5);
        assert!(Value::Real(2.5).as_int().is_err());
        assert!(Value::Bool(true).truthy().unwrap());
        assert!(Value::Null.is_null());
    }
}
