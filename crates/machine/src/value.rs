//! Runtime values, record layouts and the heap of the IL machine.

use adds_lang::adds::{AddsEnv, AddsFieldKind};
use adds_lang::ast::ScalarTy;
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// A non-null pointer to a heap node.
    Ptr(NodeId),
    /// The null pointer.
    Null,
}

/// Index of a heap record.
pub type NodeId = u32;

impl Value {
    /// The boolean this value denotes, or a type error.
    pub fn truthy(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other}")),
        }
    }

    /// The integer this value denotes, or a type error.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(format!("expected int, got {other}")),
        }
    }

    /// The real this value denotes (ints coerce), or a type error.
    pub fn as_real(&self) -> Result<f64, String> {
        match self {
            Value::Real(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(format!("expected real, got {other}")),
        }
    }

    /// Is this the null pointer?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ptr(n) => write!(f, "node#{n}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Where a field lives inside a record: contiguous slots (array pointer
/// fields occupy `len` slots).
#[derive(Clone, Debug)]
pub struct FieldSlot {
    /// First slot of the field within the record.
    pub offset: usize,
    /// Number of slots (1, or the array length).
    pub len: usize,
    /// Whether the slots hold pointers.
    pub is_ptr: bool,
    /// The scalar type, for scalar fields.
    pub scalar: Option<ScalarTy>,
}

/// Layout of one record type.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Record type this layout realizes.
    pub type_name: String,
    /// Total slot count.
    pub slots: usize,
    /// Field name → slot placement.
    pub fields: BTreeMap<String, FieldSlot>,
}

impl Layout {
    /// Placement of `field`, if declared.
    pub fn slot(&self, field: &str) -> Option<&FieldSlot> {
        self.fields.get(field)
    }

    fn default_value(slot: &FieldSlot) -> Value {
        if slot.is_ptr {
            Value::Null
        } else {
            match slot.scalar {
                Some(ScalarTy::Int) => Value::Int(0),
                Some(ScalarTy::Real) => Value::Real(0.0),
                Some(ScalarTy::Bool) => Value::Bool(false),
                None => Value::Null,
            }
        }
    }
}

/// Layouts for every record type of a program.
#[derive(Clone, Debug, Default)]
pub struct Layouts {
    map: BTreeMap<String, Layout>,
}

impl Layouts {
    /// Compute layouts for every record type in the environment.
    pub fn from_adds(adds: &AddsEnv) -> Layouts {
        let mut map = BTreeMap::new();
        for t in adds.types() {
            let mut fields = BTreeMap::new();
            let mut offset = 0usize;
            for f in &t.fields {
                let (len, is_ptr, scalar) = match &f.kind {
                    AddsFieldKind::Scalar(st) => (1, false, Some(*st)),
                    AddsFieldKind::Pointer { array_len, .. } => {
                        (array_len.unwrap_or(1), true, None)
                    }
                };
                fields.insert(
                    f.name.clone(),
                    FieldSlot {
                        offset,
                        len,
                        is_ptr,
                        scalar,
                    },
                );
                offset += len;
            }
            map.insert(
                t.name.clone(),
                Layout {
                    type_name: t.name.clone(),
                    slots: offset,
                    fields,
                },
            );
        }
        Layouts { map }
    }

    /// The layout of record type `ty`.
    pub fn get(&self, ty: &str) -> Option<&Layout> {
        self.map.get(ty)
    }
}

/// One heap record.
#[derive(Clone, Debug)]
pub struct Record {
    /// The record's type.
    pub type_name: String,
    /// Field storage, addressed via the type's [`Layout`].
    pub slots: Box<[Value]>,
}

/// The heap: an arena of records. `NodeId`s are indices; NULL is a distinct
/// [`Value`] variant, which is what makes every structure *speculatively
/// traversable* (§3.2) — following a link off the end yields NULL, never a
/// fault.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    nodes: Vec<Record>,
}

impl Heap {
    /// The empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of allocated records.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocate a record of `layout`'s type with NULL/zero fields.
    pub fn alloc(&mut self, layout: &Layout) -> NodeId {
        let slots: Vec<Value> = layout
            .fields
            .values()
            .flat_map(|f| std::iter::repeat_n(Layout::default_value(f), f.len))
            .collect();
        // Slots must be ordered by offset, not field name order.
        let mut ordered = vec![Value::Null; layout.slots];
        for f in layout.fields.values() {
            for k in 0..f.len {
                ordered[f.offset + k] = Layout::default_value(f);
            }
        }
        debug_assert_eq!(slots.len(), layout.slots);
        self.nodes.push(Record {
            type_name: layout.type_name.clone(),
            slots: ordered.into_boxed_slice(),
        });
        (self.nodes.len() - 1) as NodeId
    }

    /// The record `id`, or an error for a dangling id.
    pub fn record(&self, id: NodeId) -> Result<&Record, String> {
        self.nodes
            .get(id as usize)
            .ok_or_else(|| format!("dangling node id {id}"))
    }

    /// The type of record `id`.
    pub fn type_of(&self, id: NodeId) -> Result<&str, String> {
        Ok(&self.record(id)?.type_name)
    }

    /// Read slot `slot` of record `id`.
    pub fn load(&self, id: NodeId, slot: usize) -> Result<Value, String> {
        let r = self.record(id)?;
        r.slots
            .get(slot)
            .copied()
            .ok_or_else(|| format!("slot {slot} out of range for node {id}"))
    }

    /// Write slot `slot` of record `id`.
    pub fn store(&mut self, id: NodeId, slot: usize, v: Value) -> Result<(), String> {
        let r = self
            .nodes
            .get_mut(id as usize)
            .ok_or_else(|| format!("dangling node id {id}"))?;
        let cell = r
            .slots
            .get_mut(slot)
            .ok_or_else(|| format!("slot {slot} out of range for node {id}"))?;
        *cell = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::parser::parse_program;

    fn layouts(src: &str) -> Layouts {
        let p = parse_program(src).unwrap();
        let adds = AddsEnv::build(&p).unwrap();
        Layouts::from_adds(&adds)
    }

    #[test]
    fn layout_sizes_account_for_arrays() {
        let l = layouts(
            "type Octree [down] {
                real mass, x;
                bool is_leaf;
                Octree *subtrees[8] is uniquely forward along down;
            };",
        );
        let lay = l.get("Octree").unwrap();
        assert_eq!(lay.slots, 3 + 8);
        assert_eq!(lay.slot("subtrees").unwrap().len, 8);
        assert!(lay.slot("subtrees").unwrap().is_ptr);
        assert_eq!(lay.slot("mass").unwrap().len, 1);
    }

    #[test]
    fn alloc_initializes_defaults() {
        let l = layouts("type N [X] { int a; real b; bool c; N *next is forward along X; };");
        let lay = l.get("N").unwrap();
        let mut heap = Heap::new();
        let id = heap.alloc(lay);
        assert_eq!(
            heap.load(id, lay.slot("a").unwrap().offset).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            heap.load(id, lay.slot("b").unwrap().offset).unwrap(),
            Value::Real(0.0)
        );
        assert_eq!(
            heap.load(id, lay.slot("c").unwrap().offset).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            heap.load(id, lay.slot("next").unwrap().offset).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn store_and_load_round_trip() {
        let l = layouts("type N [X] { int a; N *next is forward along X; };");
        let lay = l.get("N").unwrap();
        let mut heap = Heap::new();
        let a = heap.alloc(lay);
        let b = heap.alloc(lay);
        heap.store(a, lay.slot("next").unwrap().offset, Value::Ptr(b))
            .unwrap();
        assert_eq!(
            heap.load(a, lay.slot("next").unwrap().offset).unwrap(),
            Value::Ptr(b)
        );
        assert_eq!(heap.type_of(b).unwrap(), "N");
    }

    #[test]
    fn dangling_ids_error() {
        let heap = Heap::new();
        assert!(heap.load(42, 0).is_err());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_real().unwrap(), 3.0);
        assert_eq!(Value::Real(2.5).as_real().unwrap(), 2.5);
        assert!(Value::Real(2.5).as_int().is_err());
        assert!(Value::Bool(true).truthy().unwrap());
        assert!(Value::Null.is_null());
    }
}
