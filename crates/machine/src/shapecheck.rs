//! Run-time ADDS shape checking — the paper's §2.2 "positive side-effect":
//! "the compiler's ability to generate run-time checks for the proper use
//! of dynamic data structures."
//!
//! When enabled, every pointer-field store is followed by an incremental
//! check of the declared route properties of that field:
//!
//! * `uniquely` — the stored target must not acquire a second incoming link
//!   along the field's *dimension* (sharing);
//! * `forward`/`backward` — following fields of that dimension from the
//!   stored target must not lead back to the stored-into node (cycle).
//!
//! Reports are collected, not fatal: imperative programs legitimately break
//! and repair their abstractions (§3.3.1), and the reports let a user see
//! exactly where — dynamically mirroring what abstraction validation
//! reports statically.

use crate::value::{Heap, Layouts, NodeId, Value};
use adds_lang::adds::AddsEnv;
use adds_lang::ast::Direction;
use std::fmt;

/// One dynamic shape violation observed after a store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeReport {
    /// What was observed.
    pub kind: ShapeReportKind,
    /// The declared type involved.
    pub type_name: String,
    /// The field whose route property is involved.
    pub field: String,
    /// The heap record at the violation.
    pub node: NodeId,
}

#[derive(Clone, Debug, PartialEq, Eq)]
/// The kind of run-time shape observation.
pub enum ShapeReportKind {
    /// Node has ≥ 2 incoming links along a `uniquely` dimension.
    Sharing,
    /// A cycle along an acyclic (forward/backward) dimension.
    Cycle,
}

impl fmt::Display for ShapeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runtime {} on `{}.{}` at node#{}",
            match self.kind {
                ShapeReportKind::Sharing => "sharing",
                ShapeReportKind::Cycle => "cycle",
            },
            self.type_name,
            self.field,
            self.node
        )
    }
}

/// Check the route properties of `field` of record type `ty` after a store
/// `node.field[_] = target`. Returns any violations observed.
pub fn check_store(
    adds: &AddsEnv,
    layouts: &Layouts,
    heap: &Heap,
    ty: &str,
    field: &str,
    node: NodeId,
    target: Value,
) -> Vec<ShapeReport> {
    let mut out = Vec::new();
    let Some(t) = adds.get(ty) else {
        return out;
    };
    let Some(route) = t.route(field) else {
        return out;
    };
    let Value::Ptr(target) = target else {
        return out; // storing NULL can only *repair* properties
    };

    // Fields of the same dimension on this record type (for cycle walking
    // and sharing counting we consider the stored field's dimension).
    let dim_fields: Vec<String> = t
        .fields_along(route.dim)
        .into_iter()
        .filter(|(_, r)| r.direction == route.direction)
        .map(|(n, _)| n.to_string())
        .collect();

    // --- sharing: count incoming links to `target` along this dimension.
    if route.unique {
        let mut incoming = 0usize;
        for id in 0..heap.len() as NodeId {
            let Ok(nty) = heap.type_of(id) else { continue };
            if nty != ty {
                continue;
            }
            let Some(layout) = layouts.get(nty) else {
                continue;
            };
            for f in &dim_fields {
                let Some(slot) = layout.slot(f) else { continue };
                for k in 0..slot.len {
                    if let Ok(Value::Ptr(p)) = heap.load(id, slot.offset + k) {
                        if p == target {
                            incoming += 1;
                        }
                    }
                }
            }
        }
        if incoming > 1 {
            out.push(ShapeReport {
                kind: ShapeReportKind::Sharing,
                type_name: ty.to_string(),
                field: field.to_string(),
                node: target,
            });
        }
    }

    // --- cycle: can we reach `node` from `target` along this direction?
    if matches!(route.direction, Direction::Forward | Direction::Backward) {
        let mut visited = vec![false; heap.len()];
        let mut stack = vec![target];
        let mut found = false;
        while let Some(cur) = stack.pop() {
            if cur == node {
                found = true;
                break;
            }
            let idx = cur as usize;
            if idx >= visited.len() || visited[idx] {
                continue;
            }
            visited[idx] = true;
            let Ok(nty) = heap.type_of(cur) else { continue };
            let Some(layout) = layouts.get(nty) else {
                continue;
            };
            for f in &dim_fields {
                let Some(slot) = layout.slot(f) else { continue };
                for k in 0..slot.len {
                    if let Ok(Value::Ptr(p)) = heap.load(cur, slot.offset + k) {
                        stack.push(p);
                    }
                }
            }
        }
        if found {
            out.push(ShapeReport {
                kind: ShapeReportKind::Cycle,
                type_name: ty.to_string(),
                field: field.to_string(),
                node,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, MachineConfig};
    use adds_lang::types::check_source;

    const LIST: &str = "type L [X] { int v; L *next is uniquely forward along X; };
         procedure noop(p: L*) { p->v = 0; }";

    fn setup() -> (adds_lang::types::TypedProgram,) {
        (check_source(LIST).unwrap(),)
    }

    #[test]
    fn clean_store_reports_nothing() {
        let (tp,) = setup();
        let mut it = Interp::new(&tp, MachineConfig::default());
        let a = it.host_alloc("L");
        let b = it.host_alloc("L");
        it.host_store(a, "next", 0, Value::Ptr(b));
        let reports = check_store(
            &it.tp.adds,
            &it.layouts,
            &it.heap,
            "L",
            "next",
            a,
            Value::Ptr(b),
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn sharing_is_reported() {
        let (tp,) = setup();
        let mut it = Interp::new(&tp, MachineConfig::default());
        let a = it.host_alloc("L");
        let b = it.host_alloc("L");
        let shared = it.host_alloc("L");
        it.host_store(a, "next", 0, Value::Ptr(shared));
        it.host_store(b, "next", 0, Value::Ptr(shared));
        let reports = check_store(
            &it.tp.adds,
            &it.layouts,
            &it.heap,
            "L",
            "next",
            b,
            Value::Ptr(shared),
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ShapeReportKind::Sharing);
        assert_eq!(reports[0].node, shared);
    }

    #[test]
    fn cycle_is_reported() {
        let (tp,) = setup();
        let mut it = Interp::new(&tp, MachineConfig::default());
        let a = it.host_alloc("L");
        let b = it.host_alloc("L");
        it.host_store(a, "next", 0, Value::Ptr(b));
        it.host_store(b, "next", 0, Value::Ptr(a));
        let reports = check_store(
            &it.tp.adds,
            &it.layouts,
            &it.heap,
            "L",
            "next",
            b,
            Value::Ptr(a),
        );
        assert!(reports.iter().any(|r| r.kind == ShapeReportKind::Cycle));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let (tp,) = setup();
        let mut it = Interp::new(&tp, MachineConfig::default());
        let a = it.host_alloc("L");
        it.host_store(a, "next", 0, Value::Ptr(a));
        let reports = check_store(
            &it.tp.adds,
            &it.layouts,
            &it.heap,
            "L",
            "next",
            a,
            Value::Ptr(a),
        );
        assert!(reports.iter().any(|r| r.kind == ShapeReportKind::Cycle));
    }

    #[test]
    fn null_store_reports_nothing() {
        let (tp,) = setup();
        let mut it = Interp::new(&tp, MachineConfig::default());
        let a = it.host_alloc("L");
        let reports = check_store(
            &it.tp.adds,
            &it.layouts,
            &it.heap,
            "L",
            "next",
            a,
            Value::Null,
        );
        assert!(reports.is_empty());
    }
}
