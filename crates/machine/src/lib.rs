//! # adds-machine — IL execution substrate and simulated multiprocessor
//!
//! Executes ADDS IL programs (from `adds-lang`, transformed by `adds-core`)
//! on a simulated MIMD machine:
//!
//! * [`value`] — runtime values, record layouts, the arena heap (which makes
//!   every structure speculatively traversable, §3.2),
//! * [`interp`] — the interpreter with cycle accounting, static strip
//!   scheduling of `parfor` regions, and dynamic write-conflict detection,
//! * [`cost`] — cycle cost models, including the Sequent-class profile used
//!   to regenerate the §4.4 tables,
//! * [`sequent`] — whole-workload helpers (Barnes–Hut over a particle heap).

#![warn(missing_docs)]

pub mod cost;
pub mod interp;
pub mod sequent;
pub mod shapecheck;
pub mod value;

pub use cost::CostModel;
pub use interp::{Conflict, ExecStats, Interp, MachineConfig, RuntimeError};
pub use sequent::{run_barnes_hut, uniform_cloud, BodyInit, SimRun};
pub use shapecheck::{ShapeReport, ShapeReportKind};
pub use value::{Heap, Layouts, NodeId, Value};
