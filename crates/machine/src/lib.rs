//! # adds-machine — IL execution substrate and simulated multiprocessor
//!
//! Executes ADDS IL programs (from `adds-lang`, transformed by `adds-core`)
//! on a simulated MIMD machine:
//!
//! * [`value`] — runtime values, record layouts (with precomputed
//!   default-slot vectors and shared offset resolution), the arena heap
//!   (which makes every structure speculatively traversable, §3.2),
//! * [`compile`] — lowering of typed programs to slot-resolved bytecode:
//!   variables become numeric frame slots, field accesses become record
//!   offsets, functions become ids,
//! * [`vm`] — the bytecode executor: the fast engine every consumer runs
//!   on, with cycle accounting, static strip scheduling of `parfor`
//!   regions, and single-pass epoch-stamped conflict detection,
//! * [`profile`] — opt-in VM profiling: dense per-opcode execution
//!   counters and per-`parfor` cycle attribution (`adds-cli profile`),
//! * [`interp`] — the original tree-walking interpreter, kept as the
//!   semantic reference for differential testing,
//! * [`diff`] — the differential harness comparing the two engines on any
//!   workload,
//! * [`cost`] — cycle cost models, including the Sequent-class profile used
//!   to regenerate the §4.4 tables,
//! * [`sequent`] — whole-workload helpers (Barnes–Hut over a particle heap).

#![warn(missing_docs)]

pub mod compile;
pub mod conflict;
pub mod cost;
pub mod diff;
pub mod exec;
pub mod interp;
mod ops;
pub mod profile;
pub mod sequent;
pub mod shapecheck;
pub mod value;
pub mod vm;

pub use compile::{CompileOptions, CompiledProgram};
pub use conflict::ConflictTable;
pub use cost::{Charge, CostModel};
pub use exec::{Conflict, Exec, ExecStats, MachineConfig, RuntimeError};
pub use interp::Interp;
pub use profile::{LoopProfile, Opcode, VmProfile};
pub use sequent::{
    run_barnes_hut, run_barnes_hut_compiled, run_barnes_hut_interp, uniform_cloud, BodyInit, SimRun,
};
pub use shapecheck::{ShapeReport, ShapeReportKind};
pub use value::{Heap, Layouts, NodeId, Value};
pub use vm::Vm;
