//! Dynamic conflict detection for `parfor` regions.
//!
//! Two implementations of the same specification:
//!
//! * `pairwise_conflicts` — the reference detector the tree-walking
//!   interpreter uses: one `BTreeSet` access log per iteration, then a
//!   pairwise set intersection over all iteration pairs. O(iters² · log
//!   size); kept as the semantic oracle for differential testing.
//! * [`ConflictTable`] — the VM's detector: one epoch-stamped table keyed
//!   by `(node, slot)` holding per-slot writer/reader iteration lists,
//!   filled during execution (the epoch stamp dedups repeated accesses
//!   within one iteration, replacing the per-iteration set) and merged in a
//!   single pass over touched slots at the barrier. O(total accesses +
//!   conflicts reported).
//!
//! Both report, per conflicting `(node, slot)`:
//! * every pair of distinct writing iterations as a write/write conflict;
//! * every (writer, pure-reader) pair as a write/read conflict — an
//!   iteration that both reads and writes a slot reports only the stronger
//!   write/write conflicts against other writers.
//!
//! The two emit the same *set* of [`Conflict`]s but in different orders
//! (pair-major vs slot-major); compare them order-insensitively.
//!
//! ## `ConflictTable` invariants
//!
//! * **Flat-slot keying.** Cells live in one vector indexed by the heap's
//!   flat arena slot (stable for a node's lifetime), so recording an
//!   access is an array index — no hashing, no per-node chasing.
//! * **Generation stamping.** [`ConflictTable::begin_region`] only bumps
//!   the region generation; a cell whose stamp does not match is *stale by
//!   definition* and is reset lazily on its first touch in the region.
//!   Region entry is O(1) and cell storage is reused across regions.
//! * **Epoch stamping.** `last_read` / `last_write` hold the last
//!   recording iteration, so an iteration's repeated accesses to one slot
//!   dedup with a single compare — this replaces the reference detector's
//!   per-iteration `BTreeSet`.
//! * **Ascending iterations.** [`ConflictTable::begin_iter`] must be
//!   called with non-decreasing `k`: the per-slot writer/reader iteration
//!   lists are then sorted by construction, `is_writer` can binary-search,
//!   and emission order is deterministic.
//! * **Inline until contended.** The first writer/reader of a slot lives
//!   inline in the cell; spill vectors allocate only for slots genuinely
//!   touched by several iterations, so the conflict-free fast path never
//!   allocates.
//! * **Slot-major emission.** [`ConflictTable::finish`] (and the strict
//!   path [`ConflictTable::first_conflict`]) walk touched slots in
//!   first-touch order, emitting write/write pairs then write/read pairs
//!   per slot — the same set as the pairwise reference, in a different
//!   (but deterministic) order.

use crate::exec::Conflict;
use crate::value::NodeId;
use std::collections::BTreeSet;

/// Per-iteration heap access log of the reference detector.
#[derive(Clone, Debug, Default)]
pub(crate) struct AccessLog {
    pub(crate) reads: BTreeSet<(NodeId, usize)>,
    pub(crate) writes: BTreeSet<(NodeId, usize)>,
}

/// First conflict in the reference detector's pair-major order, without
/// materializing the full (possibly quadratic) conflict list — the strict
/// abort path, preserving the historical interpreter's early exit.
pub(crate) fn pairwise_first(logs: &[AccessLog]) -> Option<Conflict> {
    for a in 0..logs.len() {
        for b in a + 1..logs.len() {
            for w in &logs[a].writes {
                if logs[b].writes.contains(w) {
                    return Some(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: true,
                    });
                } else if logs[b].reads.contains(w) {
                    return Some(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: false,
                    });
                }
            }
            for w in &logs[b].writes {
                if logs[a].reads.contains(w) && !logs[a].writes.contains(w) {
                    return Some(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: false,
                    });
                }
            }
        }
    }
    None
}

/// The reference pairwise detector (the interpreter's historical
/// algorithm, verbatim): conflicts in pair-major order.
pub(crate) fn pairwise_conflicts(logs: &[AccessLog]) -> Vec<Conflict> {
    let mut out = Vec::new();
    for a in 0..logs.len() {
        for b in a + 1..logs.len() {
            for w in &logs[a].writes {
                if logs[b].writes.contains(w) {
                    out.push(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: true,
                    });
                } else if logs[b].reads.contains(w) {
                    out.push(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: false,
                    });
                }
            }
            // write/read the other way.
            for w in &logs[b].writes {
                if logs[a].reads.contains(w) && !logs[a].writes.contains(w) {
                    out.push(Conflict {
                        iter_a: a,
                        iter_b: b,
                        node: w.0,
                        slot: w.1,
                        write_write: false,
                    });
                }
            }
        }
    }
    out
}

/// Sentinel iteration stamp ("none yet"). Iterations are stored as `u32`;
/// a `parfor` would need over four billion iterations to wrap, which the
/// simulated machine cannot reach in practice.
const NO_ITER: u32 = u32::MAX;

/// Per-slot access cell of the single-pass detector: 32 packed bytes. The
/// first accessing iteration of each kind is stored inline; the spill box
/// only allocates for genuinely contended slots (a second distinct
/// iteration), so conflict-free executions never touch the allocator while
/// recording.
#[derive(Clone, Debug)]
struct SlotCell {
    /// Region generation this cell was last used in (lazy reset).
    gen: u32,
    /// First writing / reading iteration (`NO_ITER` when none yet).
    first_write: u32,
    first_read: u32,
    /// Epoch stamps: last iteration that recorded each kind (dedup).
    last_write: u32,
    last_read: u32,
    /// Further distinct accessing iterations, in order (contended slots).
    spill: Option<Box<Spill>>,
}

#[derive(Clone, Debug, Default)]
struct Spill {
    writes: Vec<u32>,
    reads: Vec<u32>,
}

impl Default for SlotCell {
    fn default() -> Self {
        SlotCell {
            gen: 0,
            first_write: NO_ITER,
            first_read: NO_ITER,
            last_write: NO_ITER,
            last_read: NO_ITER,
            spill: None,
        }
    }
}

const NO_SPILL: &[u32] = &[];

impl SlotCell {
    fn more_writes(&self) -> &[u32] {
        self.spill.as_ref().map_or(NO_SPILL, |s| &s.writes)
    }

    fn more_reads(&self) -> &[u32] {
        self.spill.as_ref().map_or(NO_SPILL, |s| &s.reads)
    }

    fn is_writer(&self, iter: u32) -> bool {
        self.first_write == iter || self.more_writes().binary_search(&iter).is_ok()
    }

    fn writers(&self) -> impl Iterator<Item = u32> + Clone + '_ {
        std::iter::once(self.first_write)
            .filter(|&w| w != NO_ITER)
            .chain(self.more_writes().iter().copied())
    }

    fn readers(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first_read)
            .filter(|&r| r != NO_ITER)
            .chain(self.more_reads().iter().copied())
    }
}

/// Epoch-stamped per-slot access table: the VM's single-pass conflict
/// detector. Cells live in one flat vector parallel to the heap's flat
/// value arena (keyed by the arena index [`crate::value::Heap::load_flat`]
/// reports), and a region *generation* stamp resets cells lazily — so
/// neither region entry nor recording ever hashes, chases per-node
/// pointers, or clears storage. See the module docs for the specification.
#[derive(Debug, Default)]
pub struct ConflictTable {
    /// One cell per flat heap slot, grown on demand.
    cells: Vec<SlotCell>,
    /// Touched slots in first-touch order — `(node, slot, flat)` — for
    /// deterministic emission.
    touched: Vec<(NodeId, u32, u32)>,
    /// Current region generation.
    gen: u32,
    /// Current iteration (the epoch).
    iter: u32,
}

impl ConflictTable {
    /// Reset for a new `parfor` region (one counter bump; cell storage is
    /// reused and reset lazily via the generation stamp).
    pub fn begin_region(&mut self) {
        self.gen += 1;
        self.touched.clear();
        self.iter = 0;
    }

    /// Enter iteration `k` of the current region. Iterations MUST be
    /// entered in ascending order — the per-slot writer/reader lists rely
    /// on it staying sorted (`is_writer` binary-searches them).
    pub fn begin_iter(&mut self, k: usize) {
        debug_assert!(
            self.touched.is_empty() || k as u32 >= self.iter,
            "parfor iterations must be recorded in ascending order"
        );
        self.iter = k as u32;
    }

    fn cell(&mut self, node: NodeId, slot: usize, flat: u32) -> &mut SlotCell {
        let f = flat as usize;
        if self.cells.len() <= f {
            self.cells.resize_with(f + 1, SlotCell::default);
        }
        let cell = &mut self.cells[f];
        if cell.gen != self.gen {
            cell.gen = self.gen;
            cell.first_write = NO_ITER;
            cell.first_read = NO_ITER;
            cell.last_write = NO_ITER;
            cell.last_read = NO_ITER;
            if let Some(s) = cell.spill.as_mut() {
                s.writes.clear();
                s.reads.clear();
            }
            self.touched.push((node, slot as u32, flat));
        }
        cell
    }

    /// Record a heap read of `(node, slot)` (at flat arena index `flat`)
    /// by the current iteration.
    #[inline]
    pub fn record_read(&mut self, node: NodeId, slot: usize, flat: u32) {
        let iter = self.iter;
        let e = self.cell(node, slot, flat);
        if e.last_read != iter {
            e.last_read = iter;
            if e.first_read == NO_ITER {
                e.first_read = iter;
            } else {
                e.spill.get_or_insert_default().reads.push(iter);
            }
        }
    }

    /// Record a heap write of `(node, slot)` (at flat arena index `flat`)
    /// by the current iteration.
    #[inline]
    pub fn record_write(&mut self, node: NodeId, slot: usize, flat: u32) {
        let iter = self.iter;
        let e = self.cell(node, slot, flat);
        if e.last_write != iter {
            e.last_write = iter;
            if e.first_write == NO_ITER {
                e.first_write = iter;
            } else {
                e.spill.get_or_insert_default().writes.push(iter);
            }
        }
    }

    /// First conflict in the table's slot-major emission order, without
    /// materializing the (possibly quadratic) full list — the strict abort
    /// path.
    pub fn first_conflict(&self) -> Option<Conflict> {
        for &(node, slot, flat) in &self.touched {
            let e = &self.cells[flat as usize];
            let slot = slot as usize;
            let mut ws = e.writers();
            if let Some(w1) = ws.next() {
                if let Some(w2) = ws.next() {
                    return Some(Conflict {
                        iter_a: w1 as usize,
                        iter_b: w2 as usize,
                        node,
                        slot,
                        write_write: true,
                    });
                }
                for r in e.readers() {
                    if !e.is_writer(r) {
                        return Some(Conflict {
                            iter_a: w1.min(r) as usize,
                            iter_b: w1.max(r) as usize,
                            node,
                            slot,
                            write_write: false,
                        });
                    }
                }
            }
        }
        None
    }

    /// Merge the region's accesses into the conflict list: one pass over
    /// the touched slots, in slot-major (first-touch) order.
    pub fn finish(&mut self) -> Vec<Conflict> {
        let mut out = Vec::new();
        for &(node, slot, flat) in &self.touched {
            let e = &self.cells[flat as usize];
            let slot = slot as usize;
            let mut ws = e.writers();
            while let Some(w1) = ws.next() {
                for w2 in ws.clone() {
                    out.push(Conflict {
                        iter_a: w1 as usize,
                        iter_b: w2 as usize,
                        node,
                        slot,
                        write_write: true,
                    });
                }
            }
            if e.first_write == NO_ITER {
                continue; // readers without a writer never conflict
            }
            for r in e.readers() {
                // Writer/reader lists are in ascending iteration order.
                if e.is_writer(r) {
                    continue; // stronger write/write conflicts already cover it
                }
                for w in e.writers() {
                    out.push(Conflict {
                        iter_a: w.min(r) as usize,
                        iter_b: w.max(r) as usize,
                        node,
                        slot,
                        write_write: false,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay a set of logs through the single-pass table.
    fn table_conflicts(logs: &[AccessLog]) -> Vec<Conflict> {
        let mut t = ConflictTable::default();
        t.begin_region();
        for (k, log) in logs.iter().enumerate() {
            t.begin_iter(k);
            for &(n, s) in &log.reads {
                t.record_read(n, s, n * 8 + s as u32);
            }
            for &(n, s) in &log.writes {
                t.record_write(n, s, n * 8 + s as u32);
            }
        }
        t.finish()
    }

    fn log(reads: &[(NodeId, usize)], writes: &[(NodeId, usize)]) -> AccessLog {
        AccessLog {
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    fn sorted(mut v: Vec<Conflict>) -> Vec<Conflict> {
        v.sort();
        v
    }

    #[test]
    fn detectors_agree_on_shared_writer() {
        // Three iterations write node 0 slot 1; one also reads it; a fourth
        // only reads. Mixed ww and wr conflicts.
        let logs = vec![
            log(&[(0, 1)], &[(0, 1)]),
            log(&[], &[(0, 1)]),
            log(&[], &[(0, 1), (2, 0)]),
            log(&[(0, 1), (2, 0)], &[]),
        ];
        let p = sorted(pairwise_conflicts(&logs));
        let t = sorted(table_conflicts(&logs));
        assert_eq!(p, t);
        assert!(p.iter().any(|c| c.write_write));
        assert!(p.iter().any(|c| !c.write_write));
        // 3 ww pairs on (0,1), iter 3 reads it → 3 wr, plus (2,0) w/r pair.
        assert_eq!(p.len(), 3 + 3 + 1);
    }

    #[test]
    fn detectors_agree_on_disjoint_accesses() {
        let logs = vec![
            log(&[(0, 0)], &[(1, 0)]),
            log(&[(0, 0)], &[(2, 0)]),
            log(&[(0, 0)], &[(3, 0)]),
        ];
        assert!(pairwise_conflicts(&logs).is_empty());
        assert!(table_conflicts(&logs).is_empty());
    }

    #[test]
    fn read_then_write_in_same_iteration_is_not_self_conflicting() {
        let logs = vec![log(&[(5, 2)], &[(5, 2)]), log(&[(5, 2)], &[])];
        let p = sorted(pairwise_conflicts(&logs));
        let t = sorted(table_conflicts(&logs));
        assert_eq!(p, t);
        assert_eq!(p.len(), 1);
        assert!(!p[0].write_write);
        assert_eq!((p[0].iter_a, p[0].iter_b), (0, 1));
    }

    #[test]
    fn epoch_stamp_dedups_repeated_accesses() {
        let mut t = ConflictTable::default();
        t.begin_region();
        t.begin_iter(0);
        for _ in 0..10 {
            t.record_write(7, 3, 59);
            t.record_read(7, 3, 59);
        }
        t.begin_iter(1);
        t.record_write(7, 3, 59);
        let cs = t.finish();
        // One ww pair, not 10.
        assert_eq!(cs.len(), 1);
        assert!(cs[0].write_write);
    }

    #[test]
    fn table_resets_between_regions() {
        let mut t = ConflictTable::default();
        t.begin_region();
        t.begin_iter(0);
        t.record_write(1, 0, 8);
        t.begin_iter(1);
        t.record_write(1, 0, 8);
        assert_eq!(t.finish().len(), 1);
        t.begin_region();
        t.begin_iter(0);
        t.record_write(1, 0, 8);
        assert!(t.finish().is_empty());
    }
}
