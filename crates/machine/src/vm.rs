//! The bytecode VM: a register-style executor over [`CompiledProgram`]
//! that preserves the tree-walking interpreter's observable semantics —
//! outputs, heap state, `ExecStats`, cycle counts, fuel exhaustion points,
//! speculative traversability, shape checking — while running an order of
//! magnitude faster:
//!
//! * frames are windows into one contiguous `Vec<Value>` stack (no
//!   `HashMap<String, Value>` per call, no per-name hashing),
//! * field accesses use compile-time-resolved record offsets,
//! * `parfor` iteration frames are a memcpy of the window, not a hash-map
//!   clone,
//! * conflict detection uses the epoch-stamped single-pass
//!   [`ConflictTable`] instead of per-iteration sets and pairwise
//!   intersection — O(total accesses + conflicts) instead of
//!   O(iterations² · set size). Conflict *sets* equal the reference
//!   detector's; emission order is slot-major rather than pair-major
//!   (see the invariants list in [`crate::conflict`]).
//!
//! The instruction set and the peephole-fused statement shapes the
//! dispatch loop executes are inventoried in [`crate::compile`]'s module
//! docs; the dispatch loop itself is one `match` per instruction with no
//! separate decode step (instructions are already structured values).
//!
//! Known divergences from the interpreter, all confined to error paths:
//! reading a local before its `var` statement executes yields NULL instead
//! of an "unbound variable" error; operands textually after a
//! type-faulting operand may have been evaluated (side effects on the
//! discarded machine) before the identical error is raised; and under
//! `strict_conflicts` the abort carries the first conflict in the VM's
//! slot-major emission order, which may name a different (equally real)
//! conflicting pair than the interpreter's pair-major first hit.

use crate::compile::{CompiledProgram, Instr};
use crate::conflict::ConflictTable;
use crate::exec::{Conflict, Exec, ExecStats, MachineConfig, RuntimeError};
use crate::profile::VmProfile;
use crate::shapecheck::ShapeReport;
use crate::value::{Heap, NodeId, Value};
use adds_obs::trace;

type RResult<T> = Result<T, RuntimeError>;

/// How a code region stopped executing.
enum Ended {
    /// `return` (or fell off the function's end).
    Returned(Value),
    /// Reached the end of a `parfor` iteration body.
    Iter,
}

/// The bytecode machine. Owns the heap for the duration of a run.
pub struct Vm<'p> {
    /// The compiled program being run.
    pub prog: &'p CompiledProgram,
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// The heap.
    pub heap: Heap,
    /// Simulated clock, in cycles.
    pub clock: u64,
    /// Execution counters.
    pub stats: ExecStats,
    /// Conflicts detected in `parfor` regions (non-strict mode).
    pub conflicts: Vec<Conflict>,
    /// Dynamic ADDS shape violations (when `check_shapes` is on).
    pub shape_reports: Vec<ShapeReport>,
    /// Lines printed by the program.
    pub output: Vec<String>,
    fuel: u64,
    depth: usize,
    stack: Vec<Value>,
    /// Reusable per-PE time buffer for non-nested `parfor` regions.
    pe_scratch: Vec<u64>,
    table: ConflictTable,
    /// Inside a `parfor` iteration with conflict detection active.
    detecting: bool,
    /// Opt-in execution profile ([`Vm::enable_profiling`]); `None` costs
    /// the dispatch loop one branch per instruction.
    profile: Option<Box<VmProfile>>,
    /// Per-superblock static cycle charge, resolved once against this
    /// VM's cost model (the program stores model-independent counts).
    sb_cycles: Vec<u64>,
}

impl<'p> Vm<'p> {
    /// A fresh machine for `prog`.
    pub fn new(prog: &'p CompiledProgram, cfg: MachineConfig) -> Vm<'p> {
        let sb_cycles = prog
            .superblocks
            .iter()
            .map(|b| b.charge.cycles(&cfg.cost))
            .collect();
        Vm {
            prog,
            fuel: cfg.fuel.unwrap_or(u64::MAX),
            cfg,
            heap: Heap::new(),
            clock: 0,
            stats: ExecStats::default(),
            conflicts: Vec::new(),
            shape_reports: Vec::new(),
            output: Vec::new(),
            depth: 0,
            stack: Vec::new(),
            pe_scratch: Vec::new(),
            table: ConflictTable::default(),
            detecting: false,
            profile: None,
            sb_cycles,
        }
    }

    /// Turn on per-opcode counting and `parfor` cycle attribution for
    /// subsequent calls (see [`crate::profile`]). Idempotent; counts
    /// accumulate across calls until [`Vm::take_profile`].
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            let mut p = Box::<VmProfile>::default();
            // Pre-size the per-superblock counters so the hot-path bump
            // never takes the grow branch (ids are compiler-generated
            // and bounded by the program's block count).
            p.sb_counts.resize(self.prog.superblock_count(), 0);
            self.profile = Some(p);
        }
    }

    /// The accumulated profile, if profiling is enabled.
    pub fn profile(&self) -> Option<&VmProfile> {
        self.profile.as_deref()
    }

    /// Detach the accumulated profile, turning profiling back off.
    pub fn take_profile(&mut self) -> Option<Box<VmProfile>> {
        self.profile.take()
    }

    /// Allocate a record of `ty` from host code.
    pub fn host_alloc(&mut self, ty: &str) -> NodeId {
        let prog = self.prog;
        let layout = prog.layouts.get(ty).expect("known record type");
        self.heap.alloc(layout)
    }

    /// Host field write (no cycle cost).
    pub fn host_store(&mut self, node: NodeId, field: &str, idx: usize, v: Value) {
        let off = self.prog.layouts.host_offset(&self.heap, node, field, idx);
        self.heap.store(node, off, v).expect("valid store");
    }

    /// Host field read (no cycle cost).
    pub fn host_load(&self, node: NodeId, field: &str, idx: usize) -> Value {
        let off = self.prog.layouts.host_offset(&self.heap, node, field, idx);
        self.heap.load(node, off).expect("valid load")
    }

    /// Call a function by name with the given argument values.
    pub fn call(&mut self, name: &str, args: &[Value]) -> RResult<Value> {
        let mut span = trace::span("machine.run", "machine");
        if let Some(s) = span.as_mut() {
            s.arg("func", name);
        }
        let func = self
            .prog
            .func_id(name)
            .ok_or_else(|| RuntimeError::NoSuchFunction(name.to_string()))?;
        let fc = &self.prog.funcs[func as usize];
        if fc.n_params as usize != args.len() {
            return Err(RuntimeError::Type(format!(
                "{name} expects {} args, got {}",
                fc.n_params,
                args.len()
            )));
        }
        let frame_size = fc.frame_size as usize;
        self.clock += self.cfg.cost.call;
        self.stats.calls += 1;
        let depth0 = self.depth;
        self.depth += 1;
        self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
        let base = self.stack.len();
        self.stack.extend_from_slice(args);
        self.stack.resize(base + frame_size, Value::Null);
        let ended = match self.exec(func, base, 0) {
            Ok(e) => e,
            Err(e) => {
                // Leave the machine reusable after a recoverable error
                // (e.g. out of fuel): unwind the frame stack and the
                // parfor detection flag that the aborted execution may
                // have left set.
                self.stack.truncate(base);
                self.depth = depth0;
                self.detecting = false;
                return Err(e);
            }
        };
        self.stack.truncate(base);
        self.depth -= 1;
        match ended {
            Ended::Returned(v) => Ok(v),
            Ended::Iter => unreachable!("IterEnd outside parfor body"),
        }
    }

    fn burn_fuel(&mut self) -> RResult<()> {
        self.stats.stmts += 1;
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// [`crate::ops::binop`] with the alu fast path inlined at the call
    /// site: int arithmetic and pointer/NULL compares never leave
    /// registers, everything else takes the general (identical) path.
    #[inline(always)]
    fn binop(&mut self, op: adds_lang::ast::BinOp, l: Value, r: Value) -> RResult<Value> {
        if let Some(v) = crate::ops::binop_fast(op, l, r) {
            self.clock += self.cfg.cost.alu;
            Ok(v)
        } else {
            crate::ops::binop(op, l, r, &self.cfg.cost, &mut self.clock)
        }
    }

    #[inline]
    fn slot(&self, base: usize, s: u32) -> Value {
        debug_assert!(base + (s as usize) < self.stack.len());
        // SAFETY: slots are compiler-assigned indices < frame_size, and the
        // frame window [base, base + frame_size) is always in bounds.
        unsafe { *self.stack.get_unchecked(base + s as usize) }
    }

    #[inline]
    fn set_slot(&mut self, base: usize, s: u32, v: Value) {
        debug_assert!(base + (s as usize) < self.stack.len());
        // SAFETY: as in `slot`.
        unsafe { *self.stack.get_unchecked_mut(base + s as usize) = v }
    }

    /// Run `func`'s code from `pc` over the frame at `base`.
    fn exec(&mut self, func: u32, base: usize, mut pc: usize) -> RResult<Ended> {
        let prog = self.prog;
        let code = &prog.funcs[func as usize].code;
        loop {
            debug_assert!(pc < code.len());
            // SAFETY: every jump target is compiler-generated and in
            // bounds; straight-line fallthrough is terminated by
            // RetNull/IterEnd before the end of the code array.
            let instr = unsafe { code.get_unchecked(pc) };
            if let Some(p) = self.profile.as_deref_mut() {
                p.op_counts[instr.opcode() as usize] += 1;
            }
            match instr {
                Instr::Super { sb } => self.run_super(*sb, base)?,
                Instr::SuperLoop { lp } => {
                    self.run_loop(*lp, base)?;
                    pc = prog.loop_blocks[*lp as usize].exit as usize;
                    continue;
                }
                Instr::InlineEnter => {
                    self.clock += self.cfg.cost.call;
                    self.stats.calls += 1;
                    self.depth += 1;
                    self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
                }
                Instr::InlineRet => self.depth -= 1,
                Instr::Const { dst, v } => self.set_slot(base, *dst, *v),
                Instr::Copy { dst, src } => {
                    let v = self.slot(base, *src);
                    self.set_slot(base, *dst, v);
                }
                Instr::Pes { dst } => self.set_slot(base, *dst, Value::Int(self.cfg.pes as i64)),
                Instr::Alloc { dst, ty } => {
                    self.clock += self.cfg.cost.alloc;
                    self.stats.allocs += 1;
                    let node = self.heap.alloc(&prog.type_layouts[*ty as usize]);
                    self.set_slot(base, *dst, Value::Ptr(node));
                }
                Instr::Load {
                    dst,
                    base: b,
                    off,
                    access,
                } => {
                    let bv = self.slot(base, *b);
                    let v = self.load::<true>(bv, *off as usize, *access)?;
                    self.set_slot(base, *dst, v);
                }
                Instr::FuelLoad {
                    dst,
                    base: b,
                    off,
                    access,
                } => {
                    self.burn_fuel()?;
                    let bv = self.slot(base, *b);
                    let v = self.load::<true>(bv, *off as usize, *access)?;
                    self.set_slot(base, *dst, v);
                }
                Instr::FuelCopy { dst, src } => {
                    self.burn_fuel()?;
                    let v = self.slot(base, *src);
                    self.set_slot(base, *dst, v);
                }
                Instr::FuelConst { dst, v } => {
                    self.burn_fuel()?;
                    self.set_slot(base, *dst, *v);
                }
                Instr::LoadIdx {
                    dst,
                    base: b,
                    idx,
                    off,
                    len,
                    access,
                } => {
                    let i = self.index(base, *idx)?;
                    let bv = self.slot(base, *b);
                    let v = if i < *len as usize {
                        self.load::<true>(bv, *off as usize + i, *access)?
                    } else {
                        self.load_oob::<true>(bv, i, *access)?
                    };
                    self.set_slot(base, *dst, v);
                }
                Instr::Store {
                    base: b,
                    src,
                    off,
                    is_ptr,
                    access,
                } => {
                    let bv = self.slot(base, *b);
                    let v = self.slot(base, *src);
                    self.store::<true>(bv, *off as usize, *is_ptr, *access, v)?;
                }
                Instr::StoreIdx {
                    base: b,
                    idx,
                    src,
                    off,
                    len,
                    is_ptr,
                    access,
                } => {
                    let i = self.index(base, *idx)?;
                    let bv = self.slot(base, *b);
                    let v = self.slot(base, *src);
                    if i < *len as usize {
                        self.store::<true>(bv, *off as usize + i, *is_ptr, *access, v)?;
                    } else {
                        self.store_oob::<true>(bv, i, *access)?;
                    }
                }
                Instr::Un { op, dst, src } => {
                    let v = self.slot(base, *src);
                    let r = crate::ops::unop(*op, v, &self.cfg.cost, &mut self.clock)?;
                    self.set_slot(base, *dst, r);
                }
                Instr::Bin { op, dst, lhs, rhs } => {
                    let l = self.slot(base, *lhs);
                    let r = self.slot(base, *rhs);
                    let v = self.binop(*op, l, r)?;
                    self.set_slot(base, *dst, v);
                }
                Instr::BinK { op, dst, lhs, k } => {
                    let l = self.slot(base, *lhs);
                    let v = self.binop(*op, l, *k)?;
                    self.set_slot(base, *dst, v);
                }
                Instr::Sqrt { dst, src } => {
                    let v = self
                        .slot(base, *src)
                        .as_real()
                        .map_err(RuntimeError::Type)?;
                    self.clock += self.cfg.cost.sqrt;
                    self.set_slot(base, *dst, Value::Real(v.sqrt()));
                }
                Instr::Fabs { dst, src } => {
                    let v = self
                        .slot(base, *src)
                        .as_real()
                        .map_err(RuntimeError::Type)?;
                    self.clock += self.cfg.cost.fp;
                    self.set_slot(base, *dst, Value::Real(v.abs()));
                }
                Instr::Abs { dst, src } => {
                    let v = self.slot(base, *src).as_int().map_err(RuntimeError::Type)?;
                    self.clock += self.cfg.cost.alu;
                    self.set_slot(base, *dst, Value::Int(v.abs()));
                }
                Instr::MinMax { dst, a, b, is_min } => {
                    let x = self.slot(base, *a).as_real().map_err(RuntimeError::Type)?;
                    let y = self.slot(base, *b).as_real().map_err(RuntimeError::Type)?;
                    self.clock += self.cfg.cost.fp;
                    let v = if *is_min { x.min(y) } else { x.max(y) };
                    self.set_slot(base, *dst, Value::Real(v));
                }
                Instr::Itor { dst, src } => {
                    let v = self.slot(base, *src).as_int().map_err(RuntimeError::Type)?;
                    self.clock += self.cfg.cost.alu;
                    self.set_slot(base, *dst, Value::Real(v as f64));
                }
                Instr::Print { src } => {
                    let v = self.slot(base, *src);
                    self.output.push(v.to_string());
                }
                Instr::Call {
                    dst,
                    func: callee,
                    args,
                    argc,
                } => {
                    self.clock += self.cfg.cost.call;
                    self.stats.calls += 1;
                    self.depth += 1;
                    self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
                    let callee_size = prog.funcs[*callee as usize].frame_size as usize;
                    let callee_base = self.stack.len();
                    let args_at = base + *args as usize;
                    self.stack
                        .extend_from_within(args_at..args_at + *argc as usize);
                    self.stack.resize(callee_base + callee_size, Value::Null);
                    let ended = self.exec(*callee, callee_base, 0)?;
                    self.stack.truncate(callee_base);
                    self.depth -= 1;
                    let v = match ended {
                        Ended::Returned(v) => v,
                        Ended::Iter => unreachable!("IterEnd outside parfor body"),
                    };
                    self.set_slot(base, *dst, v);
                }
                Instr::Ret { src } => return Ok(Ended::Returned(self.slot(base, *src))),
                Instr::RetNull => return Ok(Ended::Returned(Value::Null)),
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::JumpIfFalse {
                    cond,
                    branch,
                    target,
                } => {
                    if *branch {
                        self.clock += self.cfg.cost.branch;
                    }
                    if !self
                        .slot(base, *cond)
                        .truthy()
                        .map_err(RuntimeError::Type)?
                    {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JumpCmpFalse {
                    op,
                    lhs,
                    rhs,
                    branch,
                    target,
                } => {
                    if *branch {
                        self.clock += self.cfg.cost.branch;
                    }
                    let l = self.slot(base, *lhs);
                    let r = self.slot(base, *rhs);
                    let v = self.binop(*op, l, r)?;
                    if !v.truthy().map_err(RuntimeError::Type)? {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JumpCmpKFalse {
                    op,
                    lhs,
                    k,
                    branch,
                    target,
                } => {
                    if *branch {
                        self.clock += self.cfg.cost.branch;
                    }
                    let l = self.slot(base, *lhs);
                    let v = self.binop(*op, l, *k)?;
                    if !v.truthy().map_err(RuntimeError::Type)? {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::FuelJump { target } => {
                    self.burn_fuel()?;
                    pc = *target as usize;
                    continue;
                }
                Instr::Branch => self.clock += self.cfg.cost.branch,
                Instr::Fuel => self.burn_fuel()?,
                Instr::IntCheck { slot } => {
                    self.slot(base, *slot)
                        .as_int()
                        .map_err(RuntimeError::Type)?;
                }
                Instr::ChaseLoop {
                    k,
                    i,
                    hi,
                    ptr,
                    off,
                    access,
                } => {
                    let (Value::Int(mut i), Value::Int(hi)) =
                        (self.slot(base, *i), self.slot(base, *hi))
                    else {
                        unreachable!("ChaseLoop after IntCheck")
                    };
                    let off = *off as usize;
                    if i <= hi {
                        // The walk's length is fixed up front (no early
                        // exit short of a fault), so when fuel covers the
                        // whole walk and detection is off the charges can
                        // be applied in bulk and the chase run as a tight
                        // pointer loop. Totals are identical to the
                        // per-step path; only the interleaving differs,
                        // which is unobservable outside a fault.
                        let steps = (hi as i128 - i as i128 + 1) as u128;
                        let need = steps.saturating_mul(2);
                        if !self.detecting && need <= self.fuel as u128 {
                            let steps = steps as u64;
                            self.fuel -= 2 * steps;
                            self.stats.stmts += 2 * steps;
                            self.clock += (self.cfg.cost.branch + self.cfg.cost.load) * steps;
                            let mut bv = self.slot(base, *ptr);
                            let mut rem = steps;
                            while rem > 0 {
                                match bv {
                                    Value::Ptr(node) => {
                                        bv = self
                                            .heap
                                            .load(node, off)
                                            .map_err(RuntimeError::Other)?;
                                        rem -= 1;
                                    }
                                    // Speculative walks ride NULL to the
                                    // end: every remaining load yields
                                    // NULL (and was already charged).
                                    Value::Null if self.cfg.speculative => break,
                                    other => return Err(self.read_fault(other, *access)),
                                }
                            }
                            self.set_slot(base, *ptr, bv);
                            self.set_slot(base, *k, Value::Int(hi));
                        } else {
                            loop {
                                // ForHead: branch charge + loop-variable
                                // update.
                                self.clock += self.cfg.cost.branch;
                                self.set_slot(base, *k, Value::Int(i));
                                // The chase statement: fuel, then the load
                                // (same dispatch as the Load opcode).
                                self.burn_fuel()?;
                                let bv = self.slot(base, *ptr);
                                let next = self.load::<true>(bv, off, *access)?;
                                self.set_slot(base, *ptr, next);
                                // ForNext: fuel, then advance or exit.
                                self.burn_fuel()?;
                                if i < hi {
                                    i += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                }
                Instr::FieldRmw {
                    op,
                    base: b,
                    src,
                    off,
                    is_ptr,
                    access,
                } => {
                    self.burn_fuel()?;
                    let bv = self.slot(base, *b);
                    let cur = self.load::<true>(bv, *off as usize, *access)?;
                    let r = self.slot(base, *src);
                    let v = self.binop(*op, cur, r)?;
                    self.store::<true>(bv, *off as usize, *is_ptr, *access, v)?;
                }
                Instr::FieldRmwK {
                    op,
                    base: b,
                    k,
                    off,
                    is_ptr,
                    access,
                } => {
                    self.burn_fuel()?;
                    let bv = self.slot(base, *b);
                    let cur = self.load::<true>(bv, *off as usize, *access)?;
                    let v = self.binop(*op, cur, *k)?;
                    self.store::<true>(bv, *off as usize, *is_ptr, *access, v)?;
                }
                Instr::GuardRmw {
                    op,
                    cond,
                    src,
                    off,
                    is_ptr,
                    access,
                } => {
                    // `Fuel` + `JumpCmpKFalse(Ne, NULL)` + guarded
                    // `FieldRmw`, charge-for-charge.
                    self.burn_fuel()?;
                    self.clock += self.cfg.cost.branch;
                    let bv = self.slot(base, *cond);
                    let taken = self
                        .binop(adds_lang::ast::BinOp::Ne, bv, Value::Null)?
                        .truthy()
                        .map_err(RuntimeError::Type)?;
                    if taken {
                        self.burn_fuel()?;
                        let cur = self.load::<true>(bv, *off as usize, *access)?;
                        let r = self.slot(base, *src);
                        let v = self.binop(*op, cur, r)?;
                        self.store::<true>(bv, *off as usize, *is_ptr, *access, v)?;
                    }
                }
                Instr::ForEnter { i, hi, exit } => {
                    let (Value::Int(a), Value::Int(b)) =
                        (self.slot(base, *i), self.slot(base, *hi))
                    else {
                        unreachable!("ForEnter after IntCheck")
                    };
                    if a > b {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Instr::ForHead { var, i } => {
                    self.clock += self.cfg.cost.branch;
                    let v = self.slot(base, *i);
                    self.set_slot(base, *var, v);
                }
                Instr::ForNext { i, hi, head } => {
                    self.burn_fuel()?;
                    let (Value::Int(a), Value::Int(b)) =
                        (self.slot(base, *i), self.slot(base, *hi))
                    else {
                        unreachable!("ForNext after IntCheck")
                    };
                    if a < b {
                        self.set_slot(base, *i, Value::Int(a + 1));
                        pc = *head as usize;
                        continue;
                    }
                }
                Instr::ParFor {
                    var,
                    lo,
                    hi,
                    body_end,
                } => {
                    let (Value::Int(lo), Value::Int(hi)) =
                        (self.slot(base, *lo), self.slot(base, *hi))
                    else {
                        unreachable!("ParFor after IntCheck")
                    };
                    self.parfor(func, base, pc + 1, *var, lo, hi)?;
                    pc = *body_end as usize;
                    continue;
                }
                Instr::IterEnd => return Ok(Ended::Iter),
            }
            pc += 1;
        }
    }

    /// Execute one superblock: when remaining fuel covers the whole
    /// block, charge the aggregate fuel and static cycles up front and
    /// run the constituent ops without per-op accounting; otherwise fall
    /// back to fully-charged per-op execution, which reproduces the
    /// interpreter's exact fuel-exhaustion point (total burns exceed the
    /// remaining fuel, so the slow path always stops inside the block).
    #[inline]
    fn run_super(&mut self, sb: u32, base: usize) -> RResult<()> {
        let prog = self.prog;
        debug_assert!((sb as usize) < prog.superblocks.len());
        // SAFETY: superblock ids are compiler-generated indices into
        // `superblocks`, and `sb_cycles` is built 1:1 from it in `new`.
        let block = unsafe { prog.superblocks.get_unchecked(sb as usize) };
        let need = block.fuel as u64;
        if self.fuel >= need {
            self.fuel -= need;
            self.stats.stmts += need;
            self.clock += unsafe { *self.sb_cycles.get_unchecked(sb as usize) };
            for op in block.ops.iter() {
                // The slot-shuffle ops that dominate inlined-call
                // preambles run inline (their fuel/charges are already
                // bulk-applied above); everything else dispatches.
                match op {
                    Instr::Copy { dst, src } | Instr::FuelCopy { dst, src } => {
                        let v = self.slot(base, *src);
                        self.set_slot(base, *dst, v);
                    }
                    Instr::Const { dst, v } | Instr::FuelConst { dst, v } => {
                        self.set_slot(base, *dst, *v);
                    }
                    Instr::IntCheck { slot } => {
                        self.slot(base, *slot)
                            .as_int()
                            .map_err(RuntimeError::Type)?;
                    }
                    Instr::InlineEnter => {
                        self.stats.calls += 1;
                        self.depth += 1;
                        self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
                    }
                    Instr::InlineRet => self.depth -= 1,
                    op => self.exec_data::<false>(op, base)?,
                }
            }
        } else {
            for op in block.ops.iter() {
                self.exec_data::<true>(op, base)?;
            }
        }
        if let Some(p) = self.profile.as_deref_mut() {
            let i = sb as usize;
            if p.sb_counts.len() <= i {
                p.sb_counts.resize(i + 1, 0);
            }
            p.sb_counts[i] += 1;
        }
        Ok(())
    }

    /// Run a fused `while` loop to completion: per iteration, the head
    /// check (branch charge + comparison, as the fused jump it replaces),
    /// the body superblock, and the backedge fuel burn — one dispatch for
    /// the whole loop.
    ///
    /// The body is executed through [`Vm::drive_loop`], monomorphized
    /// per recognized body shape: the canonical chase bodies the fusion
    /// pass produces for list traversals compile to dedicated
    /// straight-line loops with no per-op dispatch at all, everything
    /// else takes the generic op-iterating instantiation.
    fn run_loop(&mut self, lp: u32, base: usize) -> RResult<()> {
        let prog = self.prog;
        let lb = prog.loop_blocks[lp as usize];
        debug_assert!((lb.body as usize) < prog.superblocks.len());
        // SAFETY: loop bodies are compiler-assigned superblock ids; see
        // `run_super`. Hoisting the block, its fuel, and its resolved
        // cycle charge out of the iteration loop is what makes the fused
        // loop pay one dispatch total instead of one per op.
        let block = unsafe { prog.superblocks.get_unchecked(lb.body as usize) };
        let cyc = unsafe { *self.sb_cycles.get_unchecked(lb.body as usize) };
        let (iters, result) = match &*block.ops {
            // `p.f := p.f ⊕ x; p := p.next` — in-place field update plus
            // pointer advance (sequential list_scale, orth row bodies).
            [Instr::FieldRmw {
                op,
                base: rb,
                src,
                off,
                is_ptr,
                access,
            }, Instr::FuelLoad {
                dst,
                base: nb,
                off: noff,
                access: nacc,
            }] => {
                let (op, rb, src, off, is_ptr, access) =
                    (*op, *rb, *src, *off as usize, *is_ptr, *access);
                let (dst, nb, noff, nacc) = (*dst, *nb, *noff as usize, *nacc);
                let canonical = matches!(
                    lb.head,
                    crate::compile::LoopHead::CmpK {
                        op: adds_lang::ast::BinOp::Ne,
                        lhs,
                        k: Value::Null,
                    } if lhs == dst
                ) && rb == dst
                    && nb == dst
                    && src != dst
                    && !self.detecting;
                if canonical {
                    self.loop_rmw_chase(
                        lb, block, cyc, base, op, dst, src, off, is_ptr, access, noff,
                    )
                } else {
                    self.drive_loop(lb.head, block, cyc, base, move |vm| {
                        let bv = vm.slot(base, rb);
                        let cur = vm.load::<false>(bv, off, access)?;
                        let r = vm.slot(base, src);
                        let v = vm.binop(op, cur, r)?;
                        vm.store::<false>(bv, off, is_ptr, access, v)?;
                        let nv = vm.slot(base, nb);
                        let v = vm.load::<false>(nv, noff, nacc)?;
                        vm.set_slot(base, dst, v);
                        Ok(())
                    })
                }
            }
            // `acc := acc ⊕ p.f; p := p.next` — reduction over a chain
            // (list_sum, sequential and passthrough-parallel).
            [Instr::FuelLoad {
                dst: t,
                base: fb,
                off: foff,
                access: facc,
            }, Instr::Bin {
                op,
                dst: a,
                lhs,
                rhs,
            }, Instr::FuelLoad {
                dst,
                base: nb,
                off: noff,
                access: nacc,
            }] => {
                let (t, fb, foff, facc) = (*t, *fb, *foff as usize, *facc);
                let (op, a, lhs, rhs) = (*op, *a, *lhs, *rhs);
                let (dst, nb, noff, nacc) = (*dst, *nb, *noff as usize, *nacc);
                let canonical = matches!(
                    lb.head,
                    crate::compile::LoopHead::CmpK {
                        op: adds_lang::ast::BinOp::Ne,
                        lhs,
                        k: Value::Null,
                    } if lhs == dst
                ) && fb == dst
                    && nb == dst
                    && lhs == a
                    && rhs == t
                    && a != dst
                    && t != dst
                    && a != t
                    && !self.detecting;
                if canonical {
                    self.loop_sum_chase(lb, block, cyc, base, op, dst, t, a, foff, noff)
                } else {
                    self.drive_loop(lb.head, block, cyc, base, move |vm| {
                        let bv = vm.slot(base, fb);
                        let v = vm.load::<false>(bv, foff, facc)?;
                        vm.set_slot(base, t, v);
                        let l = vm.slot(base, lhs);
                        let r = vm.slot(base, rhs);
                        let v = vm.binop(op, l, r)?;
                        vm.set_slot(base, a, v);
                        let nv = vm.slot(base, nb);
                        let v = vm.load::<false>(nv, noff, nacc)?;
                        vm.set_slot(base, dst, v);
                        Ok(())
                    })
                }
            }
            _ => self.drive_loop(lb.head, block, cyc, base, |vm| {
                for op in block.ops.iter() {
                    vm.exec_data::<false>(op, base)?;
                }
                Ok(())
            }),
        };
        if iters > 0 {
            if let Some(p) = self.profile.as_deref_mut() {
                // Each iteration executed one superblock; the SuperLoop
                // dispatch itself was counted by the main loop.
                p.op_counts[crate::profile::Opcode::Super as usize] += iters;
                let i = lb.body as usize;
                if p.sb_counts.len() <= i {
                    p.sb_counts.resize(i + 1, 0);
                }
                p.sb_counts[i] += iters;
            }
        }
        result
    }

    /// Register-carried driver for the canonical in-place update chase
    /// `while (p != NULL) { p->f = p->f op x; p = p->next }`: the loop
    /// pointer, fuel, clock, and statement counter live in locals for the
    /// whole loop and are written back only on exit. Any state the tight
    /// loop does not model — a non-pointer loop value, fuel below the
    /// block charge — is synced back and handed to [`Vm::drive_loop`],
    /// which replays the iteration with exact per-op accounting.
    #[allow(clippy::too_many_arguments)]
    fn loop_rmw_chase(
        &mut self,
        lb: crate::compile::LoopBlock,
        block: &crate::compile::SuperBlock,
        cyc: u64,
        base: usize,
        op: adds_lang::ast::BinOp,
        ptr: u32,
        src: u32,
        off: usize,
        is_ptr: bool,
        access: u32,
        noff: usize,
    ) -> (u64, RResult<()>) {
        let need = block.fuel as u64;
        let head_chg = self.cfg.cost.branch + self.cfg.cost.alu;
        let alu = self.cfg.cost.alu;
        let check_shapes = self.cfg.check_shapes;
        let mut p = self.slot(base, ptr);
        // Loop-invariant: the body writes only `ptr` and the heap.
        let xv = self.slot(base, src);
        let mut fuel = self.fuel;
        let mut clock = self.clock;
        let mut stmts = self.stats.stmts;
        let mut iters: u64 = 0;
        let mut resume = false;
        macro_rules! sync {
            () => {
                self.fuel = fuel;
                self.clock = clock;
                self.stats.stmts = stmts;
                self.set_slot(base, ptr, p);
            };
        }
        let result = loop {
            let node = match p {
                Value::Ptr(n) => n,
                Value::Null => {
                    clock += head_chg;
                    break Ok(());
                }
                // Charges nothing: drive_loop replays the head exactly.
                _ => {
                    resume = true;
                    break Ok(());
                }
            };
            clock += head_chg;
            if fuel < need {
                clock -= head_chg;
                resume = true;
                break Ok(());
            }
            fuel -= need;
            stmts += need;
            clock += cyc;
            let cur = match self.heap.load(node, off) {
                Ok(v) => v,
                Err(e) => break Err(RuntimeError::Other(e)),
            };
            let v = match crate::ops::binop_fast(op, cur, xv) {
                Some(v) => {
                    clock += alu;
                    v
                }
                None => match crate::ops::binop(op, cur, xv, &self.cfg.cost, &mut clock) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                },
            };
            if let Err(e) = self.heap.store(node, off, v) {
                break Err(RuntimeError::Other(e));
            }
            if check_shapes && is_ptr {
                if let Err(e) = self.shape_check_store(node, access, v) {
                    break Err(e);
                }
            }
            p = match self.heap.load(node, noff) {
                Ok(v) => v,
                Err(e) => break Err(RuntimeError::Other(e)),
            };
            iters += 1;
            // Backedge fuel burn, inline ([`Vm::burn_fuel`]).
            stmts += 1;
            if fuel == 0 {
                break Err(RuntimeError::OutOfFuel);
            }
            fuel -= 1;
        };
        sync!();
        if resume {
            let (more, r) = self.drive_loop(lb.head, block, cyc, base, |vm| {
                for op in block.ops.iter() {
                    vm.exec_data::<false>(op, base)?;
                }
                Ok(())
            });
            (iters + more, r)
        } else {
            (iters, result)
        }
    }

    /// Register-carried driver for the canonical reduction chase
    /// `while (p != NULL) { t = p->f; acc = acc op t; p = p->next }`;
    /// the same sync/resume contract as [`Vm::loop_rmw_chase`].
    #[allow(clippy::too_many_arguments)]
    fn loop_sum_chase(
        &mut self,
        lb: crate::compile::LoopBlock,
        block: &crate::compile::SuperBlock,
        cyc: u64,
        base: usize,
        op: adds_lang::ast::BinOp,
        ptr: u32,
        t: u32,
        a: u32,
        foff: usize,
        noff: usize,
    ) -> (u64, RResult<()>) {
        let need = block.fuel as u64;
        let head_chg = self.cfg.cost.branch + self.cfg.cost.alu;
        let alu = self.cfg.cost.alu;
        let mut p = self.slot(base, ptr);
        let mut acc = self.slot(base, a);
        let mut tv = self.slot(base, t);
        let mut fuel = self.fuel;
        let mut clock = self.clock;
        let mut stmts = self.stats.stmts;
        let mut iters: u64 = 0;
        let mut resume = false;
        macro_rules! sync {
            () => {
                self.fuel = fuel;
                self.clock = clock;
                self.stats.stmts = stmts;
                self.set_slot(base, ptr, p);
                self.set_slot(base, a, acc);
                self.set_slot(base, t, tv);
            };
        }
        let result = loop {
            let node = match p {
                Value::Ptr(n) => n,
                Value::Null => {
                    clock += head_chg;
                    break Ok(());
                }
                _ => {
                    resume = true;
                    break Ok(());
                }
            };
            clock += head_chg;
            if fuel < need {
                clock -= head_chg;
                resume = true;
                break Ok(());
            }
            fuel -= need;
            stmts += need;
            clock += cyc;
            tv = match self.heap.load(node, foff) {
                Ok(v) => v,
                Err(e) => break Err(RuntimeError::Other(e)),
            };
            acc = match crate::ops::binop_fast(op, acc, tv) {
                Some(v) => {
                    clock += alu;
                    v
                }
                None => match crate::ops::binop(op, acc, tv, &self.cfg.cost, &mut clock) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                },
            };
            p = match self.heap.load(node, noff) {
                Ok(v) => v,
                Err(e) => break Err(RuntimeError::Other(e)),
            };
            iters += 1;
            stmts += 1;
            if fuel == 0 {
                break Err(RuntimeError::OutOfFuel);
            }
            fuel -= 1;
        };
        sync!();
        if resume {
            let (more, r) = self.drive_loop(lb.head, block, cyc, base, |vm| {
                for op in block.ops.iter() {
                    vm.exec_data::<false>(op, base)?;
                }
                Ok(())
            });
            (iters + more, r)
        } else {
            (iters, result)
        }
    }

    /// The iteration engine behind [`Vm::run_loop`]: head check, bulk
    /// accounting, `fast` for the body when fuel covers it (the caller
    /// passes the uncharged-body closure matching `block.ops`), exact
    /// per-op charged execution when it does not, backedge fuel burn.
    /// Returns the completed iteration count alongside the outcome.
    #[inline(always)]
    fn drive_loop<F>(
        &mut self,
        head: crate::compile::LoopHead,
        block: &crate::compile::SuperBlock,
        cyc: u64,
        base: usize,
        mut fast: F,
    ) -> (u64, RResult<()>)
    where
        F: FnMut(&mut Self) -> RResult<()>,
    {
        use crate::compile::LoopHead;
        let need = block.fuel as u64;
        let branch = self.cfg.cost.branch;
        let mut iters: u64 = 0;
        let result = 'l: loop {
            self.clock += branch;
            let go = match head {
                LoopHead::Truthy { cond } => self.slot(base, cond).truthy(),
                LoopHead::Cmp { op, lhs, rhs } => {
                    let l = self.slot(base, lhs);
                    let r = self.slot(base, rhs);
                    match self.binop(op, l, r) {
                        Ok(v) => v.truthy(),
                        Err(e) => break Err(e),
                    }
                }
                LoopHead::CmpK { op, lhs, k } => {
                    let l = self.slot(base, lhs);
                    match self.binop(op, l, k) {
                        Ok(v) => v.truthy(),
                        Err(e) => break Err(e),
                    }
                }
            };
            match go.map_err(RuntimeError::Type) {
                Ok(true) => {}
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
            if self.fuel >= need {
                self.fuel -= need;
                self.stats.stmts += need;
                self.clock += cyc;
                if let Err(e) = fast(self) {
                    break Err(e);
                }
            } else {
                // Not enough fuel for the whole block: fully-charged
                // per-op execution reproduces the interpreter's exact
                // exhaustion point (total burns exceed remaining fuel,
                // so this always stops inside the block).
                for op in block.ops.iter() {
                    if let Err(e) = self.exec_data::<true>(op, base) {
                        break 'l Err(e);
                    }
                }
            }
            iters += 1;
            if let Err(e) = self.burn_fuel() {
                break Err(e);
            }
        };
        (iters, result)
    }

    /// Execute one data instruction inside a superblock. `CHARGED = true`
    /// is the exact per-op accounting of the main dispatch loop;
    /// `CHARGED = false` skips the static charges and fuel burns that the
    /// block applied in bulk (value-dependent `Bin`/`Un` charges always
    /// apply). Control flow never appears inside a superblock.
    #[inline]
    fn exec_data<const CHARGED: bool>(&mut self, instr: &Instr, base: usize) -> RResult<()> {
        match instr {
            Instr::Const { dst, v } => self.set_slot(base, *dst, *v),
            Instr::Copy { dst, src } => {
                let v = self.slot(base, *src);
                self.set_slot(base, *dst, v);
            }
            Instr::Pes { dst } => self.set_slot(base, *dst, Value::Int(self.cfg.pes as i64)),
            Instr::Alloc { dst, ty } => {
                if CHARGED {
                    self.clock += self.cfg.cost.alloc;
                }
                self.stats.allocs += 1;
                let node = self.heap.alloc(&self.prog.type_layouts[*ty as usize]);
                self.set_slot(base, *dst, Value::Ptr(node));
            }
            Instr::Load {
                dst,
                base: b,
                off,
                access,
            } => {
                let bv = self.slot(base, *b);
                let v = self.load::<CHARGED>(bv, *off as usize, *access)?;
                self.set_slot(base, *dst, v);
            }
            Instr::FuelLoad {
                dst,
                base: b,
                off,
                access,
            } => {
                if CHARGED {
                    self.burn_fuel()?;
                }
                let bv = self.slot(base, *b);
                let v = self.load::<CHARGED>(bv, *off as usize, *access)?;
                self.set_slot(base, *dst, v);
            }
            Instr::FuelCopy { dst, src } => {
                if CHARGED {
                    self.burn_fuel()?;
                }
                let v = self.slot(base, *src);
                self.set_slot(base, *dst, v);
            }
            Instr::FuelConst { dst, v } => {
                if CHARGED {
                    self.burn_fuel()?;
                }
                self.set_slot(base, *dst, *v);
            }
            Instr::LoadIdx {
                dst,
                base: b,
                idx,
                off,
                len,
                access,
            } => {
                let i = self.index(base, *idx)?;
                let bv = self.slot(base, *b);
                let v = if i < *len as usize {
                    self.load::<CHARGED>(bv, *off as usize + i, *access)?
                } else {
                    self.load_oob::<CHARGED>(bv, i, *access)?
                };
                self.set_slot(base, *dst, v);
            }
            Instr::Store {
                base: b,
                src,
                off,
                is_ptr,
                access,
            } => {
                let bv = self.slot(base, *b);
                let v = self.slot(base, *src);
                self.store::<CHARGED>(bv, *off as usize, *is_ptr, *access, v)?;
            }
            Instr::StoreIdx {
                base: b,
                idx,
                src,
                off,
                len,
                is_ptr,
                access,
            } => {
                let i = self.index(base, *idx)?;
                let bv = self.slot(base, *b);
                let v = self.slot(base, *src);
                if i < *len as usize {
                    self.store::<CHARGED>(bv, *off as usize + i, *is_ptr, *access, v)?;
                } else {
                    self.store_oob::<CHARGED>(bv, i, *access)?;
                }
            }
            Instr::FieldRmw {
                op,
                base: b,
                src,
                off,
                is_ptr,
                access,
            } => {
                if CHARGED {
                    self.burn_fuel()?;
                }
                let bv = self.slot(base, *b);
                let cur = self.load::<CHARGED>(bv, *off as usize, *access)?;
                let r = self.slot(base, *src);
                let v = self.binop(*op, cur, r)?;
                self.store::<CHARGED>(bv, *off as usize, *is_ptr, *access, v)?;
            }
            Instr::FieldRmwK {
                op,
                base: b,
                k,
                off,
                is_ptr,
                access,
            } => {
                if CHARGED {
                    self.burn_fuel()?;
                }
                let bv = self.slot(base, *b);
                let cur = self.load::<CHARGED>(bv, *off as usize, *access)?;
                let v = self.binop(*op, cur, *k)?;
                self.store::<CHARGED>(bv, *off as usize, *is_ptr, *access, v)?;
            }
            Instr::Un { op, dst, src } => {
                let v = self.slot(base, *src);
                let r = crate::ops::unop(*op, v, &self.cfg.cost, &mut self.clock)?;
                self.set_slot(base, *dst, r);
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let l = self.slot(base, *lhs);
                let r = self.slot(base, *rhs);
                let v = self.binop(*op, l, r)?;
                self.set_slot(base, *dst, v);
            }
            Instr::BinK { op, dst, lhs, k } => {
                let l = self.slot(base, *lhs);
                let v = self.binop(*op, l, *k)?;
                self.set_slot(base, *dst, v);
            }
            Instr::Sqrt { dst, src } => {
                let v = self
                    .slot(base, *src)
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                if CHARGED {
                    self.clock += self.cfg.cost.sqrt;
                }
                self.set_slot(base, *dst, Value::Real(v.sqrt()));
            }
            Instr::Fabs { dst, src } => {
                let v = self
                    .slot(base, *src)
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                if CHARGED {
                    self.clock += self.cfg.cost.fp;
                }
                self.set_slot(base, *dst, Value::Real(v.abs()));
            }
            Instr::Abs { dst, src } => {
                let v = self.slot(base, *src).as_int().map_err(RuntimeError::Type)?;
                if CHARGED {
                    self.clock += self.cfg.cost.alu;
                }
                self.set_slot(base, *dst, Value::Int(v.abs()));
            }
            Instr::MinMax { dst, a, b, is_min } => {
                let x = self.slot(base, *a).as_real().map_err(RuntimeError::Type)?;
                let y = self.slot(base, *b).as_real().map_err(RuntimeError::Type)?;
                if CHARGED {
                    self.clock += self.cfg.cost.fp;
                }
                let v = if *is_min { x.min(y) } else { x.max(y) };
                self.set_slot(base, *dst, Value::Real(v));
            }
            Instr::Itor { dst, src } => {
                let v = self.slot(base, *src).as_int().map_err(RuntimeError::Type)?;
                if CHARGED {
                    self.clock += self.cfg.cost.alu;
                }
                self.set_slot(base, *dst, Value::Real(v as f64));
            }
            Instr::Print { src } => {
                let v = self.slot(base, *src);
                self.output.push(v.to_string());
            }
            Instr::IntCheck { slot } => {
                self.slot(base, *slot)
                    .as_int()
                    .map_err(RuntimeError::Type)?;
            }
            Instr::Branch => {
                if CHARGED {
                    self.clock += self.cfg.cost.branch;
                }
            }
            Instr::Fuel => {
                if CHARGED {
                    self.burn_fuel()?;
                }
            }
            Instr::InlineEnter => {
                if CHARGED {
                    self.clock += self.cfg.cost.call;
                }
                self.stats.calls += 1;
                self.depth += 1;
                self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
            }
            Instr::InlineRet => self.depth -= 1,
            other => unreachable!("control flow inside a superblock: {other:?}"),
        }
        Ok(())
    }

    /// Execute a `parfor` region: iterations run over memcpy'd frame
    /// copies with a shared heap; the clock advances by the busiest PE
    /// under static strip scheduling, plus one barrier sync.
    fn parfor(
        &mut self,
        func: u32,
        base: usize,
        body_pc: usize,
        var: u32,
        lo: i64,
        hi: i64,
    ) -> RResult<()> {
        if self.detecting {
            return Err(RuntimeError::NestedParfor);
        }
        let pes = self.cfg.pes.max(1);
        let start_clock = self.clock;
        // Reuse the scratch buffer; a nested region (detection off) takes
        // a fresh empty Vec and allocates, which is fine because nesting
        // is rare.
        let mut pe_time = std::mem::take(&mut self.pe_scratch);
        pe_time.clear();
        pe_time.resize(pes, 0);
        self.stats.parallel_rounds += 1;
        let detect = self.cfg.detect_conflicts;
        if detect {
            self.table.begin_region();
        }
        let frame_size = self.prog.funcs[func as usize].frame_size as usize;

        // Per-site profile attribution accumulates in plain locals and
        // lands in the hash map once, after the loop — a per-iteration
        // map lookup is measurable overhead on hot parallel workloads.
        // (An error aborts the region before the writeback, losing the
        // partial loop attribution of the failed region.)
        let mut site_iters: u64 = 0;
        let mut site_cycles: u64 = 0;
        let mut site_max: u64 = 0;

        let mut pe = pes - 1;
        for (k, i) in (lo..=hi).enumerate() {
            // Round-robin PE assignment without a per-iteration modulo.
            pe += 1;
            if pe == pes {
                pe = 0;
            }
            self.clock = start_clock;
            if detect {
                self.table.begin_iter(k);
                self.detecting = true;
            }
            let iter_base = self.stack.len();
            self.stack.extend_from_within(base..base + frame_size);
            self.stack[iter_base + var as usize] = Value::Int(i);
            let ended = self.exec(func, iter_base, body_pc)?;
            self.stack.truncate(iter_base);
            self.detecting = false;
            if matches!(ended, Ended::Returned(_)) {
                return Err(RuntimeError::Other("return from inside parfor".to_string()));
            }
            let iter_cycles = self.clock - start_clock;
            pe_time[pe] += iter_cycles;
            site_iters += 1;
            site_cycles += iter_cycles;
            site_max = site_max.max(iter_cycles);
        }

        if site_iters > 0 {
            if let Some(p) = self.profile.as_deref_mut() {
                let site = p.loops.entry((func, body_pc as u32)).or_default();
                site.iters += site_iters;
                site.cycles += site_cycles;
                site.max_iter_cycles = site.max_iter_cycles.max(site_max);
            }
        }

        if detect {
            let _span = trace::span("machine.conflict-merge", "machine");
            if self.cfg.strict_conflicts {
                if let Some(c) = self.table.first_conflict() {
                    return Err(RuntimeError::Conflict(c));
                }
            } else {
                let found = self.table.finish();
                self.conflicts.extend(found);
            }
        }

        let busiest = pe_time.iter().copied().max().unwrap_or(0);
        self.pe_scratch = pe_time;
        self.clock = start_clock + busiest + self.cfg.cost.sync;
        Ok(())
    }

    /// Evaluate an index slot: non-negative int or the interpreter's
    /// errors.
    fn index(&self, base: usize, idx: u32) -> RResult<usize> {
        let i = self.slot(base, idx).as_int().map_err(RuntimeError::Type)?;
        if i < 0 {
            return Err(RuntimeError::Type(format!("negative index {i}")));
        }
        Ok(i as usize)
    }

    /// Non-pointer base on a field read: NULL faults (when not
    /// speculative) or a type error. Outlined so the string formatting
    /// stays off the inlined load path.
    #[cold]
    #[inline(never)]
    fn read_fault(&self, bv: Value, access: u32) -> RuntimeError {
        match bv {
            Value::Null => RuntimeError::NullDeref(format!(
                "read of `{}`",
                self.prog.accesses[access as usize]
            )),
            other => RuntimeError::Type(format!("field read on non-pointer {other}")),
        }
    }

    /// Field load through `bv` at resolved offset `off` — charges `load`
    /// first, exactly like the interpreter. `CHARGED = false` runs inside
    /// a bulk-charged superblock: the static load cost was already
    /// applied, so only the access itself happens here.
    ///
    /// Kept a plain `#[inline]` candidate: force-inlining this into every
    /// `exec` arm regresses the dispatch loop's codegen badly, while a
    /// hard call boundary regresses the fused-loop bodies — the default
    /// heuristics land well for both.
    #[inline]
    fn load<const CHARGED: bool>(&mut self, bv: Value, off: usize, access: u32) -> RResult<Value> {
        if CHARGED {
            self.clock += self.cfg.cost.load;
        }
        match bv {
            Value::Ptr(node) => {
                if self.detecting {
                    let (v, flat) = self
                        .heap
                        .load_flat(node, off)
                        .map_err(RuntimeError::Other)?;
                    self.table.record_read(node, off, flat);
                    Ok(v)
                } else {
                    self.heap.load(node, off).map_err(RuntimeError::Other)
                }
            }
            Value::Null if self.cfg.speculative => {
                // Speculative traversability: reading past the end of a
                // structure yields NULL (the interpreter's behavior).
                Ok(Value::Null)
            }
            other => Err(self.read_fault(other, access)),
        }
    }

    /// Out-of-bounds indexed load: NULL bases still take the speculative /
    /// fault paths before the bounds error, exactly like the interpreter's
    /// `load_field` (which only bounds-checks on the pointer branch).
    #[cold]
    fn load_oob<const CHARGED: bool>(
        &mut self,
        bv: Value,
        idx: usize,
        access: u32,
    ) -> RResult<Value> {
        if CHARGED {
            self.clock += self.cfg.cost.load;
        }
        match bv {
            Value::Ptr(_) => Err(RuntimeError::Type(format!(
                "index {idx} out of bounds for `{}`",
                self.prog.accesses[access as usize]
            ))),
            Value::Null if self.cfg.speculative => Ok(Value::Null),
            Value::Null => Err(RuntimeError::NullDeref(format!(
                "read of `{}`",
                self.prog.accesses[access as usize]
            ))),
            other => Err(RuntimeError::Type(format!(
                "field read on non-pointer {other}"
            ))),
        }
    }

    /// NULL base on a field write. Outlined as [`Vm::read_fault`].
    #[cold]
    #[inline(never)]
    fn write_fault(&self, access: u32) -> RuntimeError {
        RuntimeError::NullDeref(format!(
            "write to `{}` through NULL",
            self.prog.accesses[access as usize]
        ))
    }

    /// The dynamic shape check on a pointer store, outlined off the
    /// inlined store path (`check_shapes` runs are not the fast case).
    #[inline(never)]
    fn shape_check_store(&mut self, node: NodeId, access: u32, v: Value) -> RResult<()> {
        let prog = self.prog;
        let ty = self
            .heap
            .type_of(node)
            .map_err(RuntimeError::Other)?
            .to_string();
        let reports = crate::shapecheck::check_store(
            &prog.adds,
            &prog.layouts,
            &self.heap,
            &ty,
            &prog.accesses[access as usize],
            node,
            v,
        );
        self.shape_reports.extend(reports);
        Ok(())
    }

    /// Field store through `bv` at resolved offset `off`. `CHARGED` and
    /// the inlining posture as in [`Vm::load`].
    #[inline]
    fn store<const CHARGED: bool>(
        &mut self,
        bv: Value,
        off: usize,
        is_ptr: bool,
        access: u32,
        v: Value,
    ) -> RResult<()> {
        let Value::Ptr(node) = bv else {
            return Err(self.write_fault(access));
        };
        if CHARGED {
            self.clock += self.cfg.cost.store;
        }
        if self.detecting {
            let flat = self
                .heap
                .store_flat(node, off, v)
                .map_err(RuntimeError::Other)?;
            self.table.record_write(node, off, flat);
        } else {
            self.heap.store(node, off, v).map_err(RuntimeError::Other)?;
        }
        if self.cfg.check_shapes && is_ptr {
            self.shape_check_store(node, access, v)?;
        }
        Ok(())
    }

    /// Out-of-bounds indexed store: the NULL check precedes the charge and
    /// the bounds error, exactly like the interpreter's `assign` +
    /// `store_field` sequence.
    #[cold]
    fn store_oob<const CHARGED: bool>(
        &mut self,
        bv: Value,
        idx: usize,
        access: u32,
    ) -> RResult<()> {
        let Value::Ptr(_) = bv else {
            return Err(RuntimeError::NullDeref(format!(
                "write to `{}` through NULL",
                self.prog.accesses[access as usize]
            )));
        };
        if CHARGED {
            self.clock += self.cfg.cost.store;
        }
        Err(RuntimeError::Type(format!(
            "index {idx} out of bounds for `{}`",
            self.prog.accesses[access as usize]
        )))
    }
}

impl<'p> Exec for Vm<'p> {
    fn host_alloc(&mut self, ty: &str) -> NodeId {
        Vm::host_alloc(self, ty)
    }
    fn host_store(&mut self, node: NodeId, field: &str, idx: usize, v: Value) {
        Vm::host_store(self, node, field, idx, v)
    }
    fn host_load(&self, node: NodeId, field: &str, idx: usize) -> Value {
        Vm::host_load(self, node, field, idx)
    }
    fn call(&mut self, name: &str, args: &[Value]) -> RResult<Value> {
        Vm::call(self, name, args)
    }
    fn clock(&self) -> u64 {
        self.clock
    }
    fn stats(&self) -> &ExecStats {
        &self.stats
    }
    fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }
    fn shape_reports(&self) -> &[ShapeReport] {
        &self.shape_reports
    }
    fn output(&self) -> &[String] {
        &self.output
    }
    fn heap(&self) -> &Heap {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::diff::workloads;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn config() -> MachineConfig {
        MachineConfig {
            pes: 4,
            cost: CostModel::sequent(),
            detect_conflicts: true,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn profiling_counts_opcodes_and_attributes_parfor_cycles() {
        let src = adds_core::parallelize_to_source(programs::LIST_SCALE_ADDS).unwrap();
        let tp = check_source(&src).unwrap();
        let prog = CompiledProgram::compile(&tp);
        let mut vm = Vm::new(&prog, config());
        vm.enable_profiling();
        let head = workloads::scale_list(&mut vm, 100);
        vm.call("scale", &[head, Value::Int(3)]).expect("runs");
        let p = vm.take_profile().expect("profiling was enabled");
        assert!(p.total_ops() > 0);
        // The strip-mined walk's fused chase shows up, and so does the
        // parallel region.
        assert!(p.op_counts[crate::profile::Opcode::ChaseLoop as usize] > 0);
        assert!(p.op_counts[crate::profile::Opcode::ParFor as usize] > 0);
        let loops = p.ranked_loops();
        assert!(!loops.is_empty(), "parfor site attributed");
        let ((func, _pc), site) = loops[0];
        assert!(site.iters > 0 && site.cycles > 0);
        assert!(site.max_iter_cycles <= site.cycles);
        assert_eq!(prog.func_name(func), Some("scale"));
        // take_profile turned profiling back off.
        assert!(vm.profile().is_none());
    }

    #[test]
    fn profiling_does_not_perturb_simulation() {
        let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
        let prog = CompiledProgram::compile(&tp);
        let run = |profiled: bool| {
            let mut vm = Vm::new(&prog, config());
            if profiled {
                vm.enable_profiling();
            }
            let head = workloads::scale_list(&mut vm, 50);
            vm.call("scale", &[head, Value::Int(3)]).expect("runs");
            (vm.clock, vm.stats.stmts)
        };
        assert_eq!(run(false), run(true));
    }
}
