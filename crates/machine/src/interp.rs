//! The IL interpreter with MIMD cost accounting.
//!
//! Executes typed IL programs over a [`Heap`]. Sequential statements accrue
//! cycles on a single clock; a `parfor` region executes its iterations with
//! *static strip scheduling* over the configured number of PEs and advances
//! the clock by the busiest PE plus one barrier synchronization — the
//! machine model of the paper's §4.4 evaluation.
//!
//! Two extra services matter to the reproduction:
//!
//! * **Speculative traversability** (§3.2): reading a field of NULL yields
//!   the field's default value instead of faulting (writes still fault).
//!   This is what lets the strip-mined FOR1/FOR2 loops of §4.3.3 run off
//!   the end of the particle list safely.
//! * **Conflict detection**: each `parfor` iteration's heap read/write sets
//!   are recorded; overlapping writes (or write/read overlap) between
//!   iterations are reported. This dynamically validates what the static
//!   analysis proved.

use crate::conflict::{pairwise_conflicts, pairwise_first, AccessLog};
use crate::value::{Heap, Layouts, NodeId, SlotError, Value};
use adds_lang::ast::*;
use adds_lang::types::{TypedProgram, PES_CONST};
use std::collections::HashMap;

pub use crate::exec::{Conflict, Exec, ExecStats, MachineConfig, RuntimeError};

type RResult<T> = Result<T, RuntimeError>;

fn type_err<T>(m: impl Into<String>) -> RResult<T> {
    Err(RuntimeError::Type(m.into()))
}

/// Why a block stopped executing.
enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter. Owns the heap for the duration of a run.
pub struct Interp<'a> {
    /// The program being run.
    pub tp: &'a TypedProgram,
    /// Record layouts.
    pub layouts: Layouts,
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// The heap.
    pub heap: Heap,
    /// Simulated clock, in cycles.
    pub clock: u64,
    /// Execution counters.
    pub stats: ExecStats,
    /// Conflicts detected in `parfor` regions (non-strict mode).
    pub conflicts: Vec<Conflict>,
    /// Dynamic ADDS shape violations (when `check_shapes` is on).
    pub shape_reports: Vec<crate::shapecheck::ShapeReport>,
    /// Lines printed by the program.
    pub output: Vec<String>,
    fuel: u64,
    depth: usize,
    /// Access log for the current parfor iteration, if any.
    log: Option<AccessLog>,
}

type Frame = HashMap<String, Value>;

impl<'a> Interp<'a> {
    /// A fresh machine for `tp`.
    pub fn new(tp: &'a TypedProgram, cfg: MachineConfig) -> Interp<'a> {
        Interp {
            tp,
            layouts: Layouts::from_adds(&tp.adds),
            fuel: cfg.fuel.unwrap_or(u64::MAX),
            cfg,
            heap: Heap::new(),
            clock: 0,
            stats: ExecStats::default(),
            conflicts: Vec::new(),
            shape_reports: Vec::new(),
            output: Vec::new(),
            depth: 0,
            log: None,
        }
    }

    /// Allocate a record of `ty` from host code.
    pub fn host_alloc(&mut self, ty: &str) -> NodeId {
        let layout = self.layouts.get(ty).expect("known record type").clone();
        self.heap.alloc(&layout)
    }

    /// Host field write (no cycle cost).
    pub fn host_store(&mut self, node: NodeId, field: &str, idx: usize, v: Value) {
        let off = self.layouts.host_offset(&self.heap, node, field, idx);
        self.heap.store(node, off, v).expect("valid store");
    }

    /// Host field read (no cycle cost).
    pub fn host_load(&self, node: NodeId, field: &str, idx: usize) -> Value {
        let off = self.layouts.host_offset(&self.heap, node, field, idx);
        self.heap.load(node, off).expect("valid load")
    }

    /// Call a function by name with the given argument values.
    pub fn call(&mut self, name: &str, args: &[Value]) -> RResult<Value> {
        let f = self
            .tp
            .program
            .func(name)
            .ok_or_else(|| RuntimeError::NoSuchFunction(name.to_string()))?;
        if f.params.len() != args.len() {
            return type_err(format!(
                "{name} expects {} args, got {}",
                f.params.len(),
                args.len()
            ));
        }
        self.charge(self.cfg.cost.call);
        self.stats.calls += 1;
        self.depth += 1;
        self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
        let mut frame: Frame = f
            .params
            .iter()
            .zip(args)
            .map(|(p, v)| (p.name.clone(), *v))
            .collect();
        let flow = self.block(&f.body, &mut frame)?;
        self.depth -= 1;
        Ok(match flow {
            Flow::Return(v) => v,
            Flow::Normal => Value::Null,
        })
    }

    fn charge(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    fn burn_fuel(&mut self) -> RResult<()> {
        self.stats.stmts += 1;
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn block(&mut self, b: &Block, frame: &mut Frame) -> RResult<Flow> {
        for s in &b.stmts {
            match self.stmt(s, frame)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt, frame: &mut Frame) -> RResult<Flow> {
        self.burn_fuel()?;
        match s {
            Stmt::VarDecl { name, init, .. } => {
                let v = match init {
                    Some(e) => self.expr(e, frame)?,
                    None => Value::Null,
                };
                frame.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let v = self.expr(rhs, frame)?;
                self.assign(lhs, v, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => loop {
                self.charge(self.cfg.cost.branch);
                if !self
                    .expr(cond, frame)?
                    .truthy()
                    .map_err(RuntimeError::Type)?
                {
                    return Ok(Flow::Normal);
                }
                match self.block(body, frame)? {
                    Flow::Normal => {}
                    ret => return Ok(ret),
                }
                self.burn_fuel()?;
            },
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.charge(self.cfg.cost.branch);
                if self
                    .expr(cond, frame)?
                    .truthy()
                    .map_err(RuntimeError::Type)?
                {
                    self.block(then_blk, frame)
                } else if let Some(e) = else_blk {
                    self.block(e, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                parallel,
                ..
            } => {
                let lo = self
                    .expr(from, frame)?
                    .as_int()
                    .map_err(RuntimeError::Type)?;
                let hi = self.expr(to, frame)?.as_int().map_err(RuntimeError::Type)?;
                if *parallel {
                    self.parfor(var, lo, hi, body, frame)?;
                    Ok(Flow::Normal)
                } else {
                    for i in lo..=hi {
                        self.charge(self.cfg.cost.branch);
                        frame.insert(var.clone(), Value::Int(i));
                        match self.block(body, frame)? {
                            Flow::Normal => {}
                            ret => return Ok(ret),
                        }
                        self.burn_fuel()?;
                    }
                    Ok(Flow::Normal)
                }
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.expr(e, frame)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Call(c) => {
                self.call_expr(c, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Execute a `parfor` region: iterations run with private copies of the
    /// frame over a shared heap; the clock advances by the busiest PE under
    /// static strip scheduling, plus one barrier sync.
    fn parfor(&mut self, var: &str, lo: i64, hi: i64, body: &Block, frame: &Frame) -> RResult<()> {
        if self.log.is_some() {
            return Err(RuntimeError::NestedParfor);
        }
        let pes = self.cfg.pes.max(1);
        let start_clock = self.clock;
        let mut pe_time = vec![0u64; pes];
        let mut logs: Vec<AccessLog> = Vec::new();
        self.stats.parallel_rounds += 1;

        for (k, i) in (lo..=hi).enumerate() {
            let pe = k % pes;
            self.clock = start_clock;
            if self.cfg.detect_conflicts {
                self.log = Some(AccessLog::default());
            }
            let mut iter_frame = frame.clone();
            iter_frame.insert(var.to_string(), Value::Int(i));
            let flow = self.block(body, &mut iter_frame)?;
            if matches!(flow, Flow::Return(_)) {
                return Err(RuntimeError::Other("return from inside parfor".to_string()));
            }
            pe_time[pe] += self.clock - start_clock;
            if let Some(log) = self.log.take() {
                logs.push(log);
            }
        }

        // Conflict detection across iterations: the reference pairwise
        // intersection (the VM uses the single-pass table instead). Strict
        // mode aborts at the first hit without materializing the list.
        if self.cfg.detect_conflicts {
            if self.cfg.strict_conflicts {
                if let Some(c) = pairwise_first(&logs) {
                    return Err(RuntimeError::Conflict(c));
                }
            } else {
                self.conflicts.append(&mut pairwise_conflicts(&logs));
            }
        }

        let busiest = pe_time.iter().copied().max().unwrap_or(0);
        self.clock = start_clock + busiest + self.cfg.cost.sync;
        Ok(())
    }

    fn assign(&mut self, lhs: &LValue, v: Value, frame: &mut Frame) -> RResult<()> {
        if lhs.is_var() {
            frame.insert(lhs.base.clone(), v);
            return Ok(());
        }
        // Walk to the last node.
        let mut cur = self.read_var(&lhs.base, frame)?;
        for acc in &lhs.path[..lhs.path.len() - 1] {
            let idx = self.index_of(acc, frame)?;
            cur = self.load_field(cur, &acc.field, idx)?;
        }
        let last = lhs.path.last().expect("field lvalue");
        let idx = self.index_of(last, frame)?;
        let Value::Ptr(node) = cur else {
            return Err(RuntimeError::NullDeref(format!(
                "write to `{}` through NULL",
                last.field
            )));
        };
        self.store_field(node, &last.field, idx, v)
    }

    fn index_of(&mut self, acc: &FieldAccess, frame: &mut Frame) -> RResult<usize> {
        match &acc.index {
            Some(e) => {
                let i = self.expr(e, frame)?.as_int().map_err(RuntimeError::Type)?;
                if i < 0 {
                    return type_err(format!("negative index {i}"));
                }
                Ok(i as usize)
            }
            None => Ok(0),
        }
    }

    fn slot_of(&self, node: NodeId, field: &str, idx: usize) -> RResult<usize> {
        let ty = self.heap.type_of(node).map_err(RuntimeError::Other)?;
        self.layouts
            .get(ty)
            .ok_or(SlotError::NoSuchField)
            .and_then(|l| l.offset_of(field, idx))
            .map_err(|e| match e {
                SlotError::NoSuchField => {
                    RuntimeError::Type(format!("no field `{field}` on `{ty}`"))
                }
                SlotError::IndexOutOfRange => {
                    RuntimeError::Type(format!("index {idx} out of bounds for `{field}`"))
                }
            })
    }

    fn load_field(&mut self, base: Value, field: &str, idx: usize) -> RResult<Value> {
        self.charge(self.cfg.cost.load);
        match base {
            Value::Ptr(node) => {
                let slot = self.slot_of(node, field, idx)?;
                if let Some(log) = &mut self.log {
                    log.reads.insert((node, slot));
                }
                self.heap.load(node, slot).map_err(RuntimeError::Other)
            }
            Value::Null if self.cfg.speculative => {
                // Speculative traversability: reading past the end of a
                // structure yields the field's default value.
                Ok(Value::Null)
            }
            Value::Null => Err(RuntimeError::NullDeref(format!("read of `{field}`"))),
            other => type_err(format!("field read on non-pointer {other}")),
        }
    }

    fn store_field(&mut self, node: NodeId, field: &str, idx: usize, v: Value) -> RResult<()> {
        self.charge(self.cfg.cost.store);
        let slot = self.slot_of(node, field, idx)?;
        if let Some(log) = &mut self.log {
            log.writes.insert((node, slot));
        }
        self.heap
            .store(node, slot, v)
            .map_err(RuntimeError::Other)?;
        if self.cfg.check_shapes {
            let ty = self
                .heap
                .type_of(node)
                .map_err(RuntimeError::Other)?
                .to_string();
            let is_ptr = self
                .layouts
                .get(&ty)
                .and_then(|l| l.slot(field))
                .is_some_and(|s| s.is_ptr);
            if is_ptr {
                let reports = crate::shapecheck::check_store(
                    &self.tp.adds,
                    &self.layouts,
                    &self.heap,
                    &ty,
                    field,
                    node,
                    v,
                );
                self.shape_reports.extend(reports);
            }
        }
        Ok(())
    }

    fn read_var(&mut self, name: &str, frame: &Frame) -> RResult<Value> {
        if name == PES_CONST {
            return Ok(Value::Int(self.cfg.pes as i64));
        }
        frame
            .get(name)
            .copied()
            .ok_or_else(|| RuntimeError::Type(format!("unbound variable `{name}`")))
    }

    fn expr(&mut self, e: &Expr, frame: &mut Frame) -> RResult<Value> {
        match e {
            Expr::Int(v, _) => Ok(Value::Int(*v)),
            Expr::Real(v, _) => Ok(Value::Real(*v)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Null(_) => Ok(Value::Null),
            Expr::Var(v, _) => self.read_var(v, frame),
            Expr::New(ty, _) => {
                self.charge(self.cfg.cost.alloc);
                self.stats.allocs += 1;
                let layout = self
                    .layouts
                    .get(ty)
                    .ok_or_else(|| RuntimeError::Type(format!("unknown type `{ty}`")))?
                    .clone();
                Ok(Value::Ptr(self.heap.alloc(&layout)))
            }
            Expr::Field {
                base, field, index, ..
            } => {
                let b = self.expr(base, frame)?;
                let idx = match index {
                    Some(i) => {
                        let v = self.expr(i, frame)?.as_int().map_err(RuntimeError::Type)?;
                        if v < 0 {
                            return type_err(format!("negative index {v}"));
                        }
                        v as usize
                    }
                    None => 0,
                };
                self.load_field(b, field, idx)
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.expr(operand, frame)?;
                crate::ops::unop(*op, v, &self.cfg.cost, &mut self.clock)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.expr(lhs, frame)?;
                let r = self.expr(rhs, frame)?;
                self.binop(*op, l, r)
            }
            Expr::Call(c) => self.call_expr(c, frame),
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> RResult<Value> {
        crate::ops::binop(op, l, r, &self.cfg.cost, &mut self.clock)
    }

    fn call_expr(&mut self, c: &Call, frame: &mut Frame) -> RResult<Value> {
        // Intrinsics.
        match c.callee.as_str() {
            "print" => {
                let v = self.expr(&c.args[0], frame)?;
                self.output.push(v.to_string());
                return Ok(Value::Null);
            }
            "sqrt" => {
                let v = self
                    .expr(&c.args[0], frame)?
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                self.charge(self.cfg.cost.sqrt);
                return Ok(Value::Real(v.sqrt()));
            }
            "fabs" => {
                let v = self
                    .expr(&c.args[0], frame)?
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                self.charge(self.cfg.cost.fp);
                return Ok(Value::Real(v.abs()));
            }
            "abs" => {
                let v = self
                    .expr(&c.args[0], frame)?
                    .as_int()
                    .map_err(RuntimeError::Type)?;
                self.charge(self.cfg.cost.alu);
                return Ok(Value::Int(v.abs()));
            }
            "min" | "max" => {
                let a = self
                    .expr(&c.args[0], frame)?
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                let b = self
                    .expr(&c.args[1], frame)?
                    .as_real()
                    .map_err(RuntimeError::Type)?;
                self.charge(self.cfg.cost.fp);
                return Ok(Value::Real(if c.callee == "min" {
                    a.min(b)
                } else {
                    a.max(b)
                }));
            }
            "itor" => {
                let v = self
                    .expr(&c.args[0], frame)?
                    .as_int()
                    .map_err(RuntimeError::Type)?;
                self.charge(self.cfg.cost.alu);
                return Ok(Value::Real(v as f64));
            }
            _ => {}
        }
        let args: Vec<Value> = c
            .args
            .iter()
            .map(|a| self.expr(a, frame))
            .collect::<RResult<_>>()?;
        self.call(&c.callee, &args)
    }
}

impl<'a> Exec for Interp<'a> {
    fn host_alloc(&mut self, ty: &str) -> NodeId {
        Interp::host_alloc(self, ty)
    }
    fn host_store(&mut self, node: NodeId, field: &str, idx: usize, v: Value) {
        Interp::host_store(self, node, field, idx, v)
    }
    fn host_load(&self, node: NodeId, field: &str, idx: usize) -> Value {
        Interp::host_load(self, node, field, idx)
    }
    fn call(&mut self, name: &str, args: &[Value]) -> RResult<Value> {
        Interp::call(self, name, args)
    }
    fn clock(&self) -> u64 {
        self.clock
    }
    fn stats(&self) -> &ExecStats {
        &self.stats
    }
    fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }
    fn shape_reports(&self) -> &[crate::shapecheck::ShapeReport] {
        &self.shape_reports
    }
    fn output(&self) -> &[String] {
        &self.output
    }
    fn heap(&self) -> &Heap {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn interp_for<'a>(tp: &'a TypedProgram, cfg: MachineConfig) -> Interp<'a> {
        Interp::new(tp, cfg)
    }

    fn build_list(interp: &mut Interp, values: &[i64]) -> Value {
        let mut head = Value::Null;
        for v in values.iter().rev() {
            let n = interp.host_alloc("L");
            interp.host_store(n, "v", 0, Value::Int(*v));
            interp.host_store(n, "next", 0, head);
            head = Value::Ptr(n);
        }
        head
    }

    #[test]
    fn list_sum_executes() {
        let tp = check_source(programs::LIST_SUM).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let head = build_list(&mut it, &[1, 2, 3, 4, 5]);
        let out = it.call("sum", &[head]).unwrap();
        assert_eq!(out, Value::Int(15));
        assert!(it.clock > 0);
    }

    #[test]
    fn empty_list_sums_to_zero() {
        let tp = check_source(programs::LIST_SUM).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let out = it.call("sum", &[Value::Null]).unwrap();
        assert_eq!(out, Value::Int(0));
    }

    #[test]
    fn scale_loop_multiplies_coefficients() {
        let tp = check_source(programs::LIST_SCALE_ADDS).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        // ListNode { coef, exp, next }
        let mut head = Value::Null;
        let mut ids = Vec::new();
        for (coef, exp) in [(451, 31), (10, 13), (4, 0)].iter().rev() {
            let n = it.host_alloc("ListNode");
            it.host_store(n, "coef", 0, Value::Int(*coef));
            it.host_store(n, "exp", 0, Value::Int(*exp));
            it.host_store(n, "next", 0, head);
            head = Value::Ptr(n);
            ids.push(n);
        }
        it.call("scale", &[head, Value::Int(3)]).unwrap();
        let coefs: Vec<i64> = ids
            .iter()
            .rev()
            .map(|n| it.host_load(*n, "coef", 0).as_int().unwrap())
            .collect();
        assert_eq!(coefs, vec![1353, 30, 12]);
    }

    #[test]
    fn speculative_traversal_past_end() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            function off_end(head: L*): L* {
                var p: L*;
                var i: int;
                p = head;
                for i = 1 to 10 {
                    p = p->next;
                }
                return p;
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let head = build_list(&mut it, &[1, 2]);
        let out = it.call("off_end", &[head]).unwrap();
        assert_eq!(out, Value::Null);

        // Without speculative traversability, the same program faults.
        let cfg = MachineConfig {
            speculative: false,
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        let head = build_list(&mut it, &[1, 2]);
        let err = it.call("off_end", &[head]).unwrap_err();
        assert!(matches!(err, RuntimeError::NullDeref(_)));
    }

    #[test]
    fn writes_through_null_always_fault() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure bad(p: L*) {
                var q: L*;
                q = p->next;
                q->v = 1;
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let head = build_list(&mut it, &[1]);
        let err = it.call("bad", &[head]).unwrap_err();
        assert!(matches!(err, RuntimeError::NullDeref(_)));
    }

    #[test]
    fn parfor_runs_all_iterations_and_charges_sync() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure touch(head: L*) {
                var i: int;
                var p: L*;
                parfor i = 0 to 3 {
                    p = head;
                    p->v = p->v;
                }
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let head = build_list(&mut it, &[7]);
        let before_sync = it.cfg.cost.sync;
        it.call("touch", &[head]).unwrap();
        assert!(it.clock >= before_sync);
        assert_eq!(it.stats.parallel_rounds, 1);
    }

    #[test]
    fn parfor_conflict_detection_catches_shared_writes() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure race(head: L*) {
                var i: int;
                parfor i = 0 to 3 {
                    head->v = i;
                }
            }";
        let tp = check_source(src).unwrap();
        let cfg = MachineConfig {
            detect_conflicts: true,
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        let head = build_list(&mut it, &[0]);
        it.call("race", &[head]).unwrap();
        assert!(!it.conflicts.is_empty());
        assert!(it.conflicts[0].write_write);
    }

    #[test]
    fn parfor_strict_conflicts_abort() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure race(head: L*) {
                var i: int;
                parfor i = 0 to 3 {
                    head->v = i;
                }
            }";
        let tp = check_source(src).unwrap();
        let cfg = MachineConfig {
            detect_conflicts: true,
            strict_conflicts: true,
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        let head = build_list(&mut it, &[0]);
        assert!(matches!(
            it.call("race", &[head]),
            Err(RuntimeError::Conflict(_))
        ));
    }

    #[test]
    fn disjoint_parfor_writes_have_no_conflicts() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure iter(i: int, head: L*) {
                var p: L*;
                var k: int;
                p = head;
                for k = 1 to i {
                    p = p->next;
                }
                if p <> NULL {
                    p->v = p->v * 2;
                }
            }
            procedure run(head: L*) {
                var i: int;
                parfor i = 0 to 3 {
                    iter(i, head);
                }
            }";
        let tp = check_source(src).unwrap();
        let cfg = MachineConfig {
            detect_conflicts: true,
            strict_conflicts: true,
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        let head = build_list(&mut it, &[1, 2, 3, 4]);
        it.call("run", &[head]).unwrap();
        assert!(it.conflicts.is_empty());
    }

    #[test]
    fn pes_constant_reflects_config() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            function pes(head: L*): int { return PEs; }";
        let tp = check_source(src).unwrap();
        let cfg = MachineConfig {
            pes: 7,
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        assert_eq!(it.call("pes", &[Value::Null]).unwrap(), Value::Int(7));
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure spin(head: L*) {
                var i: int;
                i = 0;
                while i < 10 {
                    i = i * 1;
                }
            }";
        let tp = check_source(src).unwrap();
        let cfg = MachineConfig {
            fuel: Some(10_000),
            ..MachineConfig::default()
        };
        let mut it = interp_for(&tp, cfg);
        assert!(matches!(
            it.call("spin", &[Value::Null]),
            Err(RuntimeError::OutOfFuel)
        ));
    }

    #[test]
    fn intrinsics_compute() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            function hyp(a: real, b: real): real {
                return sqrt(a * a + b * b);
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        let out = it
            .call("hyp", &[Value::Real(3.0), Value::Real(4.0)])
            .unwrap();
        assert_eq!(out, Value::Real(5.0));
    }

    #[test]
    fn print_collects_output() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            procedure main(head: L*) {
                print(42);
                print(head);
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        it.call("main", &[Value::Null]).unwrap();
        assert_eq!(it.output, vec!["42", "NULL"]);
    }

    #[test]
    fn recursion_works() {
        let src = "
            type L [X] { int v; L *next is uniquely forward along X; };
            function fib(n: int): int {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }";
        let tp = check_source(src).unwrap();
        let mut it = interp_for(&tp, MachineConfig::default());
        assert_eq!(it.call("fib", &[Value::Int(10)]).unwrap(), Value::Int(55));
        assert!(it.stats.max_call_depth >= 10);
    }
}
