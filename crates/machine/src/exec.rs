//! Machine-model types shared by both execution engines — the
//! tree-walking [`crate::interp::Interp`] and the bytecode [`crate::vm::Vm`]
//! — plus the [`Exec`] trait that lets host code (workload builders, the
//! differential harness, the Sequent runner) drive either engine through
//! one interface.

use crate::shapecheck::ShapeReport;
use crate::value::{Heap, NodeId, Value};
use crate::CostModel;
use std::fmt;

#[derive(Clone, Debug)]
/// Configuration of the simulated machine.
pub struct MachineConfig {
    /// Number of processing elements for `parfor` regions.
    pub pes: usize,
    /// Speculative traversability (§3.2). On by default — ADDS structures
    /// guarantee it.
    pub speculative: bool,
    /// Record per-iteration access sets in `parfor` and detect conflicts.
    pub detect_conflicts: bool,
    /// Run-time ADDS shape checking after every pointer store (§2.2).
    pub check_shapes: bool,
    /// Abort when a conflict is found (otherwise conflicts are collected).
    pub strict_conflicts: bool,
    /// Per-operation cycle charges.
    pub cost: CostModel,
    /// Statement budget to catch runaway programs (None = unlimited).
    pub fuel: Option<u64>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            pes: 4,
            speculative: true,
            detect_conflicts: false,
            check_shapes: false,
            strict_conflicts: false,
            cost: CostModel::sequent(),
            fuel: Some(500_000_000),
        }
    }
}

/// A detected cross-iteration conflict in a parallel region.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Conflict {
    /// First conflicting `parfor` iteration.
    pub iter_a: usize,
    /// Second conflicting iteration.
    pub iter_b: usize,
    /// The heap record both touched.
    pub node: NodeId,
    /// The slot within that record.
    pub slot: usize,
    /// true = write/write, false = write/read.
    pub write_write: bool,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conflict between iterations {} and {} on node#{} slot {}",
            if self.write_write {
                "write/write"
            } else {
                "write/read"
            },
            self.iter_a,
            self.iter_b,
            self.node,
            self.slot
        )
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
/// Execution counters.
pub struct ExecStats {
    /// Statements executed.
    pub stmts: u64,
    /// Records allocated.
    pub allocs: u64,
    /// Calls made.
    pub calls: u64,
    /// `parfor` rounds executed.
    pub parallel_rounds: u64,
    /// Deepest call stack seen.
    pub max_call_depth: usize,
}

#[derive(Debug)]
/// Why execution aborted.
pub enum RuntimeError {
    /// Dereferenced NULL outside speculative traversal.
    NullDeref(String),
    /// Dynamic type mismatch (interpreter bug or host misuse).
    Type(String),
    /// Called an undefined function.
    NoSuchFunction(String),
    /// Exceeded the statement budget.
    OutOfFuel,
    /// A `parfor` conflict under strict checking.
    Conflict(Conflict),
    /// `parfor` inside `parfor` is not modeled.
    NestedParfor,
    /// Anything else (message).
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDeref(m) => write!(f, "null dereference: {m}"),
            RuntimeError::Type(m) => write!(f, "type error: {m}"),
            RuntimeError::NoSuchFunction(m) => write!(f, "no such function: {m}"),
            RuntimeError::OutOfFuel => write!(f, "out of fuel"),
            RuntimeError::Conflict(c) => write!(f, "parallel conflict: {c}"),
            RuntimeError::NestedParfor => write!(f, "nested parfor is not supported"),
            RuntimeError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Common driving surface of the two engines. Host access is
/// uninstrumented (no cycles, no conflict logging); `call` runs IL code
/// under the full machine model.
pub trait Exec {
    /// Allocate a record of `ty` from host code.
    fn host_alloc(&mut self, ty: &str) -> NodeId;
    /// Host field write (no cycle cost).
    fn host_store(&mut self, node: NodeId, field: &str, idx: usize, v: Value);
    /// Host field read (no cycle cost).
    fn host_load(&self, node: NodeId, field: &str, idx: usize) -> Value;
    /// Call a function by name with the given argument values.
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, RuntimeError>;
    /// Simulated clock, in cycles.
    fn clock(&self) -> u64;
    /// Execution counters.
    fn stats(&self) -> &ExecStats;
    /// Conflicts detected in `parfor` regions (non-strict mode).
    fn conflicts(&self) -> &[Conflict];
    /// Dynamic ADDS shape violations (when `check_shapes` is on).
    fn shape_reports(&self) -> &[ShapeReport];
    /// Lines printed by the program.
    fn output(&self) -> &[String];
    /// The heap, for state inspection.
    fn heap(&self) -> &Heap;
}
