//! Opt-in VM profiling: a dense per-opcode execution counter array plus
//! per-`parfor`-site cycle attribution.
//!
//! The profile answers the two questions superinstruction work needs:
//! *which opcodes dominate dynamic dispatch* (so fusion candidates are
//! chosen from evidence, not intuition) and *which parallel loops the
//! simulated cycles actually go to*. Profiling is off by default — the
//! dispatch loop pays one `Option` check per instruction — and enabled
//! per-VM with [`crate::vm::Vm::enable_profiling`]; `adds-cli profile`
//! is the user-facing frontend.

use std::collections::HashMap;

/// Dense opcode identifier — one variant per [`crate::compile`]
/// instruction, used to index the profile's counter array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the Instr variants 1:1
pub enum Opcode {
    Const,
    Copy,
    Pes,
    Alloc,
    Load,
    FuelLoad,
    FuelCopy,
    FuelConst,
    LoadIdx,
    Store,
    StoreIdx,
    Un,
    Bin,
    BinK,
    Sqrt,
    Fabs,
    Abs,
    MinMax,
    Itor,
    Print,
    Call,
    Ret,
    RetNull,
    Jump,
    JumpIfFalse,
    JumpCmpFalse,
    JumpCmpKFalse,
    FuelJump,
    Branch,
    Fuel,
    IntCheck,
    ChaseLoop,
    FieldRmw,
    FieldRmwK,
    ForEnter,
    ForHead,
    ForNext,
    ParFor,
    IterEnd,
}

impl Opcode {
    /// Number of opcodes (the counter array length).
    pub const COUNT: usize = 39;

    /// Every opcode, in declaration order (`as usize` indexes this).
    pub const ALL: &'static [Opcode] = &[
        Opcode::Const,
        Opcode::Copy,
        Opcode::Pes,
        Opcode::Alloc,
        Opcode::Load,
        Opcode::FuelLoad,
        Opcode::FuelCopy,
        Opcode::FuelConst,
        Opcode::LoadIdx,
        Opcode::Store,
        Opcode::StoreIdx,
        Opcode::Un,
        Opcode::Bin,
        Opcode::BinK,
        Opcode::Sqrt,
        Opcode::Fabs,
        Opcode::Abs,
        Opcode::MinMax,
        Opcode::Itor,
        Opcode::Print,
        Opcode::Call,
        Opcode::Ret,
        Opcode::RetNull,
        Opcode::Jump,
        Opcode::JumpIfFalse,
        Opcode::JumpCmpFalse,
        Opcode::JumpCmpKFalse,
        Opcode::FuelJump,
        Opcode::Branch,
        Opcode::Fuel,
        Opcode::IntCheck,
        Opcode::ChaseLoop,
        Opcode::FieldRmw,
        Opcode::FieldRmwK,
        Opcode::ForEnter,
        Opcode::ForHead,
        Opcode::ForNext,
        Opcode::ParFor,
        Opcode::IterEnd,
    ];

    /// Stable display name (matches the `Instr` variant).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Const => "Const",
            Opcode::Copy => "Copy",
            Opcode::Pes => "Pes",
            Opcode::Alloc => "Alloc",
            Opcode::Load => "Load",
            Opcode::FuelLoad => "FuelLoad",
            Opcode::FuelCopy => "FuelCopy",
            Opcode::FuelConst => "FuelConst",
            Opcode::LoadIdx => "LoadIdx",
            Opcode::Store => "Store",
            Opcode::StoreIdx => "StoreIdx",
            Opcode::Un => "Un",
            Opcode::Bin => "Bin",
            Opcode::BinK => "BinK",
            Opcode::Sqrt => "Sqrt",
            Opcode::Fabs => "Fabs",
            Opcode::Abs => "Abs",
            Opcode::MinMax => "MinMax",
            Opcode::Itor => "Itor",
            Opcode::Print => "Print",
            Opcode::Call => "Call",
            Opcode::Ret => "Ret",
            Opcode::RetNull => "RetNull",
            Opcode::Jump => "Jump",
            Opcode::JumpIfFalse => "JumpIfFalse",
            Opcode::JumpCmpFalse => "JumpCmpFalse",
            Opcode::JumpCmpKFalse => "JumpCmpKFalse",
            Opcode::FuelJump => "FuelJump",
            Opcode::Branch => "Branch",
            Opcode::Fuel => "Fuel",
            Opcode::IntCheck => "IntCheck",
            Opcode::ChaseLoop => "ChaseLoop",
            Opcode::FieldRmw => "FieldRmw",
            Opcode::FieldRmwK => "FieldRmwK",
            Opcode::ForEnter => "ForEnter",
            Opcode::ForHead => "ForHead",
            Opcode::ForNext => "ForNext",
            Opcode::ParFor => "ParFor",
            Opcode::IterEnd => "IterEnd",
        }
    }
}

/// Cycle attribution for one `parfor` site (keyed by `(func id, body
/// pc)` — the first instruction of the iteration body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopProfile {
    /// Iterations executed across all entries of the region.
    pub iters: u64,
    /// Simulated cycles summed over all iterations (per-iteration work,
    /// before the busiest-PE reduction).
    pub cycles: u64,
    /// The most expensive single iteration, in cycles.
    pub max_iter_cycles: u64,
}

/// A VM execution profile: dynamic opcode counts plus per-`parfor`
/// cycle attribution. Deterministic for a deterministic program — the
/// simulated clock, not wall time, is what's attributed.
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// Dynamic execution count per opcode, indexed by `Opcode as usize`.
    pub op_counts: [u64; Opcode::COUNT],
    /// Per-`parfor`-site attribution, keyed by `(func id, body pc)`.
    pub loops: HashMap<(u32, u32), LoopProfile>,
}

impl Default for VmProfile {
    fn default() -> Self {
        VmProfile {
            op_counts: [0; Opcode::COUNT],
            loops: HashMap::new(),
        }
    }
}

impl VmProfile {
    /// Total instructions dispatched.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.iter().sum()
    }

    /// Opcodes with non-zero counts, most-executed first (count desc,
    /// then declaration order for determinism).
    pub fn ranked_opcodes(&self) -> Vec<(Opcode, u64)> {
        let mut out: Vec<(Opcode, u64)> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.op_counts[op as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 as u8).cmp(&(b.0 as u8))));
        out
    }

    /// `parfor` sites, hottest (most total cycles) first; ties break on
    /// the `(func, pc)` key for determinism.
    pub fn ranked_loops(&self) -> Vec<((u32, u32), LoopProfile)> {
        let mut out: Vec<((u32, u32), LoopProfile)> =
            self.loops.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Fold another profile into this one (aggregating across runs).
    pub fn merge(&mut self, other: &VmProfile) {
        for (a, b) in self.op_counts.iter_mut().zip(&other.op_counts) {
            *a += b;
        }
        for (k, v) in &other.loops {
            let e = self.loops.entry(*k).or_default();
            e.iters += v.iters;
            e.cycles += v.cycles;
            e.max_iter_cycles = e.max_iter_cycles.max(v.max_iter_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_in_declaration_order() {
        assert_eq!(Opcode::ALL.len(), Opcode::COUNT);
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "{}", op.name());
        }
    }

    #[test]
    fn ranking_is_deterministic_and_descending() {
        let mut p = VmProfile::default();
        p.op_counts[Opcode::Load as usize] = 10;
        p.op_counts[Opcode::Store as usize] = 10;
        p.op_counts[Opcode::Call as usize] = 99;
        let ranked = p.ranked_opcodes();
        assert_eq!(ranked[0], (Opcode::Call, 99));
        // Equal counts fall back to declaration order: Load before Store.
        assert_eq!(ranked[1], (Opcode::Load, 10));
        assert_eq!(ranked[2], (Opcode::Store, 10));
        assert_eq!(p.total_ops(), 119);
    }

    #[test]
    fn merge_aggregates_counts_and_loops() {
        let mut a = VmProfile::default();
        a.op_counts[Opcode::Bin as usize] = 5;
        a.loops.insert(
            (0, 7),
            LoopProfile {
                iters: 2,
                cycles: 100,
                max_iter_cycles: 60,
            },
        );
        let mut b = VmProfile::default();
        b.op_counts[Opcode::Bin as usize] = 3;
        b.loops.insert(
            (0, 7),
            LoopProfile {
                iters: 1,
                cycles: 80,
                max_iter_cycles: 80,
            },
        );
        a.merge(&b);
        assert_eq!(a.op_counts[Opcode::Bin as usize], 8);
        let l = a.loops[&(0, 7)];
        assert_eq!((l.iters, l.cycles, l.max_iter_cycles), (3, 180, 80));
    }
}
