//! Opt-in VM profiling: a dense per-opcode execution counter array,
//! per-superblock execution counters, and per-`parfor`-site cycle
//! attribution.
//!
//! The profile answers the questions superinstruction work needs:
//! *which opcodes dominate dynamic dispatch* (so fusion candidates are
//! chosen from evidence, not intuition), *which fused blocks actually
//! run*, and *which parallel loops the simulated cycles go to*.
//! Profiling is off by default — the dispatch loop pays one `Option`
//! check per instruction — and enabled per-VM with
//! [`crate::vm::Vm::enable_profiling`]; `adds-cli profile` is the
//! user-facing frontend.

use std::collections::HashMap;

/// Dense opcode identifier — one variant per [`crate::compile`]
/// instruction, used to index the profile's counter array.
///
/// Declaration order is the *dispatch order*: the superinstructions and
/// hot fused statement forms occupy a contiguous low discriminant range
/// so the VM's dispatch `match` compiles to a dense jump table with the
/// hot arms packed first. Must mirror `Instr` exactly (pinned by test).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the Instr variants 1:1
pub enum Opcode {
    Super,
    SuperLoop,
    ChaseLoop,
    FuelLoad,
    FieldRmw,
    FieldRmwK,
    GuardRmw,
    JumpCmpFalse,
    JumpCmpKFalse,
    FuelJump,
    FuelCopy,
    FuelConst,
    Copy,
    Const,
    Load,
    Store,
    Bin,
    BinK,
    Jump,
    JumpIfFalse,
    Call,
    InlineEnter,
    InlineRet,
    IntCheck,
    ParFor,
    IterEnd,
    ForEnter,
    ForHead,
    ForNext,
    Ret,
    RetNull,
    Fuel,
    Branch,
    Un,
    Sqrt,
    Fabs,
    Abs,
    MinMax,
    Itor,
    Pes,
    Alloc,
    LoadIdx,
    StoreIdx,
    Print,
}

impl Opcode {
    /// Number of opcodes (the counter array length).
    pub const COUNT: usize = 44;

    /// Every opcode, in declaration order (`as usize` indexes this).
    pub const ALL: &'static [Opcode] = &[
        Opcode::Super,
        Opcode::SuperLoop,
        Opcode::ChaseLoop,
        Opcode::FuelLoad,
        Opcode::FieldRmw,
        Opcode::FieldRmwK,
        Opcode::GuardRmw,
        Opcode::JumpCmpFalse,
        Opcode::JumpCmpKFalse,
        Opcode::FuelJump,
        Opcode::FuelCopy,
        Opcode::FuelConst,
        Opcode::Copy,
        Opcode::Const,
        Opcode::Load,
        Opcode::Store,
        Opcode::Bin,
        Opcode::BinK,
        Opcode::Jump,
        Opcode::JumpIfFalse,
        Opcode::Call,
        Opcode::InlineEnter,
        Opcode::InlineRet,
        Opcode::IntCheck,
        Opcode::ParFor,
        Opcode::IterEnd,
        Opcode::ForEnter,
        Opcode::ForHead,
        Opcode::ForNext,
        Opcode::Ret,
        Opcode::RetNull,
        Opcode::Fuel,
        Opcode::Branch,
        Opcode::Un,
        Opcode::Sqrt,
        Opcode::Fabs,
        Opcode::Abs,
        Opcode::MinMax,
        Opcode::Itor,
        Opcode::Pes,
        Opcode::Alloc,
        Opcode::LoadIdx,
        Opcode::StoreIdx,
        Opcode::Print,
    ];

    /// Stable display name (matches the `Instr` variant).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Super => "Super",
            Opcode::SuperLoop => "SuperLoop",
            Opcode::ChaseLoop => "ChaseLoop",
            Opcode::FuelLoad => "FuelLoad",
            Opcode::FieldRmw => "FieldRmw",
            Opcode::FieldRmwK => "FieldRmwK",
            Opcode::GuardRmw => "GuardRmw",
            Opcode::JumpCmpFalse => "JumpCmpFalse",
            Opcode::JumpCmpKFalse => "JumpCmpKFalse",
            Opcode::FuelJump => "FuelJump",
            Opcode::FuelCopy => "FuelCopy",
            Opcode::FuelConst => "FuelConst",
            Opcode::Copy => "Copy",
            Opcode::Const => "Const",
            Opcode::Load => "Load",
            Opcode::Store => "Store",
            Opcode::Bin => "Bin",
            Opcode::BinK => "BinK",
            Opcode::Jump => "Jump",
            Opcode::JumpIfFalse => "JumpIfFalse",
            Opcode::Call => "Call",
            Opcode::InlineEnter => "InlineEnter",
            Opcode::InlineRet => "InlineRet",
            Opcode::IntCheck => "IntCheck",
            Opcode::ParFor => "ParFor",
            Opcode::IterEnd => "IterEnd",
            Opcode::ForEnter => "ForEnter",
            Opcode::ForHead => "ForHead",
            Opcode::ForNext => "ForNext",
            Opcode::Ret => "Ret",
            Opcode::RetNull => "RetNull",
            Opcode::Fuel => "Fuel",
            Opcode::Branch => "Branch",
            Opcode::Un => "Un",
            Opcode::Sqrt => "Sqrt",
            Opcode::Fabs => "Fabs",
            Opcode::Abs => "Abs",
            Opcode::MinMax => "MinMax",
            Opcode::Itor => "Itor",
            Opcode::Pes => "Pes",
            Opcode::Alloc => "Alloc",
            Opcode::LoadIdx => "LoadIdx",
            Opcode::StoreIdx => "StoreIdx",
            Opcode::Print => "Print",
        }
    }
}

/// Cycle attribution for one `parfor` site (keyed by `(func id, body
/// pc)` — the first instruction of the iteration body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopProfile {
    /// Iterations executed across all entries of the region.
    pub iters: u64,
    /// Simulated cycles summed over all iterations (per-iteration work,
    /// before the busiest-PE reduction).
    pub cycles: u64,
    /// The most expensive single iteration, in cycles.
    pub max_iter_cycles: u64,
}

/// A VM execution profile: dynamic opcode counts, per-superblock
/// execution counts, plus per-`parfor` cycle attribution. Deterministic
/// for a deterministic program — the simulated clock, not wall time, is
/// what's attributed.
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// Dynamic execution count per opcode, indexed by `Opcode as usize`.
    pub op_counts: [u64; Opcode::COUNT],
    /// Executions per superblock id (grown lazily to the program's block
    /// count). Invariant: `sum(sb_counts) == op_counts[Super]` — every
    /// `Super` dispatch and every `SuperLoop` iteration executes exactly
    /// one superblock.
    pub sb_counts: Vec<u64>,
    /// Per-`parfor`-site attribution, keyed by `(func id, body pc)`.
    pub loops: HashMap<(u32, u32), LoopProfile>,
}

impl Default for VmProfile {
    fn default() -> Self {
        VmProfile {
            op_counts: [0; Opcode::COUNT],
            sb_counts: Vec::new(),
            loops: HashMap::new(),
        }
    }
}

impl VmProfile {
    /// Total instructions dispatched.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.iter().sum()
    }

    /// Opcodes with non-zero counts, most-executed first (count desc,
    /// then declaration order for determinism).
    pub fn ranked_opcodes(&self) -> Vec<(Opcode, u64)> {
        let mut out: Vec<(Opcode, u64)> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.op_counts[op as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 as u8).cmp(&(b.0 as u8))));
        out
    }

    /// Superblocks with non-zero execution counts, hottest first (count
    /// desc, then id for determinism).
    pub fn ranked_superblocks(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .sb_counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// `parfor` sites, hottest (most total cycles) first; ties break on
    /// the `(func, pc)` key for determinism.
    pub fn ranked_loops(&self) -> Vec<((u32, u32), LoopProfile)> {
        let mut out: Vec<((u32, u32), LoopProfile)> =
            self.loops.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Fold another profile into this one (aggregating across runs).
    pub fn merge(&mut self, other: &VmProfile) {
        for (a, b) in self.op_counts.iter_mut().zip(&other.op_counts) {
            *a += b;
        }
        if self.sb_counts.len() < other.sb_counts.len() {
            self.sb_counts.resize(other.sb_counts.len(), 0);
        }
        for (a, b) in self.sb_counts.iter_mut().zip(&other.sb_counts) {
            *a += b;
        }
        for (k, v) in &other.loops {
            let e = self.loops.entry(*k).or_default();
            e.iters += v.iters;
            e.cycles += v.cycles;
            e.max_iter_cycles = e.max_iter_cycles.max(v.max_iter_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_in_declaration_order() {
        assert_eq!(Opcode::ALL.len(), Opcode::COUNT);
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "{}", op.name());
        }
    }

    #[test]
    fn hot_fused_ops_lead_the_dispatch_range() {
        // The dense-range dispatch contract: superinstructions and fused
        // statement forms occupy the low discriminants.
        assert_eq!(Opcode::Super as usize, 0);
        assert_eq!(Opcode::SuperLoop as usize, 1);
        assert!((Opcode::FuelJump as usize) < 16);
        assert!((Opcode::FieldRmw as usize) < 16);
        assert!((Opcode::JumpCmpKFalse as usize) < 16);
    }

    #[test]
    fn ranking_is_deterministic_and_descending() {
        let mut p = VmProfile::default();
        p.op_counts[Opcode::Load as usize] = 10;
        p.op_counts[Opcode::Store as usize] = 10;
        p.op_counts[Opcode::Call as usize] = 99;
        let ranked = p.ranked_opcodes();
        assert_eq!(ranked[0], (Opcode::Call, 99));
        // Equal counts fall back to declaration order: Load before Store.
        assert_eq!(ranked[1], (Opcode::Load, 10));
        assert_eq!(ranked[2], (Opcode::Store, 10));
        assert_eq!(p.total_ops(), 119);
    }

    #[test]
    fn superblock_ranking_and_merge() {
        let mut a = VmProfile {
            sb_counts: vec![5, 0, 9],
            ..VmProfile::default()
        };
        let b = VmProfile {
            sb_counts: vec![1, 2, 3, 4],
            ..VmProfile::default()
        };
        a.merge(&b);
        assert_eq!(a.sb_counts, vec![6, 2, 12, 4]);
        assert_eq!(
            a.ranked_superblocks(),
            vec![(2, 12), (0, 6), (3, 4), (1, 2)]
        );
    }

    #[test]
    fn merge_aggregates_counts_and_loops() {
        let mut a = VmProfile::default();
        a.op_counts[Opcode::Bin as usize] = 5;
        a.loops.insert(
            (0, 7),
            LoopProfile {
                iters: 2,
                cycles: 100,
                max_iter_cycles: 60,
            },
        );
        let mut b = VmProfile::default();
        b.op_counts[Opcode::Bin as usize] = 3;
        b.loops.insert(
            (0, 7),
            LoopProfile {
                iters: 1,
                cycles: 80,
                max_iter_cycles: 80,
            },
        );
        a.merge(&b);
        assert_eq!(a.op_counts[Opcode::Bin as usize], 8);
        let l = a.loops[&(0, 7)];
        assert_eq!((l.iters, l.cycles, l.max_iter_cycles), (3, 180, 80));
    }
}
