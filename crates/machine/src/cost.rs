//! Cycle cost model for the simulated machine.
//!
//! The Sequent profile is calibrated to the era of the paper's evaluation
//! (Sequent Symmetry-class shared-memory multiprocessor): slow floating
//! point relative to integer ops, memory an order of magnitude slower than
//! registers, and — the paper's caveat (3) — *very* slow synchronization.

#[derive(Clone, Copy, Debug, PartialEq)]
/// Cycle charges per abstract operation.
pub struct CostModel {
    /// Integer ALU op.
    pub alu: u64,
    /// Floating-point op.
    pub fp: u64,
    /// Square root.
    pub sqrt: u64,
    /// Heap load / store.
    pub load: u64,
    /// Heap store.
    pub store: u64,
    /// Conditional branch (loop/if condition).
    pub branch: u64,
    /// Function call overhead.
    pub call: u64,
    /// Heap allocation.
    pub alloc: u64,
    /// Barrier synchronization of one parallel region round.
    pub sync: u64,
}

impl CostModel {
    /// Sequent Symmetry-like profile ("synchronization on a Sequent is
    /// rather slow", §4.4).
    pub fn sequent() -> CostModel {
        CostModel {
            alu: 1,
            fp: 40,
            sqrt: 240,
            load: 3,
            store: 3,
            branch: 2,
            call: 15,
            alloc: 30,
            sync: 1500,
        }
    }

    /// A modern-ish uniform profile (used by ablations).
    pub fn uniform() -> CostModel {
        CostModel {
            alu: 1,
            fp: 2,
            sqrt: 15,
            load: 2,
            store: 2,
            branch: 1,
            call: 5,
            alloc: 10,
            sync: 100,
        }
    }

    /// Everything free except synchronization — isolates sync overhead for
    /// the A3 ablation.
    pub fn with_sync(mut self, sync: u64) -> CostModel {
        self.sync = sync;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sequent()
    }
}

/// Static per-class operation counts accumulated over a fused superblock
/// at compile time. The cost model is a *VM configuration*, not a
/// compile-time constant, so fused blocks carry counts and each VM
/// resolves them to a cycle total against its own model once, at
/// construction ([`Charge::cycles`]). Value-dependent charges (`Bin`/`Un`
/// picking alu vs fp from operand kinds) are deliberately excluded — those
/// ops charge themselves even inside a block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Charge {
    /// Integer ALU ops with statically-known class (`Abs`, `Itor`).
    pub alu: u32,
    /// Floating-point ops (`Fabs`, `MinMax`).
    pub fp: u32,
    /// Square roots.
    pub sqrt: u32,
    /// Heap loads.
    pub load: u32,
    /// Heap stores.
    pub store: u32,
    /// Branch-point charges (`Branch`).
    pub branch: u32,
    /// Call overheads (`InlineEnter`).
    pub call: u32,
    /// Heap allocations.
    pub alloc: u32,
}

impl Charge {
    /// Total cycles these counts cost under model `m`.
    pub fn cycles(&self, m: &CostModel) -> u64 {
        self.alu as u64 * m.alu
            + self.fp as u64 * m.fp
            + self.sqrt as u64 * m.sqrt
            + self.load as u64 * m.load
            + self.store as u64 * m.store
            + self.branch as u64 * m.branch
            + self.call as u64 * m.call
            + self.alloc as u64 * m.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequent_sync_is_slow() {
        let c = CostModel::sequent();
        assert!(c.sync > 100 * c.alu);
        assert!(c.fp > c.alu);
        assert!(c.sqrt > c.fp);
    }

    #[test]
    fn with_sync_overrides() {
        let c = CostModel::sequent().with_sync(7);
        assert_eq!(c.sync, 7);
        assert_eq!(c.fp, CostModel::sequent().fp);
    }

    #[test]
    fn charge_resolves_against_any_model() {
        let c = Charge {
            load: 2,
            store: 1,
            branch: 3,
            ..Charge::default()
        };
        let m = CostModel::sequent();
        assert_eq!(c.cycles(&m), 2 * m.load + m.store + 3 * m.branch);
        let u = CostModel::uniform();
        assert_eq!(c.cycles(&u), 2 * u.load + u.store + 3 * u.branch);
        assert_eq!(Charge::default().cycles(&m), 0);
    }

    #[test]
    fn profiles_differ() {
        assert_ne!(CostModel::sequent(), CostModel::uniform());
        assert_eq!(CostModel::default(), CostModel::sequent());
    }
}
