//! Cycle cost model for the simulated machine.
//!
//! The Sequent profile is calibrated to the era of the paper's evaluation
//! (Sequent Symmetry-class shared-memory multiprocessor): slow floating
//! point relative to integer ops, memory an order of magnitude slower than
//! registers, and — the paper's caveat (3) — *very* slow synchronization.

#[derive(Clone, Copy, Debug, PartialEq)]
/// Cycle charges per abstract operation.
pub struct CostModel {
    /// Integer ALU op.
    pub alu: u64,
    /// Floating-point op.
    pub fp: u64,
    /// Square root.
    pub sqrt: u64,
    /// Heap load / store.
    pub load: u64,
    /// Heap store.
    pub store: u64,
    /// Conditional branch (loop/if condition).
    pub branch: u64,
    /// Function call overhead.
    pub call: u64,
    /// Heap allocation.
    pub alloc: u64,
    /// Barrier synchronization of one parallel region round.
    pub sync: u64,
}

impl CostModel {
    /// Sequent Symmetry-like profile ("synchronization on a Sequent is
    /// rather slow", §4.4).
    pub fn sequent() -> CostModel {
        CostModel {
            alu: 1,
            fp: 40,
            sqrt: 240,
            load: 3,
            store: 3,
            branch: 2,
            call: 15,
            alloc: 30,
            sync: 1500,
        }
    }

    /// A modern-ish uniform profile (used by ablations).
    pub fn uniform() -> CostModel {
        CostModel {
            alu: 1,
            fp: 2,
            sqrt: 15,
            load: 2,
            store: 2,
            branch: 1,
            call: 5,
            alloc: 10,
            sync: 100,
        }
    }

    /// Everything free except synchronization — isolates sync overhead for
    /// the A3 ablation.
    pub fn with_sync(mut self, sync: u64) -> CostModel {
        self.sync = sync;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sequent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequent_sync_is_slow() {
        let c = CostModel::sequent();
        assert!(c.sync > 100 * c.alu);
        assert!(c.fp > c.alu);
        assert!(c.sqrt > c.fp);
    }

    #[test]
    fn with_sync_overrides() {
        let c = CostModel::sequent().with_sync(7);
        assert_eq!(c.sync, 7);
        assert_eq!(c.fp, CostModel::sequent().fp);
    }

    #[test]
    fn profiles_differ() {
        assert_ne!(CostModel::sequent(), CostModel::uniform());
        assert_eq!(CostModel::default(), CostModel::sequent());
    }
}
