//! Lowering of typed IL programs to the slot-resolved bytecode the
//! [`crate::vm::Vm`] executes.
//!
//! The compile pass resolves, once, everything the tree-walking
//! interpreter re-derives on every access:
//!
//! * **Variables → frame slots.** Each function gets a flat frame layout —
//!   parameters first, then named locals (sorted for determinism), then
//!   expression temporaries — so frames become plain `Vec<Value>` windows
//!   instead of `HashMap<String, Value>`.
//! * **Field accesses → record offsets.** The static type of every field
//!   access base is known (the type checker records per-function variable
//!   types), so `p->coef` compiles to a numeric offset; only array accesses
//!   keep a runtime bounds check.
//! * **Functions → ids.** Calls carry a function index; intrinsics become
//!   dedicated opcodes.
//!
//! The bytecode preserves the interpreter's observable semantics exactly:
//! cycle charges are emitted as explicit `Branch` points or
//! charged inside the data opcodes in the same order the interpreter
//! charges them, and every statement begins with a `Fuel` instruction so
//! statement counts and out-of-fuel points agree. The one documented
//! divergence: reading a local before its `var` declaration has executed
//! yields NULL in the VM where the interpreter raises "unbound variable"
//! (well-typed programs cannot observe this without contorted
//! declaration-after-use blocks, which the corpus never contains). Inlined
//! calls extend that caveat: an inlined callee's locals live in a reused
//! caller frame region, so such a contorted read would see the previous
//! invocation's value rather than NULL.
//!
//! ## Opcode inventory
//!
//! The instruction set is deliberately small — five families plus the
//! fused forms below. The `Instr` and [`crate::profile::Opcode`] enums are
//! declared in the same *hot-first* order: the superinstructions and fused
//! statement forms that dominate dynamic dispatch occupy a contiguous low
//! discriminant range, so the VM's dispatch `match` lowers to a dense jump
//! table with the hot arms packed together.
//!
//! * **data movement** — `Const`, `Copy`, `Pes`;
//! * **heap traffic** — `Alloc`, `Load`, `LoadIdx`, `Store`, `StoreIdx`
//!   (offsets resolved at compile time; only indexed accesses carry a
//!   bounds check);
//! * **arithmetic** — `Un`, `Bin`, `BinK`, and the intrinsics `Sqrt`,
//!   `Fabs`, `Abs`, `MinMax`, `Itor`;
//! * **control** — `Call`, `Ret`, `RetNull`, `Jump`, `JumpIfFalse`,
//!   `Branch` (cycle charge), `IntCheck`, the counted-loop triple
//!   `ForEnter` / `ForHead` / `ForNext`, the parallel-region pair
//!   `ParFor` / `IterEnd`, and the inlined-call bookkeeping pair
//!   `InlineEnter` / `InlineRet`;
//! * **accounting & I/O** — `Fuel` (one statement of budget), `Print`.
//!
//! ## Fusion inventory
//!
//! Two layers rewrite the dominant statement shapes into single opcodes.
//! Every fused form charges cycles and burns fuel in exactly the order of
//! the sequence it replaces (the differential suite pins this):
//!
//! | fused opcode | replaces | why it is hot |
//! |---|---|---|
//! | `FuelLoad` / `FuelCopy` / `FuelConst` | `Fuel` + `Load`/`Copy`/`Const` | statement-initial form of nearly every assignment |
//! | `BinK`, `JumpCmpKFalse`, `FieldRmwK` | a `Const` + the literal-free form | literals appear in most conditions and updates |
//! | `JumpCmpFalse` (with `branch`) | `Branch` + `Bin` + `JumpIfFalse` | every `while p <> NULL` / `if` head |
//! | `FuelJump` | `Fuel` + `Jump` | loop backedges |
//! | `FieldRmw` | `Load` + `Bin` + `Store` | `p->f = p->f op x` loop bodies |
//! | `ForEnter`/`ForHead`/`ForNext` | head/backedge jump chains | the strip-mined `for k = lo to hi` |
//! | `ChaseLoop` | the whole `for k { p = p->field }` loop | the strip-mined walk's positioning/block advance |
//! | `GuardRmw` | `Fuel` + `JumpCmpKFalse` (`p <> NULL` guard) + `FieldRmw` | the strip-mined per-node guarded update |
//!
//! On top of the peephole layer, [`CompileOptions`] enables two
//! whole-block passes (both on by default):
//!
//! | block form | replaces | accounting |
//! |---|---|---|
//! | `InlineEnter` … `InlineRet` | `Call` + frame push/pop of a tiny leaf callee | one `call` charge, call/depth counters kept exact |
//! | `Super` | a straight-line run of ≥ 2 data instructions between branch targets | aggregate fuel + static cycle charge applied in bulk ([`crate::cost::Charge`]) |
//! | `SuperLoop` | a whole `while cond { straight-line body }` loop | head check + body superblock + backedge fuel per iteration, no outer dispatch |
//!
//! Fuel-exhaustion points are preserved: a superblock whose remaining fuel
//! cannot cover the bulk charge falls back to per-op execution with full
//! accounting, so the failing statement is exactly the interpreter's.

use crate::cost::Charge;
use crate::value::{Layout, Layouts, Value};
use adds_lang::adds::AddsEnv;
use adds_lang::ast::*;
use adds_lang::types::{TypedProgram, PES_CONST};
use std::collections::HashMap;

/// A frame slot index.
pub type Slot = u32;

/// One bytecode instruction. Slots address the current frame.
///
/// Variant order is the dense dispatch order (hot fused ops first) and
/// mirrors [`crate::profile::Opcode`] exactly.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// Fused straight-line superblock: execute
    /// `superblocks[sb]` as one dispatch with bulk fuel/cycle accounting.
    Super { sb: u32 },
    /// Fused single-block `while` loop: run `loop_blocks[lp]` to
    /// completion, then continue at its exit pc.
    SuperLoop { lp: u32 },
    /// Fused self-chase loop `for k = i to hi { ptr = ptr->field }` — the
    /// strip-mined walk's positioning and block-advance pattern. Replays
    /// the exact per-iteration sequence (branch charge, `k` update, two
    /// fuel burns, load charge, speculative NULL behavior, conflict read
    /// logging) without per-link dispatch.
    ChaseLoop {
        k: Slot,
        i: Slot,
        hi: Slot,
        ptr: Slot,
        off: u32,
        access: u32,
    },
    /// Statement-initial `Load`: burn one statement of fuel, then load
    /// (peephole fusion of the dominant chase-loop pattern `p = p->next`).
    FuelLoad {
        dst: Slot,
        base: Slot,
        off: u32,
        access: u32,
    },
    /// Fused read-modify-write `base->field = base->field op src`; burns
    /// the statement fuel itself (always statement-initial).
    FieldRmw {
        op: BinOp,
        base: Slot,
        src: Slot,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// [`Instr::FieldRmw`] with a literal right operand.
    FieldRmwK {
        op: BinOp,
        base: Slot,
        k: Value,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// Fused strip-mined guard: `fuel; if (cond != NULL) { cond->field =
    /// cond->field op src }` — the per-node body the strip-mining
    /// transformation emits inside every parallel iteration (the walk
    /// positions `cond`, the guard skips past-the-end strips). Charges
    /// exactly like `Fuel` + `JumpCmpKFalse` + (when taken) `FieldRmw`.
    GuardRmw {
        op: BinOp,
        cond: Slot,
        src: Slot,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// Fused comparison + branch: `if !(lhs op rhs) jump target`, charging
    /// exactly like `Bin` followed by `JumpIfFalse` (only emitted for
    /// comparison operators, whose result is always bool). `branch` as in
    /// [`Instr::JumpIfFalse`].
    JumpCmpFalse {
        op: BinOp,
        lhs: Slot,
        rhs: Slot,
        branch: bool,
        target: u32,
    },
    /// Fused comparison-with-literal + branch.
    JumpCmpKFalse {
        op: BinOp,
        lhs: Slot,
        k: Value,
        branch: bool,
        target: u32,
    },
    /// Fused loop tail: burn one statement of fuel, then jump.
    FuelJump { target: u32 },
    /// Statement-initial `Copy` (fuel + copy).
    FuelCopy { dst: Slot, src: Slot },
    /// Statement-initial `Const` (fuel + const).
    FuelConst { dst: Slot, v: Value },
    /// `dst = src`.
    Copy { dst: Slot, src: Slot },
    /// `dst = v`.
    Const { dst: Slot, v: Value },
    /// `dst = base->field` — charges `load`. `off` is the resolved record
    /// offset; `access` is consulted only on error paths.
    Load {
        dst: Slot,
        base: Slot,
        off: u32,
        access: u32,
    },
    /// `base->field = src` — charges `store`; `is_ptr` gates shape checks.
    Store {
        base: Slot,
        src: Slot,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// `dst = lhs op rhs` (shared operator semantics).
    Bin {
        op: BinOp,
        dst: Slot,
        lhs: Slot,
        rhs: Slot,
    },
    /// `dst = lhs op k` — literal right operand folded into the
    /// instruction (same shared semantics and charges as `Bin`).
    BinK {
        op: BinOp,
        dst: Slot,
        lhs: Slot,
        k: Value,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `cond` is false; errors when `cond` is not a bool. When
    /// `branch` is set, charge the loop/if `branch` cost first (fused
    /// condition head whose operands need no evaluation code).
    JumpIfFalse {
        cond: Slot,
        branch: bool,
        target: u32,
    },
    /// `dst = funcs[func](args..args+argc)` — charges `call`.
    Call {
        dst: Slot,
        func: u32,
        args: Slot,
        argc: u32,
    },
    /// Entry bookkeeping of a compile-time-inlined call: charges `call`
    /// and keeps the call/depth counters exactly as a real frame push
    /// would, without pushing a frame.
    InlineEnter,
    /// Exit bookkeeping of an inlined call (the shared join point every
    /// inlined `return` jumps to).
    InlineRet,
    /// Error unless the slot holds an int (loop bound checks).
    IntCheck { slot: Slot },
    /// Parallel region over `body..body_end` (which ends with `IterEnd`).
    ParFor {
        var: Slot,
        lo: Slot,
        hi: Slot,
        body_end: u32,
    },
    /// End of a `parfor` iteration body.
    IterEnd,
    /// Counted-loop entry: skip to `exit` when `i > hi` (no charge).
    ForEnter { i: Slot, hi: Slot, exit: u32 },
    /// Counted-loop iteration head: charge `branch`, then `var = i`.
    ForHead { var: Slot, i: Slot },
    /// Counted-loop backedge: burn one statement of fuel; then, when
    /// `i < hi`, increment and jump to `head`.
    ForNext { i: Slot, hi: Slot, head: u32 },
    /// `return src`.
    Ret { src: Slot },
    /// `return;` / fall off the end (yields NULL).
    RetNull,
    /// Burn one statement of fuel (counts toward `ExecStats::stmts`).
    Fuel,
    /// Charge one `branch` cycle cost (loop/if condition points).
    Branch,
    /// `dst = op src` (shared operator semantics).
    Un { op: UnOp, dst: Slot, src: Slot },
    /// `dst = sqrt(src)` — charges `sqrt`.
    Sqrt { dst: Slot, src: Slot },
    /// `dst = fabs(src)` — charges `fp`.
    Fabs { dst: Slot, src: Slot },
    /// `dst = abs(src)` — charges `alu`.
    Abs { dst: Slot, src: Slot },
    /// `dst = min(a, b)` / `max(a, b)` — charges `fp`.
    MinMax {
        dst: Slot,
        a: Slot,
        b: Slot,
        is_min: bool,
    },
    /// `dst = itor(src)` — charges `alu`.
    Itor { dst: Slot, src: Slot },
    /// `dst = PEs` (the machine's configured processor count).
    Pes { dst: Slot },
    /// `dst = new T` — charges `alloc`.
    Alloc { dst: Slot, ty: u32 },
    /// `dst = base->field[idx]` — charges `load`; bounds-checks against
    /// `len`.
    LoadIdx {
        dst: Slot,
        base: Slot,
        idx: Slot,
        off: u32,
        len: u32,
        access: u32,
    },
    /// `base->field[idx] = src` — charges `store`.
    StoreIdx {
        base: Slot,
        idx: Slot,
        src: Slot,
        off: u32,
        len: u32,
        is_ptr: bool,
        access: u32,
    },
    /// `print(src)` — appends to the output log.
    Print { src: Slot },
}

impl Instr {
    /// The dense [`Opcode`](crate::profile::Opcode) of this instruction
    /// (profiling counter index).
    pub(crate) fn opcode(&self) -> crate::profile::Opcode {
        use crate::profile::Opcode;
        match self {
            Instr::Super { .. } => Opcode::Super,
            Instr::SuperLoop { .. } => Opcode::SuperLoop,
            Instr::ChaseLoop { .. } => Opcode::ChaseLoop,
            Instr::FuelLoad { .. } => Opcode::FuelLoad,
            Instr::FieldRmw { .. } => Opcode::FieldRmw,
            Instr::FieldRmwK { .. } => Opcode::FieldRmwK,
            Instr::GuardRmw { .. } => Opcode::GuardRmw,
            Instr::JumpCmpFalse { .. } => Opcode::JumpCmpFalse,
            Instr::JumpCmpKFalse { .. } => Opcode::JumpCmpKFalse,
            Instr::FuelJump { .. } => Opcode::FuelJump,
            Instr::FuelCopy { .. } => Opcode::FuelCopy,
            Instr::FuelConst { .. } => Opcode::FuelConst,
            Instr::Copy { .. } => Opcode::Copy,
            Instr::Const { .. } => Opcode::Const,
            Instr::Load { .. } => Opcode::Load,
            Instr::Store { .. } => Opcode::Store,
            Instr::Bin { .. } => Opcode::Bin,
            Instr::BinK { .. } => Opcode::BinK,
            Instr::Jump { .. } => Opcode::Jump,
            Instr::JumpIfFalse { .. } => Opcode::JumpIfFalse,
            Instr::Call { .. } => Opcode::Call,
            Instr::InlineEnter => Opcode::InlineEnter,
            Instr::InlineRet => Opcode::InlineRet,
            Instr::IntCheck { .. } => Opcode::IntCheck,
            Instr::ParFor { .. } => Opcode::ParFor,
            Instr::IterEnd => Opcode::IterEnd,
            Instr::ForEnter { .. } => Opcode::ForEnter,
            Instr::ForHead { .. } => Opcode::ForHead,
            Instr::ForNext { .. } => Opcode::ForNext,
            Instr::Ret { .. } => Opcode::Ret,
            Instr::RetNull => Opcode::RetNull,
            Instr::Fuel => Opcode::Fuel,
            Instr::Branch => Opcode::Branch,
            Instr::Un { .. } => Opcode::Un,
            Instr::Sqrt { .. } => Opcode::Sqrt,
            Instr::Fabs { .. } => Opcode::Fabs,
            Instr::Abs { .. } => Opcode::Abs,
            Instr::MinMax { .. } => Opcode::MinMax,
            Instr::Itor { .. } => Opcode::Itor,
            Instr::Pes { .. } => Opcode::Pes,
            Instr::Alloc { .. } => Opcode::Alloc,
            Instr::LoadIdx { .. } => Opcode::LoadIdx,
            Instr::StoreIdx { .. } => Opcode::StoreIdx,
            Instr::Print { .. } => Opcode::Print,
        }
    }
}

/// One compiled function.
#[derive(Clone, Debug)]
pub(crate) struct FuncCode {
    pub(crate) n_params: u32,
    /// Total frame size: params + named locals + expression temporaries
    /// (+ inlined-callee extension regions).
    pub(crate) frame_size: u32,
    pub(crate) code: Vec<Instr>,
}

/// Compile-time optimization switches. Production callers use the
/// default (everything on); the differential suite sweeps the off
/// combinations to pin the unoptimized lowering against the interpreter
/// too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Splice tiny leaf callees (the strip-mined per-iteration helpers)
    /// into their callers, replacing the frame push/pop with
    /// `InlineEnter`/`InlineRet` bookkeeping.
    pub inline: bool,
    /// Fuse straight-line opcode runs into `Super` blocks and
    /// single-block `while` loops into `SuperLoop`, with precomputed
    /// aggregate fuel and cycle charges.
    pub fuse: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            inline: true,
            fuse: true,
        }
    }
}

/// A fused straight-line run of data instructions, executed by the VM as
/// one dispatch: aggregate fuel and the static cycle charge are applied
/// in bulk, then the constituent ops run without their own accounting
/// (value-dependent `Bin`/`Un` charges stay inside the ops).
#[derive(Clone, Debug)]
pub(crate) struct SuperBlock {
    /// Statements of fuel the block burns (its statement-initial ops).
    pub(crate) fuel: u32,
    /// Static per-class cycle counts, resolved against the VM's cost
    /// model at construction.
    pub(crate) charge: Charge,
    pub(crate) ops: Box<[Instr]>,
}

/// The condition head of a fused single-block `while` loop. All variants
/// charge `branch` first (the fused heads only arise from pure-slot
/// conditions, where the peephole layer already folded the charge in).
#[derive(Clone, Copy, Debug)]
pub(crate) enum LoopHead {
    /// `while cond` over a plain bool slot.
    Truthy { cond: Slot },
    /// `while lhs op rhs`.
    Cmp { op: BinOp, lhs: Slot, rhs: Slot },
    /// `while lhs op k`.
    CmpK { op: BinOp, lhs: Slot, k: Value },
}

/// A fused `while` loop whose whole body is one superblock: head check,
/// body, backedge fuel — no per-iteration dispatch at all.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LoopBlock {
    pub(crate) head: LoopHead,
    /// Body superblock id.
    pub(crate) body: u32,
    /// Continuation pc when the head check fails.
    pub(crate) exit: u32,
}

/// Schema version of the bytecode artifact this module produces. Cached
/// compiled programs (the query layer's `compiled(src)` artifacts) embed
/// this token in their fingerprints, so changing the instruction set or
/// layout rules here invalidates stale bytecode without touching the
/// analysis layers' cache entries. Bump it whenever a change makes old
/// artifacts semantically different from a fresh compile. `/v2`:
/// compile-time helper inlining, superblock fusion, and the hot-first
/// dense opcode reorder.
pub const BYTECODE_SCHEMA: &str = "machine-bytecode/v2";

/// A typed program lowered to slot-resolved bytecode, ready to run on any
/// number of [`crate::vm::Vm`] instances.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub(crate) funcs: Vec<FuncCode>,
    names: HashMap<String, u32>,
    /// Record layouts (with precomputed default-slot vectors).
    pub layouts: Layouts,
    /// Per-type layouts by id, for `Alloc`.
    pub(crate) type_layouts: Vec<Layout>,
    /// Field names per interned access site, for error messages and shape
    /// checks (the numeric facts are embedded in the instructions).
    pub(crate) accesses: Vec<String>,
    /// The ADDS shape model, for runtime shape checking.
    pub(crate) adds: AddsEnv,
    /// Fused straight-line blocks (`Super` targets and `SuperLoop`
    /// bodies).
    pub(crate) superblocks: Vec<SuperBlock>,
    /// Fused whole-`while` loops (`SuperLoop` targets).
    pub(crate) loop_blocks: Vec<LoopBlock>,
    /// Call sites spliced into their callers at compile time.
    inlined_calls: u32,
}

impl CompiledProgram {
    /// Lower `tp` to bytecode with the default optimizations (inlining
    /// and superblock fusion on). The pass is total on type-checked
    /// programs.
    pub fn compile(tp: &TypedProgram) -> CompiledProgram {
        Self::compile_with(tp, CompileOptions::default())
    }

    /// [`CompiledProgram::compile`] with explicit optimization switches.
    pub fn compile_with(tp: &TypedProgram, opts: CompileOptions) -> CompiledProgram {
        let _span = adds_obs::trace::span("machine.compile", "machine");
        let layouts = Layouts::from_adds(&tp.adds);
        let mut type_ids = HashMap::new();
        let mut type_layouts = Vec::new();
        for t in tp.adds.types() {
            type_ids.insert(t.name.clone(), type_layouts.len() as u32);
            type_layouts.push(
                layouts
                    .get(&t.name)
                    .expect("layout for every declared type")
                    .clone(),
            );
        }
        let names: HashMap<String, u32> = tp
            .program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        let mut prog = CompiledProgram {
            funcs: Vec::new(),
            names,
            layouts,
            type_layouts,
            accesses: Vec::new(),
            adds: tp.adds.clone(),
            superblocks: Vec::new(),
            loop_blocks: Vec::new(),
            inlined_calls: 0,
        };
        for f in &tp.program.funcs {
            let code = FnCompiler::compile(tp, &mut prog, &type_ids, f);
            prog.funcs.push(code);
        }
        if opts.inline {
            prog.inlined_calls = inline_pass(&mut prog);
        }
        if opts.fuse {
            fuse_pass(&mut prog);
        }
        prog
    }

    /// Id of function `name`, if defined.
    pub fn func_id(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// Name of function `id`, if in range (profile rendering).
    pub fn func_name(&self, id: u32) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.as_str())
    }

    /// Number of compiled functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total bytecode instruction count (diagnostics / benchmarks).
    /// Superblock constituent ops count once — fusion changes dispatch,
    /// not code volume.
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum::<usize>()
            + self.superblocks.iter().map(|b| b.ops.len()).sum::<usize>()
    }

    /// Number of fused superblocks (straight-line runs + loop bodies).
    pub fn superblock_count(&self) -> usize {
        self.superblocks.len()
    }

    /// Call sites spliced into their callers at compile time.
    pub fn inlined_calls(&self) -> u32 {
        self.inlined_calls
    }

    /// `(constituent ops, fuel)` of superblock `id`, for profile
    /// rendering.
    pub fn superblock_info(&self, id: usize) -> Option<(usize, u32)> {
        self.superblocks.get(id).map(|b| (b.ops.len(), b.fuel))
    }
}

/// Per-function lowering state.
struct FnCompiler<'a> {
    tp: &'a TypedProgram,
    prog: &'a mut CompiledProgram,
    type_ids: &'a HashMap<String, u32>,
    vars_ty: &'a HashMap<String, Ty>,
    slots: HashMap<String, Slot>,
    code: Vec<Instr>,
    /// First temp slot currently available (reset per statement).
    temp_next: u32,
    /// Temps below this are pinned (enclosing loop counters).
    temp_floor: u32,
    /// High-water mark → frame size.
    max_slots: u32,
    /// A statement's fuel burn is owed but not yet emitted: the next
    /// instruction absorbs it (Fuel* fused forms) or it flushes as `Fuel`.
    pending_fuel: bool,
}

impl<'a> FnCompiler<'a> {
    fn compile(
        tp: &'a TypedProgram,
        prog: &'a mut CompiledProgram,
        type_ids: &'a HashMap<String, u32>,
        f: &FunDecl,
    ) -> FuncCode {
        static EMPTY: std::sync::OnceLock<HashMap<String, Ty>> = std::sync::OnceLock::new();
        let vars_ty = tp
            .locals
            .get(&f.name)
            .unwrap_or_else(|| EMPTY.get_or_init(HashMap::new));
        // Frame layout: params in order, then remaining locals sorted.
        let mut slots = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            slots.insert(p.name.clone(), i as u32);
        }
        let mut rest: Vec<&String> = vars_ty.keys().filter(|n| !slots.contains_key(*n)).collect();
        rest.sort();
        for n in rest {
            let next = slots.len() as u32;
            slots.insert(n.clone(), next);
        }
        let n_named = slots.len() as u32;
        let mut c = FnCompiler {
            tp,
            prog,
            type_ids,
            vars_ty,
            slots,
            code: Vec::new(),
            temp_next: n_named,
            temp_floor: n_named,
            max_slots: n_named,
            pending_fuel: false,
        };
        c.block(&f.body);
        c.emit(Instr::RetNull);
        FuncCode {
            n_params: f.params.len() as u32,
            frame_size: c.max_slots,
            code: c.code,
        }
    }

    fn temp(&mut self) -> Slot {
        let s = self.temp_next;
        self.temp_next += 1;
        self.max_slots = self.max_slots.max(self.temp_next);
        s
    }

    fn reset_temps(&mut self) {
        self.temp_next = self.temp_floor;
    }

    /// Emit one instruction, absorbing a pending statement-fuel burn into
    /// the fused `Fuel*` forms where one exists.
    fn emit(&mut self, i: Instr) {
        if self.pending_fuel {
            self.pending_fuel = false;
            match i {
                Instr::Load {
                    dst,
                    base,
                    off,
                    access,
                } => {
                    self.code.push(Instr::FuelLoad {
                        dst,
                        base,
                        off,
                        access,
                    });
                    return;
                }
                Instr::Copy { dst, src } => {
                    self.code.push(Instr::FuelCopy { dst, src });
                    return;
                }
                Instr::Const { dst, v } => {
                    self.code.push(Instr::FuelConst { dst, v });
                    return;
                }
                _ => self.code.push(Instr::Fuel),
            }
        }
        self.code.push(i);
    }

    fn flush_fuel(&mut self) {
        if self.pending_fuel {
            self.pending_fuel = false;
            self.code.push(Instr::Fuel);
        }
    }

    /// Current label (flushes pending fuel first — a fuel burn may never
    /// move across a jump target).
    fn here(&mut self) -> u32 {
        self.flush_fuel();
        self.code.len() as u32
    }

    /// Emit a placeholder jump to be patched later; returns its index.
    fn jump_hole(&mut self, i: Instr) -> usize {
        self.emit(i);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpCmpFalse { target: t, .. }
            | Instr::JumpCmpKFalse { target: t, .. }
            | Instr::ForEnter { exit: t, .. }
            | Instr::ParFor { body_end: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Literal value of a constant expression, for immediate operands.
    fn literal(e: &Expr) -> Option<Value> {
        match e {
            Expr::Int(v, _) => Some(Value::Int(*v)),
            Expr::Real(v, _) => Some(Value::Real(*v)),
            Expr::Bool(b, _) => Some(Value::Bool(*b)),
            Expr::Null(_) => Some(Value::Null),
            _ => None,
        }
    }

    /// A plain frame-slot expression: a non-`PEs` variable (reading it
    /// emits no code and charges nothing).
    fn is_pure_slot(e: &Expr) -> bool {
        matches!(e, Expr::Var(v, _) if v != PES_CONST)
    }

    /// Emit a condition head — the `branch` cycle charge plus a jump taken
    /// when `cond` is false — fusing comparisons (and the branch charge,
    /// when the operands need no evaluation code) into one instruction.
    /// Returns the patch hole.
    fn cond_jump_hole(&mut self, cond: &Expr) -> usize {
        if let Expr::Binary { op, lhs, rhs, .. } = cond {
            if op.is_comparison() {
                // Charge-inside fusion is only valid when evaluating the
                // operands emits no code (the interpreter charges the
                // branch before evaluating the condition).
                let fuse_branch = Self::is_pure_slot(lhs)
                    && (Self::literal(rhs).is_some() || Self::is_pure_slot(rhs));
                if !fuse_branch {
                    self.emit(Instr::Branch);
                }
                let l = self.operand(lhs);
                return match Self::literal(rhs) {
                    Some(k) => self.jump_hole(Instr::JumpCmpKFalse {
                        op: *op,
                        lhs: l,
                        k,
                        branch: fuse_branch,
                        target: 0,
                    }),
                    None => {
                        let r = self.operand(rhs);
                        self.jump_hole(Instr::JumpCmpFalse {
                            op: *op,
                            lhs: l,
                            rhs: r,
                            branch: fuse_branch,
                            target: 0,
                        })
                    }
                };
            }
        }
        let fuse_branch = Self::is_pure_slot(cond);
        if !fuse_branch {
            self.emit(Instr::Branch);
        }
        let c = self.operand(cond);
        self.jump_hole(Instr::JumpIfFalse {
            cond: c,
            branch: fuse_branch,
            target: 0,
        })
    }

    // ------------------------------------------------------------ statements

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.reset_temps();
        self.pending_fuel = true;
        match s {
            Stmt::VarDecl { name, init, .. } => {
                let dst = self.slots[name.as_str()];
                match init {
                    Some(e) => self.expr_to(e, dst),
                    None => self.emit(Instr::Const {
                        dst,
                        v: Value::Null,
                    }),
                }
            }
            Stmt::Assign { lhs, rhs, .. } => self.assign(lhs, rhs),
            Stmt::While { cond, body, .. } => {
                let head = self.here();
                self.reset_temps();
                let exit_hole = self.cond_jump_hole(cond);
                self.block(body);
                self.emit(Instr::FuelJump { target: head });
                let exit = self.here();
                self.patch(exit_hole, exit);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let else_hole = self.cond_jump_hole(cond);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    let end_hole = self.jump_hole(Instr::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(else_hole, else_at);
                    self.block(e);
                    let end = self.here();
                    self.patch(end_hole, end);
                } else {
                    let end = self.here();
                    self.patch(else_hole, end);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                parallel,
                ..
            } => {
                let v = self.slots[var.as_str()];
                let t_i = self.temp();
                let t_hi = self.temp();
                self.expr_to(from, t_i);
                self.emit(Instr::IntCheck { slot: t_i });
                self.expr_to(to, t_hi);
                self.emit(Instr::IntCheck { slot: t_hi });
                if *parallel {
                    let hole = self.jump_hole(Instr::ParFor {
                        var: v,
                        lo: t_i,
                        hi: t_hi,
                        body_end: 0,
                    });
                    self.block(body);
                    self.emit(Instr::IterEnd);
                    let end = self.here();
                    self.patch(hole, end);
                } else if let Some((ptr, off, access)) = self.chase_body(var, body) {
                    self.emit(Instr::ChaseLoop {
                        k: v,
                        i: t_i,
                        hi: t_hi,
                        ptr,
                        off,
                        access,
                    });
                } else {
                    // Pin the counters for the duration of the body.
                    let old_floor = self.temp_floor;
                    self.temp_floor = t_hi + 1;
                    let enter_hole = self.jump_hole(Instr::ForEnter {
                        i: t_i,
                        hi: t_hi,
                        exit: 0,
                    });
                    let head = self.here();
                    self.emit(Instr::ForHead { var: v, i: t_i });
                    self.block(body);
                    // ForNext burns the iteration's trailing fuel itself.
                    self.emit(Instr::ForNext {
                        i: t_i,
                        hi: t_hi,
                        head,
                    });
                    let exit = self.here();
                    self.patch(enter_hole, exit);
                    self.temp_floor = old_floor;
                }
            }
            Stmt::Return { value, .. } => match value {
                Some(e) => {
                    let t = self.operand(e);
                    self.emit(Instr::Ret { src: t });
                }
                None => self.emit(Instr::RetNull),
            },
            Stmt::Call(c) => {
                let dst = self.temp();
                self.call_to(c, dst);
            }
        }
        // A statement that emitted no instructions (e.g. the self-copy
        // `x = x;`) still owes its fuel burn.
        self.flush_fuel();
    }

    /// Recognize the self-chase loop body `{ v = v->f; }` (no index, `v`
    /// distinct from the loop variable); returns the pointer slot and
    /// resolved access.
    fn chase_body(&mut self, loop_var: &str, body: &Block) -> Option<(Slot, u32, u32)> {
        let [Stmt::Assign { lhs, rhs, .. }] = body.stmts.as_slice() else {
            return None;
        };
        if !lhs.is_var() || lhs.base == loop_var || lhs.base == PES_CONST {
            return None;
        }
        let Expr::Field {
            base,
            field,
            index: None,
            ..
        } = rhs
        else {
            return None;
        };
        if !matches!(&**base, Expr::Var(v, _) if *v == lhs.base) {
            return None;
        }
        let rec = self.var_record_ty(&lhs.base)?;
        let (access, off, _, _) = self.access_info(Some(&rec), field);
        Some((self.slots[lhs.base.as_str()], off, access))
    }

    /// Recognize `v->f = v->f op x` with `x` a literal or plain variable;
    /// emits the fused RMW and returns true.
    fn try_rmw(&mut self, lhs: &LValue, rhs: &Expr) -> bool {
        let Some((base_var, field)) = lhs.as_single_field() else {
            return false;
        };
        if lhs.path[0].index.is_some() || base_var == PES_CONST {
            return false;
        }
        let Expr::Binary {
            op,
            lhs: rl,
            rhs: rr,
            ..
        } = rhs
        else {
            return false;
        };
        let reads_same_field = matches!(
            &**rl,
            Expr::Field { base, field: f2, index: None, .. }
                if *f2 == field && matches!(&**base, Expr::Var(v, _) if v == base_var)
        );
        if !reads_same_field {
            return false;
        }
        let Some(rec) = self.var_record_ty(base_var) else {
            return false;
        };
        let k = Self::literal(rr);
        if k.is_none() && !Self::is_pure_slot(rr) {
            return false;
        }
        let (access, off, _, is_ptr) = self.access_info(Some(&rec), field);
        let base = self.slots[base_var];
        // Always statement-initial: the instruction burns the fuel itself.
        debug_assert!(self.pending_fuel);
        self.pending_fuel = false;
        match k {
            Some(k) => self.code.push(Instr::FieldRmwK {
                op: *op,
                base,
                k,
                off,
                is_ptr,
                access,
            }),
            None => {
                let src = self.operand(rr);
                self.code.push(Instr::FieldRmw {
                    op: *op,
                    base,
                    src,
                    off,
                    is_ptr,
                    access,
                });
            }
        }
        true
    }

    fn assign(&mut self, lhs: &LValue, rhs: &Expr) {
        if lhs.is_var() {
            let dst = self.slots[lhs.base.as_str()];
            self.expr_to(rhs, dst);
            return;
        }
        if self.try_rmw(lhs, rhs) {
            return;
        }
        // RHS first, then walk to the last node — interpreter order.
        let src = self.operand(rhs);
        let mut cur = self.read_var(&lhs.base);
        let mut rec = self.var_record_ty(&lhs.base);
        for acc in &lhs.path[..lhs.path.len() - 1] {
            let (access, off, len, _) = self.access_info(rec.as_deref(), &acc.field);
            rec = rec
                .as_deref()
                .and_then(|r| self.tp.field_ty(r, &acc.field))
                .and_then(|t| t.pointee().map(str::to_string));
            let dst = self.temp();
            match &acc.index {
                Some(e) => {
                    let idx = self.operand(e);
                    self.emit(Instr::LoadIdx {
                        dst,
                        base: cur,
                        idx,
                        off,
                        len,
                        access,
                    });
                }
                None => self.emit(Instr::Load {
                    dst,
                    base: cur,
                    off,
                    access,
                }),
            }
            cur = dst;
        }
        let last = lhs.path.last().expect("field lvalue");
        let (access, off, len, is_ptr) = self.access_info(rec.as_deref(), &last.field);
        match &last.index {
            Some(e) => {
                let idx = self.operand(e);
                self.emit(Instr::StoreIdx {
                    base: cur,
                    idx,
                    src,
                    off,
                    len,
                    is_ptr,
                    access,
                });
            }
            None => self.emit(Instr::Store {
                base: cur,
                src,
                off,
                is_ptr,
                access,
            }),
        }
    }

    // ----------------------------------------------------------- expressions

    /// Slot holding the value of `e`: variables in place, everything else
    /// materialized into a fresh temp.
    fn operand(&mut self, e: &Expr) -> Slot {
        if let Expr::Var(v, _) = e {
            if v != PES_CONST {
                return self.read_var(v);
            }
        }
        let t = self.temp();
        self.expr_to(e, t);
        t
    }

    /// Evaluate `e` into `dst`. Only the final producing instruction writes
    /// `dst`; subexpression results go to fresh temps, so `dst` may alias a
    /// variable read by the expression.
    fn expr_to(&mut self, e: &Expr, dst: Slot) {
        match e {
            Expr::Int(v, _) => self.emit(Instr::Const {
                dst,
                v: Value::Int(*v),
            }),
            Expr::Real(v, _) => self.emit(Instr::Const {
                dst,
                v: Value::Real(*v),
            }),
            Expr::Bool(b, _) => self.emit(Instr::Const {
                dst,
                v: Value::Bool(*b),
            }),
            Expr::Null(_) => self.emit(Instr::Const {
                dst,
                v: Value::Null,
            }),
            Expr::Var(v, _) => {
                if v == PES_CONST {
                    self.emit(Instr::Pes { dst });
                } else {
                    let src = self.read_var(v);
                    if src != dst {
                        self.emit(Instr::Copy { dst, src });
                    }
                }
            }
            Expr::New(ty, _) => {
                let id = *self
                    .type_ids
                    .get(ty)
                    .unwrap_or_else(|| panic!("`new` of unknown type `{ty}` after type check"));
                self.emit(Instr::Alloc { dst, ty: id });
            }
            Expr::Field {
                base, field, index, ..
            } => {
                let rec = self.record_ty_of(base);
                let b = self.operand(base);
                let (access, off, len, _) = self.access_info(rec.as_deref(), field);
                match index {
                    Some(i) => {
                        let idx = self.operand(i);
                        self.emit(Instr::LoadIdx {
                            dst,
                            base: b,
                            idx,
                            off,
                            len,
                            access,
                        });
                    }
                    None => self.emit(Instr::Load {
                        dst,
                        base: b,
                        off,
                        access,
                    }),
                }
            }
            Expr::Unary { op, operand, .. } => {
                let src = self.operand(operand);
                self.emit(Instr::Un { op: *op, dst, src });
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.operand(lhs);
                match Self::literal(rhs) {
                    Some(k) => self.emit(Instr::BinK {
                        op: *op,
                        dst,
                        lhs: l,
                        k,
                    }),
                    None => {
                        let r = self.operand(rhs);
                        self.emit(Instr::Bin {
                            op: *op,
                            dst,
                            lhs: l,
                            rhs: r,
                        });
                    }
                }
            }
            Expr::Call(c) => self.call_to(c, dst),
        }
    }

    fn call_to(&mut self, c: &Call, dst: Slot) {
        // Intrinsics shadow user functions, as in the interpreter.
        match c.callee.as_str() {
            "print" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Print { src });
                self.emit(Instr::Const {
                    dst,
                    v: Value::Null,
                });
                return;
            }
            "sqrt" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Sqrt { dst, src });
                return;
            }
            "fabs" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Fabs { dst, src });
                return;
            }
            "abs" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Abs { dst, src });
                return;
            }
            "min" | "max" => {
                let a = self.operand(&c.args[0]);
                let b = self.operand(&c.args[1]);
                self.emit(Instr::MinMax {
                    dst,
                    a,
                    b,
                    is_min: c.callee == "min",
                });
                return;
            }
            "itor" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Itor { dst, src });
                return;
            }
            _ => {}
        }
        let func =
            *self.prog.names.get(&c.callee).unwrap_or_else(|| {
                panic!("call of unknown function `{}` after type check", c.callee)
            });
        // Arguments must land in consecutive temps.
        let args = self.temp_next;
        for _ in 0..c.args.len() {
            self.temp();
        }
        for (k, a) in c.args.iter().enumerate() {
            self.expr_to(a, args + k as u32);
        }
        self.emit(Instr::Call {
            dst,
            func,
            args,
            argc: c.args.len() as u32,
        });
    }

    // -------------------------------------------------------------- resolution

    fn read_var(&mut self, name: &str) -> Slot {
        if name == PES_CONST {
            let t = self.temp();
            self.emit(Instr::Pes { dst: t });
            return t;
        }
        *self
            .slots
            .get(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}` after type check"))
    }

    /// Record type a pointer variable points to, if statically known.
    fn var_record_ty(&self, name: &str) -> Option<String> {
        if name == PES_CONST {
            return None;
        }
        self.vars_ty
            .get(name)
            .and_then(|t| t.pointee().map(str::to_string))
    }

    /// Record type `e` points to, if statically known (it always is for
    /// type-checked programs, except for literal-NULL bases).
    fn record_ty_of(&self, e: &Expr) -> Option<String> {
        self.static_ty(e)
            .and_then(|t| t.pointee().map(str::to_string))
    }

    fn static_ty(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(..) => Some(Ty::Int),
            Expr::Real(..) => Some(Ty::Real),
            Expr::Bool(..) => Some(Ty::Bool),
            Expr::Null(_) => None,
            Expr::New(t, _) => Some(Ty::Ptr(t.clone())),
            Expr::Var(v, _) => {
                if v == PES_CONST {
                    Some(Ty::Int)
                } else {
                    self.vars_ty.get(v).cloned()
                }
            }
            Expr::Field { base, field, .. } => {
                let bt = self.static_ty(base)?;
                self.tp.field_ty(bt.pointee()?, field)
            }
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => self.static_ty(operand),
                UnOp::Not => Some(Ty::Bool),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() || op.is_logical() {
                    Some(Ty::Bool)
                } else {
                    match (self.static_ty(lhs), self.static_ty(rhs)) {
                        (Some(Ty::Real), _) | (_, Some(Ty::Real)) => Some(Ty::Real),
                        _ => Some(Ty::Int),
                    }
                }
            }
            Expr::Call(c) => match c.callee.as_str() {
                "sqrt" | "fabs" | "min" | "max" | "itor" => Some(Ty::Real),
                "abs" => Some(Ty::Int),
                "print" => None,
                _ => self.tp.sigs.get(&c.callee).and_then(|s| s.ret.clone()),
            },
        }
    }

    /// Intern a resolved field access; returns `(id, offset, len, is_ptr)`
    /// so the hot numeric facts can be embedded in the instruction (the
    /// interned entry serves error messages and shape checks). A `None`
    /// record type can only arise from a literal-NULL base, whose access
    /// never reaches the offset at runtime (speculative NULL reads return
    /// before offset use, and lvalues always root at a typed variable).
    fn access_info(&mut self, rec: Option<&str>, field: &str) -> (u32, u32, u32, bool) {
        let (offset, len, is_ptr) = match rec.and_then(|r| self.prog.layouts.get(r)) {
            Some(layout) => {
                let slot = layout.slot(field).unwrap_or_else(|| {
                    panic!("field `{field}` missing from layout after type check")
                });
                (slot.offset as u32, slot.len as u32, slot.is_ptr)
            }
            None => (0, 1, false),
        };
        let id = self.prog.accesses.len() as u32;
        self.prog.accesses.push(field.to_string());
        (id, offset, len, is_ptr)
    }
}

// ------------------------------------------------------------------ inlining

/// Ceiling on callee size for inlining, in instructions. The strip-mined
/// per-iteration helpers are well under this; it exists to keep code
/// growth bounded on hand-written programs.
const INLINE_MAX_CODE: usize = 64;

/// A callee is inlinable when it is a small leaf: no calls (so one pass
/// suffices and recursion is impossible) and no parallel regions (an
/// inlined `IterEnd` would terminate the caller's iteration). `Ret` /
/// `RetNull` are handled by expansion at the splice site.
fn inlinable(fc: &FuncCode) -> bool {
    fc.code.len() <= INLINE_MAX_CODE
        && fc.code.iter().all(|i| {
            !matches!(
                i,
                Instr::Call { .. } | Instr::ParFor { .. } | Instr::IterEnd
            )
        })
}

/// Splice inlinable callee bodies into every call site. Callee params
/// alias the caller's argument temps (already populated by the call
/// sequence); callee locals/temps live in a per-callee extension region
/// appended to the caller frame. Returns the number of sites inlined.
/// Callees stay in the function table — host code may still call them.
fn inline_pass(prog: &mut CompiledProgram) -> u32 {
    let snapshot = prog.funcs.clone();
    let ok: Vec<bool> = snapshot.iter().map(inlinable).collect();
    let eligible = |i: &Instr, fi: usize| -> bool {
        matches!(i, Instr::Call { func, argc, .. }
            if ok[*func as usize]
                && *func as usize != fi
                && *argc == snapshot[*func as usize].n_params)
    };
    let mut count = 0;
    for fi in 0..prog.funcs.len() {
        if prog.funcs[fi].code.iter().any(|i| eligible(i, fi)) {
            count += inline_into(&mut prog.funcs[fi], fi, &snapshot, &ok);
        }
    }
    count
}

/// Rewrite one function, splicing eligible callee bodies in place of
/// their `Call` instructions.
fn inline_into(fc: &mut FuncCode, fi: usize, snapshot: &[FuncCode], ok: &[bool]) -> u32 {
    let old = std::mem::take(&mut fc.code);
    let mut out: Vec<Instr> = Vec::with_capacity(old.len());
    // Old-pc → new-pc map for the caller's own jump targets (the splice
    // shifts everything after it).
    let mut pos = vec![0u32; old.len() + 1];
    let mut fixups: Vec<usize> = Vec::new();
    // Each distinct callee gets one extension region in the caller frame;
    // execution within a frame is sequential, so sites never overlap.
    let mut region: HashMap<u32, u32> = HashMap::new();
    let mut frame_size = fc.frame_size;
    let mut count = 0;
    for (pc, instr) in old.iter().enumerate() {
        pos[pc] = out.len() as u32;
        match instr {
            Instr::Call {
                dst,
                func,
                args,
                argc,
            } if ok[*func as usize]
                && *func as usize != fi
                && *argc == snapshot[*func as usize].n_params =>
            {
                let callee = &snapshot[*func as usize];
                let base = *region.entry(*func).or_insert_with(|| {
                    let b = frame_size;
                    frame_size += callee.frame_size - callee.n_params;
                    b
                });
                let n_params = callee.n_params;
                let map = |s: Slot| -> Slot {
                    if s < n_params {
                        *args + s
                    } else {
                        base + (s - n_params)
                    }
                };
                // Frame-push stand-in: the call charge and call/depth
                // counters, with no frame traffic.
                out.push(Instr::InlineEnter);
                // Two-pass splice: compute the callee's new positions
                // first (a `return` before the end widens to a result
                // move plus a jump to the shared join point).
                let clen = callee.code.len();
                let mut cpos = vec![0u32; clen];
                let mut at = out.len() as u32;
                for (j, ci) in callee.code.iter().enumerate() {
                    cpos[j] = at;
                    let wide = matches!(ci, Instr::Ret { .. } | Instr::RetNull) && j + 1 != clen;
                    at += if wide { 2 } else { 1 };
                }
                let join = at;
                for (j, ci) in callee.code.iter().enumerate() {
                    match ci {
                        Instr::Ret { src } => {
                            out.push(Instr::Copy {
                                dst: *dst,
                                src: map(*src),
                            });
                            if j + 1 != clen {
                                out.push(Instr::Jump { target: join });
                            }
                        }
                        Instr::RetNull => {
                            out.push(Instr::Const {
                                dst: *dst,
                                v: Value::Null,
                            });
                            if j + 1 != clen {
                                out.push(Instr::Jump { target: join });
                            }
                        }
                        ci => {
                            let mut ni = remap_slots(ci, &map);
                            retarget(&mut ni, |t| cpos[t as usize]);
                            out.push(ni);
                        }
                    }
                }
                debug_assert_eq!(out.len() as u32, join);
                out.push(Instr::InlineRet);
                count += 1;
            }
            i => {
                if carries_target(i) {
                    fixups.push(out.len());
                }
                out.push(i.clone());
            }
        }
    }
    pos[old.len()] = out.len() as u32;
    for idx in fixups {
        retarget(&mut out[idx], |t| pos[t as usize]);
    }
    fc.code = out;
    fc.frame_size = frame_size;
    count
}

/// Does this instruction carry a code target that must move when
/// instructions shift?
fn carries_target(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Jump { .. }
            | Instr::JumpIfFalse { .. }
            | Instr::JumpCmpFalse { .. }
            | Instr::JumpCmpKFalse { .. }
            | Instr::FuelJump { .. }
            | Instr::ForEnter { .. }
            | Instr::ForNext { .. }
            | Instr::ParFor { .. }
    )
}

/// Apply `f` to every code target `i` carries.
fn retarget(i: &mut Instr, f: impl Fn(u32) -> u32) {
    match i {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpCmpFalse { target, .. }
        | Instr::JumpCmpKFalse { target, .. }
        | Instr::FuelJump { target } => *target = f(*target),
        Instr::ForEnter { exit, .. } => *exit = f(*exit),
        Instr::ForNext { head, .. } => *head = f(*head),
        Instr::ParFor { body_end, .. } => *body_end = f(*body_end),
        _ => {}
    }
}

/// Clone `i` with every frame-slot operand passed through `map`.
fn remap_slots(i: &Instr, map: &impl Fn(Slot) -> Slot) -> Instr {
    let mut n = i.clone();
    match &mut n {
        Instr::Const { dst, .. }
        | Instr::FuelConst { dst, .. }
        | Instr::Pes { dst }
        | Instr::Alloc { dst, .. } => *dst = map(*dst),
        Instr::Copy { dst, src }
        | Instr::FuelCopy { dst, src }
        | Instr::Un { dst, src, .. }
        | Instr::Sqrt { dst, src }
        | Instr::Fabs { dst, src }
        | Instr::Abs { dst, src }
        | Instr::Itor { dst, src } => {
            *dst = map(*dst);
            *src = map(*src);
        }
        Instr::Load { dst, base, .. } | Instr::FuelLoad { dst, base, .. } => {
            *dst = map(*dst);
            *base = map(*base);
        }
        Instr::LoadIdx { dst, base, idx, .. } => {
            *dst = map(*dst);
            *base = map(*base);
            *idx = map(*idx);
        }
        Instr::Store { base, src, .. } | Instr::FieldRmw { base, src, .. } => {
            *base = map(*base);
            *src = map(*src);
        }
        Instr::StoreIdx { base, idx, src, .. } => {
            *base = map(*base);
            *idx = map(*idx);
            *src = map(*src);
        }
        Instr::FieldRmwK { base, .. } => *base = map(*base),
        Instr::GuardRmw { cond, src, .. } => {
            *cond = map(*cond);
            *src = map(*src);
        }
        Instr::Bin { dst, lhs, rhs, .. } => {
            *dst = map(*dst);
            *lhs = map(*lhs);
            *rhs = map(*rhs);
        }
        Instr::BinK { dst, lhs, .. } => {
            *dst = map(*dst);
            *lhs = map(*lhs);
        }
        Instr::MinMax { dst, a, b, .. } => {
            *dst = map(*dst);
            *a = map(*a);
            *b = map(*b);
        }
        Instr::Print { src } => *src = map(*src),
        Instr::Call { dst, args, .. } => {
            *dst = map(*dst);
            *args = map(*args);
        }
        Instr::Ret { src } => *src = map(*src),
        Instr::JumpIfFalse { cond, .. } => *cond = map(*cond),
        Instr::JumpCmpFalse { lhs, rhs, .. } => {
            *lhs = map(*lhs);
            *rhs = map(*rhs);
        }
        Instr::JumpCmpKFalse { lhs, .. } => *lhs = map(*lhs),
        Instr::IntCheck { slot } => *slot = map(*slot),
        Instr::ChaseLoop { k, i, hi, ptr, .. } => {
            *k = map(*k);
            *i = map(*i);
            *hi = map(*hi);
            *ptr = map(*ptr);
        }
        Instr::ForEnter { i, hi, .. } | Instr::ForNext { i, hi, .. } => {
            *i = map(*i);
            *hi = map(*hi);
        }
        Instr::ForHead { var, i } => {
            *var = map(*var);
            *i = map(*i);
        }
        Instr::ParFor { var, lo, hi, .. } => {
            *var = map(*var);
            *lo = map(*lo);
            *hi = map(*hi);
        }
        Instr::RetNull
        | Instr::Jump { .. }
        | Instr::FuelJump { .. }
        | Instr::Branch
        | Instr::Fuel
        | Instr::IterEnd
        | Instr::InlineEnter
        | Instr::InlineRet => {}
        Instr::Super { .. } | Instr::SuperLoop { .. } => {
            unreachable!("fusion runs after inlining")
        }
    }
    n
}

// ------------------------------------------------------------------- fusion

/// Static accounting of one instruction inside a superblock: `(fuel,
/// charge)` for its data-independent costs, or `None` when it cannot be
/// fused (control flow, calls, dynamic fuel). `Un`/`Bin`/`BinK` fuse with
/// an empty static charge — their alu-vs-fp charge depends on operand
/// values and stays inside the op.
fn fusion_parts(i: &Instr) -> Option<(u32, Charge)> {
    let mut c = Charge::default();
    let fuel = match i {
        Instr::Const { .. }
        | Instr::Copy { .. }
        | Instr::Pes { .. }
        | Instr::Print { .. }
        | Instr::IntCheck { .. }
        | Instr::Un { .. }
        | Instr::Bin { .. }
        | Instr::BinK { .. }
        | Instr::InlineRet => 0,
        Instr::Fuel | Instr::FuelCopy { .. } | Instr::FuelConst { .. } => 1,
        Instr::Load { .. } | Instr::LoadIdx { .. } => {
            c.load += 1;
            0
        }
        Instr::FuelLoad { .. } => {
            c.load += 1;
            1
        }
        Instr::Store { .. } | Instr::StoreIdx { .. } => {
            c.store += 1;
            0
        }
        Instr::FieldRmw { .. } | Instr::FieldRmwK { .. } => {
            c.load += 1;
            c.store += 1;
            1
        }
        Instr::Sqrt { .. } => {
            c.sqrt += 1;
            0
        }
        Instr::Fabs { .. } | Instr::MinMax { .. } => {
            c.fp += 1;
            0
        }
        Instr::Abs { .. } | Instr::Itor { .. } => {
            c.alu += 1;
            0
        }
        Instr::Alloc { .. } => {
            c.alloc += 1;
            0
        }
        Instr::Branch => {
            c.branch += 1;
            0
        }
        Instr::InlineEnter => {
            c.call += 1;
            0
        }
        _ => return None,
    };
    Some((fuel, c))
}

/// Aggregate `ops` into a new superblock; returns its id. An `IntCheck`
/// directly after a constant-int write to the same slot is provably true
/// and dropped (it charges nothing, so the block's accounting is
/// unchanged).
fn make_superblock(ops: &[Instr], sbs: &mut Vec<SuperBlock>) -> u32 {
    let ops: Vec<Instr> = ops
        .iter()
        .enumerate()
        .filter(|(j, op)| {
            if let Instr::IntCheck { slot } = op {
                if *j > 0 {
                    if let Instr::Const {
                        dst,
                        v: Value::Int(_),
                    }
                    | Instr::FuelConst {
                        dst,
                        v: Value::Int(_),
                    } = &ops[j - 1]
                    {
                        return dst != slot;
                    }
                }
            }
            true
        })
        .map(|(_, op)| op.clone())
        .collect();
    let ops = &ops[..];
    let mut fuel = 0u32;
    let mut charge = Charge::default();
    for op in ops {
        let (f, c) = fusion_parts(op).expect("only fusible ops reach a superblock");
        fuel += f;
        charge.alu += c.alu;
        charge.fp += c.fp;
        charge.sqrt += c.sqrt;
        charge.load += c.load;
        charge.store += c.store;
        charge.branch += c.branch;
        charge.call += c.call;
        charge.alloc += c.alloc;
    }
    sbs.push(SuperBlock {
        fuel,
        charge,
        ops: ops.to_vec().into_boxed_slice(),
    });
    (sbs.len() - 1) as u32
}

/// Fuse every function's straight-line runs and single-block `while`
/// loops.
fn fuse_pass(prog: &mut CompiledProgram) {
    let mut sbs = Vec::new();
    let mut lps = Vec::new();
    for fc in &mut prog.funcs {
        let code = std::mem::take(&mut fc.code);
        fc.code = fuse_function(code, &mut sbs, &mut lps);
    }
    prog.superblocks = sbs;
    prog.loop_blocks = lps;
}

/// Rewrite one function: whole eligible `while` loops become `SuperLoop`,
/// remaining maximal straight-line fusible runs of length ≥ 2 become
/// `Super`. Blocks never span a jump target (no entry into the middle of
/// a fused region).
fn fuse_function(
    code: Vec<Instr>,
    sbs: &mut Vec<SuperBlock>,
    lps: &mut Vec<LoopBlock>,
) -> Vec<Instr> {
    let n = code.len();
    // Every pc control flow can enter other than by falling through.
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    for (pc, i) in code.iter().enumerate() {
        match i {
            Instr::Jump { target }
            | Instr::JumpIfFalse { target, .. }
            | Instr::JumpCmpFalse { target, .. }
            | Instr::JumpCmpKFalse { target, .. }
            | Instr::FuelJump { target } => leader[*target as usize] = true,
            Instr::ForEnter { exit, .. } => leader[*exit as usize] = true,
            Instr::ForNext { head, .. } => leader[*head as usize] = true,
            Instr::ParFor { body_end, .. } => {
                leader[*body_end as usize] = true;
                // The parfor body is entered directly per iteration.
                leader[pc + 1] = true;
            }
            _ => {}
        }
    }
    // Whole-loop candidates: a fused head at H jumping past a FuelJump
    // backedge at B, with an all-fusible single-block body in between.
    let mut loop_at: HashMap<usize, (usize, LoopHead)> = HashMap::new();
    for (pc, i) in code.iter().enumerate() {
        let Instr::FuelJump { target } = i else {
            continue;
        };
        let h = *target as usize;
        if h >= pc || pc == h + 1 {
            continue; // forward jump, or empty body
        }
        let b = pc;
        let head = match &code[h] {
            Instr::JumpIfFalse {
                cond,
                branch: true,
                target,
            } if *target as usize == b + 1 => LoopHead::Truthy { cond: *cond },
            Instr::JumpCmpFalse {
                op,
                lhs,
                rhs,
                branch: true,
                target,
            } if *target as usize == b + 1 => LoopHead::Cmp {
                op: *op,
                lhs: *lhs,
                rhs: *rhs,
            },
            Instr::JumpCmpKFalse {
                op,
                lhs,
                k,
                branch: true,
                target,
            } if *target as usize == b + 1 => LoopHead::CmpK {
                op: *op,
                lhs: *lhs,
                k: *k,
            },
            _ => continue,
        };
        if (h + 1..=b).any(|p| leader[p]) {
            continue;
        }
        if code[h + 1..b].iter().any(|op| fusion_parts(op).is_none()) {
            continue;
        }
        loop_at.insert(h, (b, head));
    }

    let mut out: Vec<Instr> = Vec::with_capacity(n);
    let mut pos = vec![0u32; n + 1];
    let mut fixups: Vec<usize> = Vec::new();
    let mut loop_fix: Vec<(usize, u32)> = Vec::new();
    let mut pc = 0;
    while pc < n {
        if let Some(&(b, head)) = loop_at.get(&pc) {
            let at = out.len() as u32;
            pos[pc..=b].fill(at);
            let body = make_superblock(&code[pc + 1..b], sbs);
            loop_fix.push((lps.len(), (b + 1) as u32));
            out.push(Instr::SuperLoop {
                lp: lps.len() as u32,
            });
            lps.push(LoopBlock {
                head,
                body,
                exit: 0,
            });
            pc = b + 1;
            continue;
        }
        // The strip-mined per-node guard `fuel; if (p != NULL) { p->f =
        // p->f op x }` — one dispatch instead of three. Only when control
        // cannot enter the middle of the pattern.
        if pc + 2 < n && !leader[pc + 1] && !leader[pc + 2] {
            if let (
                Instr::Fuel,
                Instr::JumpCmpKFalse {
                    op: BinOp::Ne,
                    lhs,
                    k: Value::Null,
                    branch: true,
                    target,
                },
                Instr::FieldRmw {
                    op,
                    base,
                    src,
                    off,
                    is_ptr,
                    access,
                },
            ) = (&code[pc], &code[pc + 1], &code[pc + 2])
            {
                if *target as usize == pc + 3 && base == lhs {
                    let at = out.len() as u32;
                    pos[pc..pc + 3].fill(at);
                    out.push(Instr::GuardRmw {
                        op: *op,
                        cond: *base,
                        src: *src,
                        off: *off,
                        is_ptr: *is_ptr,
                        access: *access,
                    });
                    pc += 3;
                    continue;
                }
            }
        }
        // Maximal straight-line fusible run from pc (stopping at any
        // later jump target).
        let mut end = pc;
        while end < n && fusion_parts(&code[end]).is_some() && (end == pc || !leader[end]) {
            end += 1;
        }
        if end - pc >= 2 {
            let at = out.len() as u32;
            pos[pc..end].fill(at);
            let sb = make_superblock(&code[pc..end], sbs);
            out.push(Instr::Super { sb });
            pc = end;
            continue;
        }
        pos[pc] = out.len() as u32;
        let i = code[pc].clone();
        if carries_target(&i) {
            fixups.push(out.len());
        }
        out.push(i);
        pc += 1;
    }
    pos[n] = out.len() as u32;
    for idx in fixups {
        retarget(&mut out[idx], |t| pos[t as usize]);
    }
    for (lp, old_exit) in loop_fix {
        lps[lp].exit = pos[old_exit as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn compiled(src: &str, opts: CompileOptions) -> CompiledProgram {
        CompiledProgram::compile_with(&check_source(src).unwrap(), opts)
    }

    #[test]
    fn sequential_list_loops_fuse_to_superloops() {
        let p = compiled(programs::LIST_SCALE_ADDS, CompileOptions::default());
        assert!(!p.loop_blocks.is_empty(), "chase loop fused");
        let body = &p.superblocks[p.loop_blocks[0].body as usize];
        // `p->coef = p->coef * c; p = p->next;` — two statements of fuel,
        // one RMW (load+store) plus one chase load.
        assert_eq!(body.fuel, 2);
        assert_eq!((body.charge.load, body.charge.store), (2, 1));
        let sum = compiled(programs::LIST_SUM, CompileOptions::default());
        assert!(!sum.loop_blocks.is_empty());
    }

    #[test]
    fn optimization_switches_gate_the_passes() {
        let off = CompileOptions {
            inline: false,
            fuse: false,
        };
        let p = compiled(programs::LIST_SCALE_ADDS, off);
        assert_eq!(p.superblock_count(), 0);
        assert_eq!(p.inlined_calls(), 0);
        assert!(p.loop_blocks.is_empty());
    }

    #[test]
    fn strip_mined_helpers_inline_into_the_parallel_driver() {
        let src = adds_core::parallelize_to_source(programs::LIST_SCALE_ADDS).unwrap();
        let p = compiled(&src, CompileOptions::default());
        assert!(p.inlined_calls() >= 1, "helper call spliced");
        // The helper stays callable (host entry points survive).
        assert!(p.func_count() >= 2);
        // No Call instruction remains in the driver's parfor body; the
        // spliced body is marked by the bookkeeping pair.
        let driver = p.func_id("scale").unwrap();
        let code = &p.funcs[driver as usize].code;
        let has = |f: &dyn Fn(&Instr) -> bool| code.iter().any(f);
        assert!(
            has(&|i| matches!(i, Instr::Super { .. })),
            "driver gained superblocks"
        );
        let all_blocks = code
            .iter()
            .chain(p.superblocks.iter().flat_map(|b| b.ops.iter()));
        let mut enters = 0;
        for i in all_blocks {
            if matches!(i, Instr::InlineEnter) {
                enters += 1;
            }
            assert!(
                !matches!(i, Instr::Call { .. }),
                "no call remains in the driver"
            );
        }
        assert!(enters >= 1);
    }

    #[test]
    fn fused_programs_shrink_dispatch_but_keep_ops() {
        let base = compiled(
            programs::BARNES_HUT,
            CompileOptions {
                inline: false,
                fuse: false,
            },
        );
        let fused = compiled(programs::BARNES_HUT, CompileOptions::default());
        let dispatch: usize = fused.funcs.iter().map(|f| f.code.len()).sum();
        assert!(
            dispatch < base.code_len(),
            "fusion shrinks the dispatch stream ({dispatch} vs {})",
            base.code_len()
        );
        assert!(fused.superblock_count() > 0);
    }
}
