//! Lowering of typed IL programs to the slot-resolved bytecode the
//! [`crate::vm::Vm`] executes.
//!
//! The compile pass resolves, once, everything the tree-walking
//! interpreter re-derives on every access:
//!
//! * **Variables → frame slots.** Each function gets a flat frame layout —
//!   parameters first, then named locals (sorted for determinism), then
//!   expression temporaries — so frames become plain `Vec<Value>` windows
//!   instead of `HashMap<String, Value>`.
//! * **Field accesses → record offsets.** The static type of every field
//!   access base is known (the type checker records per-function variable
//!   types), so `p->coef` compiles to a numeric offset; only array accesses
//!   keep a runtime bounds check.
//! * **Functions → ids.** Calls carry a function index; intrinsics become
//!   dedicated opcodes.
//!
//! The bytecode preserves the interpreter's observable semantics exactly:
//! cycle charges are emitted as explicit `Branch` points or
//! charged inside the data opcodes in the same order the interpreter
//! charges them, and every statement begins with a `Fuel` instruction so
//! statement counts and out-of-fuel points agree. The one documented
//! divergence: reading a local before its `var` declaration has executed
//! yields NULL in the VM where the interpreter raises "unbound variable"
//! (well-typed programs cannot observe this without contorted
//! declaration-after-use blocks, which the corpus never contains).
//!
//! ## Opcode inventory
//!
//! The instruction set is deliberately small — five families plus the
//! fused forms below:
//!
//! * **data movement** — `Const`, `Copy`, `Pes`;
//! * **heap traffic** — `Alloc`, `Load`, `LoadIdx`, `Store`, `StoreIdx`
//!   (offsets resolved at compile time; only indexed accesses carry a
//!   bounds check);
//! * **arithmetic** — `Un`, `Bin`, `BinK`, and the intrinsics `Sqrt`,
//!   `Fabs`, `Abs`, `MinMax`, `Itor`;
//! * **control** — `Call`, `Ret`, `RetNull`, `Jump`, `JumpIfFalse`,
//!   `Branch` (cycle charge), `IntCheck`, the counted-loop triple
//!   `ForEnter` / `ForHead` / `ForNext`, and the parallel-region pair
//!   `ParFor` / `IterEnd`;
//! * **accounting & I/O** — `Fuel` (one statement of budget), `Print`.
//!
//! ## Fusion inventory
//!
//! The peephole layer rewrites the dominant statement shapes into single
//! opcodes. Every fused form charges cycles and burns fuel in exactly the
//! order of the sequence it replaces (the differential suite pins this):
//!
//! | fused opcode | replaces | why it is hot |
//! |---|---|---|
//! | `FuelLoad` / `FuelCopy` / `FuelConst` | `Fuel` + `Load`/`Copy`/`Const` | statement-initial form of nearly every assignment |
//! | `BinK`, `JumpCmpKFalse`, `FieldRmwK` | a `Const` + the literal-free form | literals appear in most conditions and updates |
//! | `JumpCmpFalse` (with `branch`) | `Branch` + `Bin` + `JumpIfFalse` | every `while p <> NULL` / `if` head |
//! | `FuelJump` | `Fuel` + `Jump` | loop backedges |
//! | `FieldRmw` | `Load` + `Bin` + `Store` | `p->f = p->f op x` loop bodies |
//! | `ForEnter`/`ForHead`/`ForNext` | head/backedge jump chains | the strip-mined `for k = lo to hi` |
//! | `ChaseLoop` | the whole `for k { p = p->field }` loop | the strip-mined walk's positioning/block advance |

use crate::value::{Layout, Layouts, Value};
use adds_lang::adds::AddsEnv;
use adds_lang::ast::*;
use adds_lang::types::{TypedProgram, PES_CONST};
use std::collections::HashMap;

/// A frame slot index.
pub type Slot = u32;

/// One bytecode instruction. Slots address the current frame.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// `dst = v`.
    Const { dst: Slot, v: Value },
    /// `dst = src`.
    Copy { dst: Slot, src: Slot },
    /// `dst = PEs` (the machine's configured processor count).
    Pes { dst: Slot },
    /// `dst = new T` — charges `alloc`.
    Alloc { dst: Slot, ty: u32 },
    /// `dst = base->field` — charges `load`. `off` is the resolved record
    /// offset; `access` is consulted only on error paths.
    Load {
        dst: Slot,
        base: Slot,
        off: u32,
        access: u32,
    },
    /// Statement-initial `Load`: burn one statement of fuel, then load
    /// (peephole fusion of the dominant chase-loop pattern `p = p->next`).
    FuelLoad {
        dst: Slot,
        base: Slot,
        off: u32,
        access: u32,
    },
    /// Statement-initial `Copy` (fuel + copy).
    FuelCopy { dst: Slot, src: Slot },
    /// Statement-initial `Const` (fuel + const).
    FuelConst { dst: Slot, v: Value },
    /// `dst = base->field[idx]` — charges `load`; bounds-checks against
    /// `len`.
    LoadIdx {
        dst: Slot,
        base: Slot,
        idx: Slot,
        off: u32,
        len: u32,
        access: u32,
    },
    /// `base->field = src` — charges `store`; `is_ptr` gates shape checks.
    Store {
        base: Slot,
        src: Slot,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// `base->field[idx] = src` — charges `store`.
    StoreIdx {
        base: Slot,
        idx: Slot,
        src: Slot,
        off: u32,
        len: u32,
        is_ptr: bool,
        access: u32,
    },
    /// `dst = op src` (shared operator semantics).
    Un { op: UnOp, dst: Slot, src: Slot },
    /// `dst = lhs op rhs` (shared operator semantics).
    Bin {
        op: BinOp,
        dst: Slot,
        lhs: Slot,
        rhs: Slot,
    },
    /// `dst = lhs op k` — literal right operand folded into the
    /// instruction (same shared semantics and charges as `Bin`).
    BinK {
        op: BinOp,
        dst: Slot,
        lhs: Slot,
        k: Value,
    },
    /// `dst = sqrt(src)` — charges `sqrt`.
    Sqrt { dst: Slot, src: Slot },
    /// `dst = fabs(src)` — charges `fp`.
    Fabs { dst: Slot, src: Slot },
    /// `dst = abs(src)` — charges `alu`.
    Abs { dst: Slot, src: Slot },
    /// `dst = min(a, b)` / `max(a, b)` — charges `fp`.
    MinMax {
        dst: Slot,
        a: Slot,
        b: Slot,
        is_min: bool,
    },
    /// `dst = itor(src)` — charges `alu`.
    Itor { dst: Slot, src: Slot },
    /// `print(src)` — appends to the output log.
    Print { src: Slot },
    /// `dst = funcs[func](args..args+argc)` — charges `call`.
    Call {
        dst: Slot,
        func: u32,
        args: Slot,
        argc: u32,
    },
    /// `return src`.
    Ret { src: Slot },
    /// `return;` / fall off the end (yields NULL).
    RetNull,
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `cond` is false; errors when `cond` is not a bool. When
    /// `branch` is set, charge the loop/if `branch` cost first (fused
    /// condition head whose operands need no evaluation code).
    JumpIfFalse {
        cond: Slot,
        branch: bool,
        target: u32,
    },
    /// Fused comparison + branch: `if !(lhs op rhs) jump target`, charging
    /// exactly like `Bin` followed by `JumpIfFalse` (only emitted for
    /// comparison operators, whose result is always bool). `branch` as in
    /// [`Instr::JumpIfFalse`].
    JumpCmpFalse {
        op: BinOp,
        lhs: Slot,
        rhs: Slot,
        branch: bool,
        target: u32,
    },
    /// Fused comparison-with-literal + branch.
    JumpCmpKFalse {
        op: BinOp,
        lhs: Slot,
        k: Value,
        branch: bool,
        target: u32,
    },
    /// Fused loop tail: burn one statement of fuel, then jump.
    FuelJump { target: u32 },
    /// Charge one `branch` cycle cost (loop/if condition points).
    Branch,
    /// Burn one statement of fuel (counts toward `ExecStats::stmts`).
    Fuel,
    /// Error unless the slot holds an int (loop bound checks).
    IntCheck { slot: Slot },
    /// Fused self-chase loop `for k = i to hi { ptr = ptr->field }` — the
    /// strip-mined walk's positioning and block-advance pattern. Replays
    /// the exact per-iteration sequence (branch charge, `k` update, two
    /// fuel burns, load charge, speculative NULL behavior, conflict read
    /// logging) without per-link dispatch.
    ChaseLoop {
        k: Slot,
        i: Slot,
        hi: Slot,
        ptr: Slot,
        off: u32,
        access: u32,
    },
    /// Fused read-modify-write `base->field = base->field op src`; burns
    /// the statement fuel itself (always statement-initial).
    FieldRmw {
        op: BinOp,
        base: Slot,
        src: Slot,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// [`Instr::FieldRmw`] with a literal right operand.
    FieldRmwK {
        op: BinOp,
        base: Slot,
        k: Value,
        off: u32,
        is_ptr: bool,
        access: u32,
    },
    /// Counted-loop entry: skip to `exit` when `i > hi` (no charge).
    ForEnter { i: Slot, hi: Slot, exit: u32 },
    /// Counted-loop iteration head: charge `branch`, then `var = i`.
    ForHead { var: Slot, i: Slot },
    /// Counted-loop backedge: burn one statement of fuel; then, when
    /// `i < hi`, increment and jump to `head`.
    ForNext { i: Slot, hi: Slot, head: u32 },
    /// Parallel region over `body..body_end` (which ends with `IterEnd`).
    ParFor {
        var: Slot,
        lo: Slot,
        hi: Slot,
        body_end: u32,
    },
    /// End of a `parfor` iteration body.
    IterEnd,
}

impl Instr {
    /// The dense [`Opcode`](crate::profile::Opcode) of this instruction
    /// (profiling counter index).
    pub(crate) fn opcode(&self) -> crate::profile::Opcode {
        use crate::profile::Opcode;
        match self {
            Instr::Const { .. } => Opcode::Const,
            Instr::Copy { .. } => Opcode::Copy,
            Instr::Pes { .. } => Opcode::Pes,
            Instr::Alloc { .. } => Opcode::Alloc,
            Instr::Load { .. } => Opcode::Load,
            Instr::FuelLoad { .. } => Opcode::FuelLoad,
            Instr::FuelCopy { .. } => Opcode::FuelCopy,
            Instr::FuelConst { .. } => Opcode::FuelConst,
            Instr::LoadIdx { .. } => Opcode::LoadIdx,
            Instr::Store { .. } => Opcode::Store,
            Instr::StoreIdx { .. } => Opcode::StoreIdx,
            Instr::Un { .. } => Opcode::Un,
            Instr::Bin { .. } => Opcode::Bin,
            Instr::BinK { .. } => Opcode::BinK,
            Instr::Sqrt { .. } => Opcode::Sqrt,
            Instr::Fabs { .. } => Opcode::Fabs,
            Instr::Abs { .. } => Opcode::Abs,
            Instr::MinMax { .. } => Opcode::MinMax,
            Instr::Itor { .. } => Opcode::Itor,
            Instr::Print { .. } => Opcode::Print,
            Instr::Call { .. } => Opcode::Call,
            Instr::Ret { .. } => Opcode::Ret,
            Instr::RetNull => Opcode::RetNull,
            Instr::Jump { .. } => Opcode::Jump,
            Instr::JumpIfFalse { .. } => Opcode::JumpIfFalse,
            Instr::JumpCmpFalse { .. } => Opcode::JumpCmpFalse,
            Instr::JumpCmpKFalse { .. } => Opcode::JumpCmpKFalse,
            Instr::FuelJump { .. } => Opcode::FuelJump,
            Instr::Branch => Opcode::Branch,
            Instr::Fuel => Opcode::Fuel,
            Instr::IntCheck { .. } => Opcode::IntCheck,
            Instr::ChaseLoop { .. } => Opcode::ChaseLoop,
            Instr::FieldRmw { .. } => Opcode::FieldRmw,
            Instr::FieldRmwK { .. } => Opcode::FieldRmwK,
            Instr::ForEnter { .. } => Opcode::ForEnter,
            Instr::ForHead { .. } => Opcode::ForHead,
            Instr::ForNext { .. } => Opcode::ForNext,
            Instr::ParFor { .. } => Opcode::ParFor,
            Instr::IterEnd => Opcode::IterEnd,
        }
    }
}

/// One compiled function.
#[derive(Clone, Debug)]
pub(crate) struct FuncCode {
    pub(crate) n_params: u32,
    /// Total frame size: params + named locals + expression temporaries.
    pub(crate) frame_size: u32,
    pub(crate) code: Vec<Instr>,
}

/// Schema version of the bytecode artifact this module produces. Cached
/// compiled programs (the query layer's `compiled(src)` artifacts) embed
/// this token in their fingerprints, so changing the instruction set or
/// layout rules here invalidates stale bytecode without touching the
/// analysis layers' cache entries. Bump it whenever a change makes old
/// artifacts semantically different from a fresh compile.
pub const BYTECODE_SCHEMA: &str = "machine-bytecode/v1";

/// A typed program lowered to slot-resolved bytecode, ready to run on any
/// number of [`crate::vm::Vm`] instances.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub(crate) funcs: Vec<FuncCode>,
    names: HashMap<String, u32>,
    /// Record layouts (with precomputed default-slot vectors).
    pub layouts: Layouts,
    /// Per-type layouts by id, for `Alloc`.
    pub(crate) type_layouts: Vec<Layout>,
    /// Field names per interned access site, for error messages and shape
    /// checks (the numeric facts are embedded in the instructions).
    pub(crate) accesses: Vec<String>,
    /// The ADDS shape model, for runtime shape checking.
    pub(crate) adds: AddsEnv,
}

impl CompiledProgram {
    /// Lower `tp` to bytecode. The pass is total on type-checked programs.
    pub fn compile(tp: &TypedProgram) -> CompiledProgram {
        let _span = adds_obs::trace::span("machine.compile", "machine");
        let layouts = Layouts::from_adds(&tp.adds);
        let mut type_ids = HashMap::new();
        let mut type_layouts = Vec::new();
        for t in tp.adds.types() {
            type_ids.insert(t.name.clone(), type_layouts.len() as u32);
            type_layouts.push(
                layouts
                    .get(&t.name)
                    .expect("layout for every declared type")
                    .clone(),
            );
        }
        let names: HashMap<String, u32> = tp
            .program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        let mut prog = CompiledProgram {
            funcs: Vec::new(),
            names,
            layouts,
            type_layouts,
            accesses: Vec::new(),
            adds: tp.adds.clone(),
        };
        for f in &tp.program.funcs {
            let code = FnCompiler::compile(tp, &mut prog, &type_ids, f);
            prog.funcs.push(code);
        }
        prog
    }

    /// Id of function `name`, if defined.
    pub fn func_id(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// Name of function `id`, if in range (profile rendering).
    pub fn func_name(&self, id: u32) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.as_str())
    }

    /// Number of compiled functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total bytecode instruction count (diagnostics / benchmarks).
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

/// Per-function lowering state.
struct FnCompiler<'a> {
    tp: &'a TypedProgram,
    prog: &'a mut CompiledProgram,
    type_ids: &'a HashMap<String, u32>,
    vars_ty: &'a HashMap<String, Ty>,
    slots: HashMap<String, Slot>,
    code: Vec<Instr>,
    /// First temp slot currently available (reset per statement).
    temp_next: u32,
    /// Temps below this are pinned (enclosing loop counters).
    temp_floor: u32,
    /// High-water mark → frame size.
    max_slots: u32,
    /// A statement's fuel burn is owed but not yet emitted: the next
    /// instruction absorbs it (Fuel* fused forms) or it flushes as `Fuel`.
    pending_fuel: bool,
}

impl<'a> FnCompiler<'a> {
    fn compile(
        tp: &'a TypedProgram,
        prog: &'a mut CompiledProgram,
        type_ids: &'a HashMap<String, u32>,
        f: &FunDecl,
    ) -> FuncCode {
        static EMPTY: std::sync::OnceLock<HashMap<String, Ty>> = std::sync::OnceLock::new();
        let vars_ty = tp
            .locals
            .get(&f.name)
            .unwrap_or_else(|| EMPTY.get_or_init(HashMap::new));
        // Frame layout: params in order, then remaining locals sorted.
        let mut slots = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            slots.insert(p.name.clone(), i as u32);
        }
        let mut rest: Vec<&String> = vars_ty.keys().filter(|n| !slots.contains_key(*n)).collect();
        rest.sort();
        for n in rest {
            let next = slots.len() as u32;
            slots.insert(n.clone(), next);
        }
        let n_named = slots.len() as u32;
        let mut c = FnCompiler {
            tp,
            prog,
            type_ids,
            vars_ty,
            slots,
            code: Vec::new(),
            temp_next: n_named,
            temp_floor: n_named,
            max_slots: n_named,
            pending_fuel: false,
        };
        c.block(&f.body);
        c.emit(Instr::RetNull);
        FuncCode {
            n_params: f.params.len() as u32,
            frame_size: c.max_slots,
            code: c.code,
        }
    }

    fn temp(&mut self) -> Slot {
        let s = self.temp_next;
        self.temp_next += 1;
        self.max_slots = self.max_slots.max(self.temp_next);
        s
    }

    fn reset_temps(&mut self) {
        self.temp_next = self.temp_floor;
    }

    /// Emit one instruction, absorbing a pending statement-fuel burn into
    /// the fused `Fuel*` forms where one exists.
    fn emit(&mut self, i: Instr) {
        if self.pending_fuel {
            self.pending_fuel = false;
            match i {
                Instr::Load {
                    dst,
                    base,
                    off,
                    access,
                } => {
                    self.code.push(Instr::FuelLoad {
                        dst,
                        base,
                        off,
                        access,
                    });
                    return;
                }
                Instr::Copy { dst, src } => {
                    self.code.push(Instr::FuelCopy { dst, src });
                    return;
                }
                Instr::Const { dst, v } => {
                    self.code.push(Instr::FuelConst { dst, v });
                    return;
                }
                _ => self.code.push(Instr::Fuel),
            }
        }
        self.code.push(i);
    }

    fn flush_fuel(&mut self) {
        if self.pending_fuel {
            self.pending_fuel = false;
            self.code.push(Instr::Fuel);
        }
    }

    /// Current label (flushes pending fuel first — a fuel burn may never
    /// move across a jump target).
    fn here(&mut self) -> u32 {
        self.flush_fuel();
        self.code.len() as u32
    }

    /// Emit a placeholder jump to be patched later; returns its index.
    fn jump_hole(&mut self, i: Instr) -> usize {
        self.emit(i);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpCmpFalse { target: t, .. }
            | Instr::JumpCmpKFalse { target: t, .. }
            | Instr::ForEnter { exit: t, .. }
            | Instr::ParFor { body_end: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Literal value of a constant expression, for immediate operands.
    fn literal(e: &Expr) -> Option<Value> {
        match e {
            Expr::Int(v, _) => Some(Value::Int(*v)),
            Expr::Real(v, _) => Some(Value::Real(*v)),
            Expr::Bool(b, _) => Some(Value::Bool(*b)),
            Expr::Null(_) => Some(Value::Null),
            _ => None,
        }
    }

    /// A plain frame-slot expression: a non-`PEs` variable (reading it
    /// emits no code and charges nothing).
    fn is_pure_slot(e: &Expr) -> bool {
        matches!(e, Expr::Var(v, _) if v != PES_CONST)
    }

    /// Emit a condition head — the `branch` cycle charge plus a jump taken
    /// when `cond` is false — fusing comparisons (and the branch charge,
    /// when the operands need no evaluation code) into one instruction.
    /// Returns the patch hole.
    fn cond_jump_hole(&mut self, cond: &Expr) -> usize {
        if let Expr::Binary { op, lhs, rhs, .. } = cond {
            if op.is_comparison() {
                // Charge-inside fusion is only valid when evaluating the
                // operands emits no code (the interpreter charges the
                // branch before evaluating the condition).
                let fuse_branch = Self::is_pure_slot(lhs)
                    && (Self::literal(rhs).is_some() || Self::is_pure_slot(rhs));
                if !fuse_branch {
                    self.emit(Instr::Branch);
                }
                let l = self.operand(lhs);
                return match Self::literal(rhs) {
                    Some(k) => self.jump_hole(Instr::JumpCmpKFalse {
                        op: *op,
                        lhs: l,
                        k,
                        branch: fuse_branch,
                        target: 0,
                    }),
                    None => {
                        let r = self.operand(rhs);
                        self.jump_hole(Instr::JumpCmpFalse {
                            op: *op,
                            lhs: l,
                            rhs: r,
                            branch: fuse_branch,
                            target: 0,
                        })
                    }
                };
            }
        }
        let fuse_branch = Self::is_pure_slot(cond);
        if !fuse_branch {
            self.emit(Instr::Branch);
        }
        let c = self.operand(cond);
        self.jump_hole(Instr::JumpIfFalse {
            cond: c,
            branch: fuse_branch,
            target: 0,
        })
    }

    // ------------------------------------------------------------ statements

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.reset_temps();
        self.pending_fuel = true;
        match s {
            Stmt::VarDecl { name, init, .. } => {
                let dst = self.slots[name.as_str()];
                match init {
                    Some(e) => self.expr_to(e, dst),
                    None => self.emit(Instr::Const {
                        dst,
                        v: Value::Null,
                    }),
                }
            }
            Stmt::Assign { lhs, rhs, .. } => self.assign(lhs, rhs),
            Stmt::While { cond, body, .. } => {
                let head = self.here();
                self.reset_temps();
                let exit_hole = self.cond_jump_hole(cond);
                self.block(body);
                self.emit(Instr::FuelJump { target: head });
                let exit = self.here();
                self.patch(exit_hole, exit);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let else_hole = self.cond_jump_hole(cond);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    let end_hole = self.jump_hole(Instr::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(else_hole, else_at);
                    self.block(e);
                    let end = self.here();
                    self.patch(end_hole, end);
                } else {
                    let end = self.here();
                    self.patch(else_hole, end);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                parallel,
                ..
            } => {
                let v = self.slots[var.as_str()];
                let t_i = self.temp();
                let t_hi = self.temp();
                self.expr_to(from, t_i);
                self.emit(Instr::IntCheck { slot: t_i });
                self.expr_to(to, t_hi);
                self.emit(Instr::IntCheck { slot: t_hi });
                if *parallel {
                    let hole = self.jump_hole(Instr::ParFor {
                        var: v,
                        lo: t_i,
                        hi: t_hi,
                        body_end: 0,
                    });
                    self.block(body);
                    self.emit(Instr::IterEnd);
                    let end = self.here();
                    self.patch(hole, end);
                } else if let Some((ptr, off, access)) = self.chase_body(var, body) {
                    self.emit(Instr::ChaseLoop {
                        k: v,
                        i: t_i,
                        hi: t_hi,
                        ptr,
                        off,
                        access,
                    });
                } else {
                    // Pin the counters for the duration of the body.
                    let old_floor = self.temp_floor;
                    self.temp_floor = t_hi + 1;
                    let enter_hole = self.jump_hole(Instr::ForEnter {
                        i: t_i,
                        hi: t_hi,
                        exit: 0,
                    });
                    let head = self.here();
                    self.emit(Instr::ForHead { var: v, i: t_i });
                    self.block(body);
                    // ForNext burns the iteration's trailing fuel itself.
                    self.emit(Instr::ForNext {
                        i: t_i,
                        hi: t_hi,
                        head,
                    });
                    let exit = self.here();
                    self.patch(enter_hole, exit);
                    self.temp_floor = old_floor;
                }
            }
            Stmt::Return { value, .. } => match value {
                Some(e) => {
                    let t = self.operand(e);
                    self.emit(Instr::Ret { src: t });
                }
                None => self.emit(Instr::RetNull),
            },
            Stmt::Call(c) => {
                let dst = self.temp();
                self.call_to(c, dst);
            }
        }
        // A statement that emitted no instructions (e.g. the self-copy
        // `x = x;`) still owes its fuel burn.
        self.flush_fuel();
    }

    /// Recognize the self-chase loop body `{ v = v->f; }` (no index, `v`
    /// distinct from the loop variable); returns the pointer slot and
    /// resolved access.
    fn chase_body(&mut self, loop_var: &str, body: &Block) -> Option<(Slot, u32, u32)> {
        let [Stmt::Assign { lhs, rhs, .. }] = body.stmts.as_slice() else {
            return None;
        };
        if !lhs.is_var() || lhs.base == loop_var || lhs.base == PES_CONST {
            return None;
        }
        let Expr::Field {
            base,
            field,
            index: None,
            ..
        } = rhs
        else {
            return None;
        };
        if !matches!(&**base, Expr::Var(v, _) if *v == lhs.base) {
            return None;
        }
        let rec = self.var_record_ty(&lhs.base)?;
        let (access, off, _, _) = self.access_info(Some(&rec), field);
        Some((self.slots[lhs.base.as_str()], off, access))
    }

    /// Recognize `v->f = v->f op x` with `x` a literal or plain variable;
    /// emits the fused RMW and returns true.
    fn try_rmw(&mut self, lhs: &LValue, rhs: &Expr) -> bool {
        let Some((base_var, field)) = lhs.as_single_field() else {
            return false;
        };
        if lhs.path[0].index.is_some() || base_var == PES_CONST {
            return false;
        }
        let Expr::Binary {
            op,
            lhs: rl,
            rhs: rr,
            ..
        } = rhs
        else {
            return false;
        };
        let reads_same_field = matches!(
            &**rl,
            Expr::Field { base, field: f2, index: None, .. }
                if *f2 == field && matches!(&**base, Expr::Var(v, _) if v == base_var)
        );
        if !reads_same_field {
            return false;
        }
        let Some(rec) = self.var_record_ty(base_var) else {
            return false;
        };
        let k = Self::literal(rr);
        if k.is_none() && !Self::is_pure_slot(rr) {
            return false;
        }
        let (access, off, _, is_ptr) = self.access_info(Some(&rec), field);
        let base = self.slots[base_var];
        // Always statement-initial: the instruction burns the fuel itself.
        debug_assert!(self.pending_fuel);
        self.pending_fuel = false;
        match k {
            Some(k) => self.code.push(Instr::FieldRmwK {
                op: *op,
                base,
                k,
                off,
                is_ptr,
                access,
            }),
            None => {
                let src = self.operand(rr);
                self.code.push(Instr::FieldRmw {
                    op: *op,
                    base,
                    src,
                    off,
                    is_ptr,
                    access,
                });
            }
        }
        true
    }

    fn assign(&mut self, lhs: &LValue, rhs: &Expr) {
        if lhs.is_var() {
            let dst = self.slots[lhs.base.as_str()];
            self.expr_to(rhs, dst);
            return;
        }
        if self.try_rmw(lhs, rhs) {
            return;
        }
        // RHS first, then walk to the last node — interpreter order.
        let src = self.operand(rhs);
        let mut cur = self.read_var(&lhs.base);
        let mut rec = self.var_record_ty(&lhs.base);
        for acc in &lhs.path[..lhs.path.len() - 1] {
            let (access, off, len, _) = self.access_info(rec.as_deref(), &acc.field);
            rec = rec
                .as_deref()
                .and_then(|r| self.tp.field_ty(r, &acc.field))
                .and_then(|t| t.pointee().map(str::to_string));
            let dst = self.temp();
            match &acc.index {
                Some(e) => {
                    let idx = self.operand(e);
                    self.emit(Instr::LoadIdx {
                        dst,
                        base: cur,
                        idx,
                        off,
                        len,
                        access,
                    });
                }
                None => self.emit(Instr::Load {
                    dst,
                    base: cur,
                    off,
                    access,
                }),
            }
            cur = dst;
        }
        let last = lhs.path.last().expect("field lvalue");
        let (access, off, len, is_ptr) = self.access_info(rec.as_deref(), &last.field);
        match &last.index {
            Some(e) => {
                let idx = self.operand(e);
                self.emit(Instr::StoreIdx {
                    base: cur,
                    idx,
                    src,
                    off,
                    len,
                    is_ptr,
                    access,
                });
            }
            None => self.emit(Instr::Store {
                base: cur,
                src,
                off,
                is_ptr,
                access,
            }),
        }
    }

    // ----------------------------------------------------------- expressions

    /// Slot holding the value of `e`: variables in place, everything else
    /// materialized into a fresh temp.
    fn operand(&mut self, e: &Expr) -> Slot {
        if let Expr::Var(v, _) = e {
            if v != PES_CONST {
                return self.read_var(v);
            }
        }
        let t = self.temp();
        self.expr_to(e, t);
        t
    }

    /// Evaluate `e` into `dst`. Only the final producing instruction writes
    /// `dst`; subexpression results go to fresh temps, so `dst` may alias a
    /// variable read by the expression.
    fn expr_to(&mut self, e: &Expr, dst: Slot) {
        match e {
            Expr::Int(v, _) => self.emit(Instr::Const {
                dst,
                v: Value::Int(*v),
            }),
            Expr::Real(v, _) => self.emit(Instr::Const {
                dst,
                v: Value::Real(*v),
            }),
            Expr::Bool(b, _) => self.emit(Instr::Const {
                dst,
                v: Value::Bool(*b),
            }),
            Expr::Null(_) => self.emit(Instr::Const {
                dst,
                v: Value::Null,
            }),
            Expr::Var(v, _) => {
                if v == PES_CONST {
                    self.emit(Instr::Pes { dst });
                } else {
                    let src = self.read_var(v);
                    if src != dst {
                        self.emit(Instr::Copy { dst, src });
                    }
                }
            }
            Expr::New(ty, _) => {
                let id = *self
                    .type_ids
                    .get(ty)
                    .unwrap_or_else(|| panic!("`new` of unknown type `{ty}` after type check"));
                self.emit(Instr::Alloc { dst, ty: id });
            }
            Expr::Field {
                base, field, index, ..
            } => {
                let rec = self.record_ty_of(base);
                let b = self.operand(base);
                let (access, off, len, _) = self.access_info(rec.as_deref(), field);
                match index {
                    Some(i) => {
                        let idx = self.operand(i);
                        self.emit(Instr::LoadIdx {
                            dst,
                            base: b,
                            idx,
                            off,
                            len,
                            access,
                        });
                    }
                    None => self.emit(Instr::Load {
                        dst,
                        base: b,
                        off,
                        access,
                    }),
                }
            }
            Expr::Unary { op, operand, .. } => {
                let src = self.operand(operand);
                self.emit(Instr::Un { op: *op, dst, src });
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.operand(lhs);
                match Self::literal(rhs) {
                    Some(k) => self.emit(Instr::BinK {
                        op: *op,
                        dst,
                        lhs: l,
                        k,
                    }),
                    None => {
                        let r = self.operand(rhs);
                        self.emit(Instr::Bin {
                            op: *op,
                            dst,
                            lhs: l,
                            rhs: r,
                        });
                    }
                }
            }
            Expr::Call(c) => self.call_to(c, dst),
        }
    }

    fn call_to(&mut self, c: &Call, dst: Slot) {
        // Intrinsics shadow user functions, as in the interpreter.
        match c.callee.as_str() {
            "print" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Print { src });
                self.emit(Instr::Const {
                    dst,
                    v: Value::Null,
                });
                return;
            }
            "sqrt" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Sqrt { dst, src });
                return;
            }
            "fabs" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Fabs { dst, src });
                return;
            }
            "abs" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Abs { dst, src });
                return;
            }
            "min" | "max" => {
                let a = self.operand(&c.args[0]);
                let b = self.operand(&c.args[1]);
                self.emit(Instr::MinMax {
                    dst,
                    a,
                    b,
                    is_min: c.callee == "min",
                });
                return;
            }
            "itor" => {
                let src = self.operand(&c.args[0]);
                self.emit(Instr::Itor { dst, src });
                return;
            }
            _ => {}
        }
        let func =
            *self.prog.names.get(&c.callee).unwrap_or_else(|| {
                panic!("call of unknown function `{}` after type check", c.callee)
            });
        // Arguments must land in consecutive temps.
        let args = self.temp_next;
        for _ in 0..c.args.len() {
            self.temp();
        }
        for (k, a) in c.args.iter().enumerate() {
            self.expr_to(a, args + k as u32);
        }
        self.emit(Instr::Call {
            dst,
            func,
            args,
            argc: c.args.len() as u32,
        });
    }

    // -------------------------------------------------------------- resolution

    fn read_var(&mut self, name: &str) -> Slot {
        if name == PES_CONST {
            let t = self.temp();
            self.emit(Instr::Pes { dst: t });
            return t;
        }
        *self
            .slots
            .get(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}` after type check"))
    }

    /// Record type a pointer variable points to, if statically known.
    fn var_record_ty(&self, name: &str) -> Option<String> {
        if name == PES_CONST {
            return None;
        }
        self.vars_ty
            .get(name)
            .and_then(|t| t.pointee().map(str::to_string))
    }

    /// Record type `e` points to, if statically known (it always is for
    /// type-checked programs, except for literal-NULL bases).
    fn record_ty_of(&self, e: &Expr) -> Option<String> {
        self.static_ty(e)
            .and_then(|t| t.pointee().map(str::to_string))
    }

    fn static_ty(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(..) => Some(Ty::Int),
            Expr::Real(..) => Some(Ty::Real),
            Expr::Bool(..) => Some(Ty::Bool),
            Expr::Null(_) => None,
            Expr::New(t, _) => Some(Ty::Ptr(t.clone())),
            Expr::Var(v, _) => {
                if v == PES_CONST {
                    Some(Ty::Int)
                } else {
                    self.vars_ty.get(v).cloned()
                }
            }
            Expr::Field { base, field, .. } => {
                let bt = self.static_ty(base)?;
                self.tp.field_ty(bt.pointee()?, field)
            }
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => self.static_ty(operand),
                UnOp::Not => Some(Ty::Bool),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() || op.is_logical() {
                    Some(Ty::Bool)
                } else {
                    match (self.static_ty(lhs), self.static_ty(rhs)) {
                        (Some(Ty::Real), _) | (_, Some(Ty::Real)) => Some(Ty::Real),
                        _ => Some(Ty::Int),
                    }
                }
            }
            Expr::Call(c) => match c.callee.as_str() {
                "sqrt" | "fabs" | "min" | "max" | "itor" => Some(Ty::Real),
                "abs" => Some(Ty::Int),
                "print" => None,
                _ => self.tp.sigs.get(&c.callee).and_then(|s| s.ret.clone()),
            },
        }
    }

    /// Intern a resolved field access; returns `(id, offset, len, is_ptr)`
    /// so the hot numeric facts can be embedded in the instruction (the
    /// interned entry serves error messages and shape checks). A `None`
    /// record type can only arise from a literal-NULL base, whose access
    /// never reaches the offset at runtime (speculative NULL reads return
    /// before offset use, and lvalues always root at a typed variable).
    fn access_info(&mut self, rec: Option<&str>, field: &str) -> (u32, u32, u32, bool) {
        let (offset, len, is_ptr) = match rec.and_then(|r| self.prog.layouts.get(r)) {
            Some(layout) => {
                let slot = layout.slot(field).unwrap_or_else(|| {
                    panic!("field `{field}` missing from layout after type check")
                });
                (slot.offset as u32, slot.len as u32, slot.is_ptr)
            }
            None => (0, 1, false),
        };
        let id = self.prog.accesses.len() as u32;
        self.prog.accesses.push(field.to_string());
        (id, offset, len, is_ptr)
    }
}
