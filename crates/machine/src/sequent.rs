//! The simulated Sequent-class multiprocessor: a convenience layer that runs
//! whole IL workloads (notably the Barnes–Hut tree-code of §4) under the
//! cycle model and reports simulated times.
//!
//! This is the substitute for the paper's Sequent hardware (see DESIGN.md
//! §5): deterministic, parameterized by PE count and synchronization cost,
//! with static strip scheduling — the same mechanisms that shaped the
//! paper's measured speedups.

use crate::compile::CompiledProgram;
use crate::cost::CostModel;
use crate::exec::{Exec, MachineConfig, RuntimeError};
use crate::interp::Interp;
use crate::value::Value;
use crate::vm::Vm;
use adds_lang::types::TypedProgram;

/// A particle's initial condition for the simulated N-body runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BodyInit {
    /// Particle mass.
    pub mass: f64,
    /// Position vector.
    pub pos: [f64; 3],
    /// Velocity vector.
    pub vel: [f64; 3],
}

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Number of parallel rounds executed (0 for sequential code).
    pub parallel_rounds: u64,
    /// Conflicts detected (must be empty for a correct parallelization).
    pub conflict_count: usize,
    /// Final particle states, for cross-checking runs against each other.
    pub bodies: Vec<BodyInit>,
}

/// Build the particle leaf list in the machine's heap and return the
/// head pointer. Particles are `Octree` records with `is_leaf = true`,
/// linked through `next` in order — Figure 5's leaves chain.
pub fn build_particles(m: &mut dyn Exec, bodies: &[BodyInit]) -> Value {
    let mut head = Value::Null;
    for b in bodies.iter().rev() {
        let n = m.host_alloc("Octree");
        m.host_store(n, "mass", 0, Value::Real(b.mass));
        m.host_store(n, "x", 0, Value::Real(b.pos[0]));
        m.host_store(n, "y", 0, Value::Real(b.pos[1]));
        m.host_store(n, "z", 0, Value::Real(b.pos[2]));
        m.host_store(n, "vx", 0, Value::Real(b.vel[0]));
        m.host_store(n, "vy", 0, Value::Real(b.vel[1]));
        m.host_store(n, "vz", 0, Value::Real(b.vel[2]));
        m.host_store(n, "is_leaf", 0, Value::Bool(true));
        m.host_store(n, "next", 0, head);
        head = Value::Ptr(n);
    }
    head
}

/// Read the particle states back out of the heap.
pub fn read_particles(m: &dyn Exec, mut head: Value) -> Vec<BodyInit> {
    let mut out = Vec::new();
    while let Value::Ptr(n) = head {
        out.push(BodyInit {
            mass: m.host_load(n, "mass", 0).as_real().unwrap(),
            pos: [
                m.host_load(n, "x", 0).as_real().unwrap(),
                m.host_load(n, "y", 0).as_real().unwrap(),
                m.host_load(n, "z", 0).as_real().unwrap(),
            ],
            vel: [
                m.host_load(n, "vx", 0).as_real().unwrap(),
                m.host_load(n, "vy", 0).as_real().unwrap(),
                m.host_load(n, "vz", 0).as_real().unwrap(),
            ],
        });
        head = m.host_load(n, "next", 0);
    }
    out
}

fn sim_config(pes: usize, cost: CostModel, detect_conflicts: bool) -> MachineConfig {
    MachineConfig {
        pes,
        speculative: true,
        detect_conflicts,
        check_shapes: false,
        strict_conflicts: false,
        cost,
        fuel: None,
    }
}

fn drive_sim(
    m: &mut dyn Exec,
    bodies: &[BodyInit],
    steps: i64,
    theta: f64,
    dt: f64,
) -> Result<SimRun, RuntimeError> {
    let head = build_particles(m, bodies);
    m.call(
        "simulate",
        &[head, Value::Int(steps), Value::Real(theta), Value::Real(dt)],
    )?;
    Ok(SimRun {
        cycles: m.clock(),
        parallel_rounds: m.stats().parallel_rounds,
        conflict_count: m.conflicts().len(),
        bodies: read_particles(m, head),
    })
}

/// Run `simulate(particles, steps, theta, dt)` from a (possibly transformed)
/// Barnes–Hut IL program on the simulated machine (the bytecode VM).
#[allow(clippy::too_many_arguments)]
pub fn run_barnes_hut(
    tp: &TypedProgram,
    bodies: &[BodyInit],
    steps: i64,
    theta: f64,
    dt: f64,
    pes: usize,
    cost: CostModel,
    detect_conflicts: bool,
) -> Result<SimRun, RuntimeError> {
    let compiled = CompiledProgram::compile(tp);
    run_barnes_hut_compiled(
        &compiled,
        bodies,
        steps,
        theta,
        dt,
        pes,
        cost,
        detect_conflicts,
    )
}

/// [`run_barnes_hut`] over an already-compiled program: the bytecode
/// artifact is immutable, so one compile can back any number of VMs —
/// different PE counts, repeated requests, cached artifacts (the query
/// layer memoizes [`CompiledProgram`]s by source hash and runs from here).
#[allow(clippy::too_many_arguments)]
pub fn run_barnes_hut_compiled(
    compiled: &CompiledProgram,
    bodies: &[BodyInit],
    steps: i64,
    theta: f64,
    dt: f64,
    pes: usize,
    cost: CostModel,
    detect_conflicts: bool,
) -> Result<SimRun, RuntimeError> {
    let mut vm = Vm::new(compiled, sim_config(pes, cost, detect_conflicts));
    drive_sim(&mut vm, bodies, steps, theta, dt)
}

/// [`run_barnes_hut`] on the tree-walking interpreter — kept for
/// differential validation of the VM (an order of magnitude slower).
#[allow(clippy::too_many_arguments)]
pub fn run_barnes_hut_interp(
    tp: &TypedProgram,
    bodies: &[BodyInit],
    steps: i64,
    theta: f64,
    dt: f64,
    pes: usize,
    cost: CostModel,
    detect_conflicts: bool,
) -> Result<SimRun, RuntimeError> {
    let mut it = Interp::new(tp, sim_config(pes, cost, detect_conflicts));
    drive_sim(&mut it, bodies, steps, theta, dt)
}

/// Deterministic pseudo-random particle cloud (no external RNG needed at
/// this layer; the bench harness uses `rand` for richer models).
pub fn uniform_cloud(n: usize, seed: u64) -> Vec<BodyInit> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545F4914F6CDD1D);
        (v >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| BodyInit {
            mass: 1.0 / n as f64,
            pos: [next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0],
            vel: [0.0, 0.0, 0.0],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adds_lang::programs;
    use adds_lang::types::check_source;

    fn tp_seq() -> TypedProgram {
        check_source(programs::BARNES_HUT).unwrap()
    }

    #[test]
    fn uniform_cloud_is_deterministic() {
        let a = uniform_cloud(16, 42);
        let b = uniform_cloud(16, 42);
        assert_eq!(a, b);
        let c = uniform_cloud(16, 43);
        assert_ne!(a, c);
        for p in &a {
            for d in 0..3 {
                assert!(p.pos[d] >= -1.0 && p.pos[d] <= 1.0);
            }
        }
    }

    #[test]
    fn sequential_barnes_hut_runs() {
        let tp = tp_seq();
        let bodies = uniform_cloud(24, 7);
        let run =
            run_barnes_hut(&tp, &bodies, 2, 0.7, 0.01, 1, CostModel::uniform(), false).unwrap();
        assert!(run.cycles > 0);
        assert_eq!(run.parallel_rounds, 0);
        assert_eq!(run.bodies.len(), 24);
        // Particles must have moved.
        assert!(run.bodies.iter().zip(&bodies).any(|(a, b)| a.pos != b.pos));
    }

    #[test]
    fn particles_round_trip_through_heap() {
        let tp = tp_seq();
        let bodies = uniform_cloud(5, 3);
        let mut it = Interp::new(&tp, MachineConfig::default());
        let head = build_particles(&mut it, &bodies);
        let back = read_particles(&it, head);
        assert_eq!(back, bodies);
    }

    #[test]
    fn transformed_parallel_run_matches_sequential() {
        // Parallelize BHL1/BHL2 via the core pipeline, then check the
        // simulated parallel execution computes identical trajectories and
        // detects no conflicts.
        let (prog, _) = adds_core::parallelize_program(programs::BARNES_HUT).unwrap();
        let par_src = adds_lang::pretty::program(&prog);
        let tp_par = check_source(&par_src).unwrap();
        let tp_seq = tp_seq();

        let bodies = uniform_cloud(20, 11);
        let seq = run_barnes_hut(
            &tp_seq,
            &bodies,
            2,
            0.7,
            0.01,
            1,
            CostModel::uniform(),
            false,
        )
        .unwrap();
        let par = run_barnes_hut(
            &tp_par,
            &bodies,
            2,
            0.7,
            0.01,
            4,
            CostModel::uniform(),
            true,
        )
        .unwrap();
        assert_eq!(
            par.conflict_count, 0,
            "parallel iterations must not conflict"
        );
        assert!(
            par.parallel_rounds > 0,
            "transformed code ran parallel rounds"
        );
        for (a, b) in seq.bodies.iter().zip(&par.bodies) {
            for d in 0..3 {
                assert!(
                    (a.pos[d] - b.pos[d]).abs() < 1e-9,
                    "trajectory mismatch: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn vm_run_matches_interpreter_run_exactly() {
        let tp = tp_seq();
        let bodies = uniform_cloud(16, 9);
        let vm = run_barnes_hut(&tp, &bodies, 1, 0.7, 0.01, 4, CostModel::sequent(), true).unwrap();
        let it = run_barnes_hut_interp(&tp, &bodies, 1, 0.7, 0.01, 4, CostModel::sequent(), true)
            .unwrap();
        assert_eq!(vm.cycles, it.cycles);
        assert_eq!(vm.parallel_rounds, it.parallel_rounds);
        assert_eq!(vm.conflict_count, it.conflict_count);
        assert_eq!(vm.bodies, it.bodies);
    }

    #[test]
    fn parallel_cycles_beat_sequential_for_large_enough_n() {
        let (prog, _) = adds_core::parallelize_program(programs::BARNES_HUT).unwrap();
        let par_src = adds_lang::pretty::program(&prog);
        let tp_par = check_source(&par_src).unwrap();
        let tp_s = tp_seq();
        let bodies = uniform_cloud(64, 5);
        let seq =
            run_barnes_hut(&tp_s, &bodies, 1, 0.7, 0.01, 1, CostModel::sequent(), false).unwrap();
        let par = run_barnes_hut(
            &tp_par,
            &bodies,
            1,
            0.7,
            0.01,
            4,
            CostModel::sequent(),
            false,
        )
        .unwrap();
        assert!(
            par.cycles < seq.cycles,
            "4-PE simulated run should be faster: {} vs {}",
            par.cycles,
            seq.cycles
        );
        // But not superlinear.
        assert!(par.cycles * 4 > seq.cycles, "speedup must be sublinear");
    }
}
