//! Value-level operator semantics shared by the interpreter and the VM.
//!
//! Both engines must agree bit-for-bit on results *and* cycle charges, so
//! the dynamic dispatch on operand kinds (pointer equality, bool logic,
//! int/real arithmetic with int→real coercion) lives here exactly once.

use crate::cost::CostModel;
use crate::exec::RuntimeError;
use crate::value::Value;
use adds_lang::ast::{BinOp, UnOp};

type RResult<T> = Result<T, RuntimeError>;

fn type_err<T>(m: impl Into<String>) -> RResult<T> {
    Err(RuntimeError::Type(m.into()))
}

/// Operand-inspecting fast path for [`binop`]: the alu-charged cases a
/// compiled loop hits constantly — int arithmetic and compares, and
/// pointer / NULL equality. Every `Some` result is exactly what the
/// general paths of [`binop`] would produce for an `alu` charge; `None`
/// means coercion, error checks, or a non-alu charge is involved
/// (`Div`/`Rem` stay on the slow path for their zero checks, `And`/`Or`
/// for truthy coercion). Force-inlined so VM dispatch arms can keep the
/// operands in registers instead of paying a call with by-memory
/// `Value` arguments.
#[inline(always)]
pub(crate) fn binop_fast(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some(match op {
            Add => Value::Int(a.wrapping_add(b)),
            Sub => Value::Int(a.wrapping_sub(b)),
            Mul => Value::Int(a.wrapping_mul(b)),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            Div | Rem | And | Or => return None,
        }),
        (Value::Ptr(a), Value::Ptr(b)) if matches!(op, Eq | Ne) => {
            Some(Value::Bool((a == b) == (op == Eq)))
        }
        (Value::Ptr(_), Value::Null) | (Value::Null, Value::Ptr(_)) if matches!(op, Eq | Ne) => {
            Some(Value::Bool(op == Ne))
        }
        (Value::Null, Value::Null) if matches!(op, Eq | Ne) => Some(Value::Bool(op == Eq)),
        _ => None,
    }
}

/// Apply a binary operator, charging `clock` per the cost model.
pub(crate) fn binop(
    op: BinOp,
    l: Value,
    r: Value,
    cost: &CostModel,
    clock: &mut u64,
) -> RResult<Value> {
    use BinOp::*;
    if let Some(v) = binop_fast(op, l, r) {
        *clock += cost.alu;
        return Ok(v);
    }
    // Pointer / NULL comparisons.
    if matches!(op, Eq | Ne) {
        let eq = match (l, r) {
            (Value::Ptr(a), Value::Ptr(b)) => Some(a == b),
            (Value::Null, Value::Null) => Some(true),
            (Value::Ptr(_), Value::Null) | (Value::Null, Value::Ptr(_)) => Some(false),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            _ => None,
        };
        if let Some(eq) = eq {
            *clock += cost.alu;
            return Ok(Value::Bool(if op == Eq { eq } else { !eq }));
        }
    }
    if matches!(op, And | Or) {
        let a = l.truthy().map_err(RuntimeError::Type)?;
        let b = r.truthy().map_err(RuntimeError::Type)?;
        *clock += cost.alu;
        return Ok(Value::Bool(if op == And { a && b } else { a || b }));
    }
    // Numeric.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            *clock += cost.alu;
            Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(RuntimeError::Other("division by zero".into()));
                    }
                    Value::Int(a / b)
                }
                Rem => {
                    if b == 0 {
                        return Err(RuntimeError::Other("modulo by zero".into()));
                    }
                    Value::Int(a % b)
                }
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                And | Or => unreachable!(),
            })
        }
        (l, r) => {
            let a = l.as_real().map_err(RuntimeError::Type)?;
            let b = r.as_real().map_err(RuntimeError::Type)?;
            *clock += cost.fp;
            Ok(match op {
                Add => Value::Real(a + b),
                Sub => Value::Real(a - b),
                Mul => Value::Real(a * b),
                Div => Value::Real(a / b),
                Rem => Value::Real(a % b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                And | Or => unreachable!(),
            })
        }
    }
}

/// Apply a unary operator, charging `clock` per the cost model (`not` is
/// free, matching the historical interpreter).
pub(crate) fn unop(op: UnOp, v: Value, cost: &CostModel, clock: &mut u64) -> RResult<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => {
                *clock += cost.alu;
                Ok(Value::Int(-i))
            }
            Value::Real(r) => {
                *clock += cost.fp;
                Ok(Value::Real(-r))
            }
            other => type_err(format!("negate {other}")),
        },
        UnOp::Not => Ok(Value::Bool(!v.truthy().map_err(RuntimeError::Type)?)),
    }
}
