//! Differential harness: run the same workload through the tree-walking
//! interpreter (the reference) and the bytecode VM, and compare every
//! observable — result, printed output, final heap, cycle count,
//! [`ExecStats`], conflict set, and shape reports.
//!
//! Conflict lists are compared as sorted sets: the two detectors report
//! the same conflicts in different orders (pair-major vs slot-major). On
//! error, only the rendered error message is compared — both engines
//! discard the machine on error, and the VM may have evaluated operands
//! textually after the faulting one (see [`crate::vm`] docs).

use crate::compile::{CompileOptions, CompiledProgram};
use crate::exec::{Conflict, Exec, ExecStats, MachineConfig, RuntimeError};
use crate::interp::Interp;
use crate::shapecheck::ShapeReport;
use crate::value::Value;
use crate::vm::Vm;
use adds_lang::types::TypedProgram;

/// Everything observable about one finished run.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Call result, errors rendered to their display string.
    pub result: Result<Value, String>,
    /// Printed lines.
    pub output: Vec<String>,
    /// Final clock.
    pub clock: u64,
    /// Execution counters.
    pub stats: ExecStats,
    /// Detected conflicts, sorted.
    pub conflicts: Vec<Conflict>,
    /// Shape reports, in emission order.
    pub shapes: Vec<ShapeReport>,
    /// Final heap: (type, slots) per record, in allocation order.
    pub heap: Vec<(String, Vec<Value>)>,
}

impl Outcome {
    /// Snapshot a finished machine.
    pub fn observe(m: &dyn Exec, result: Result<Value, RuntimeError>) -> Outcome {
        let heap = m.heap();
        let mut records = Vec::with_capacity(heap.len());
        for id in 0..heap.len() {
            let r = heap.record(id as u32).expect("dense heap");
            records.push((r.type_name.to_string(), r.slots.to_vec()));
        }
        let mut conflicts = m.conflicts().to_vec();
        conflicts.sort();
        Outcome {
            result: result.map_err(|e| e.to_string()),
            output: m.output().to_vec(),
            clock: m.clock(),
            stats: m.stats().clone(),
            conflicts,
            shapes: m.shape_reports().to_vec(),
            heap: records,
        }
    }
}

/// Run `entry` under `cfg` on both engines. `setup` builds the input heap
/// (through the engine-agnostic [`Exec`] interface) and returns the entry
/// arguments; it runs once per engine.
pub fn run_pair(
    tp: &TypedProgram,
    cfg: &MachineConfig,
    entry: &str,
    setup: impl FnMut(&mut dyn Exec) -> Vec<Value>,
) -> (Outcome, Outcome) {
    run_pair_with(tp, cfg, CompileOptions::default(), entry, setup)
}

/// [`run_pair`] with explicit compile-time optimization switches for the
/// VM side (the interpreter has no compile step — it is the oracle for
/// every switch combination).
pub fn run_pair_with(
    tp: &TypedProgram,
    cfg: &MachineConfig,
    opts: CompileOptions,
    entry: &str,
    mut setup: impl FnMut(&mut dyn Exec) -> Vec<Value>,
) -> (Outcome, Outcome) {
    let mut interp = Interp::new(tp, cfg.clone());
    let args = setup(&mut interp);
    let r = Interp::call(&mut interp, entry, &args);
    let reference = Outcome::observe(&interp, r);

    let compiled = CompiledProgram::compile_with(tp, opts);
    let mut vm = Vm::new(&compiled, cfg.clone());
    let args = setup(&mut vm);
    let r = Vm::call(&mut vm, entry, &args);
    let candidate = Outcome::observe(&vm, r);

    (reference, candidate)
}

/// [`run_pair`] plus the equivalence assertion; `label` names the workload
/// in panic messages.
pub fn assert_equivalent(
    label: &str,
    tp: &TypedProgram,
    cfg: &MachineConfig,
    entry: &str,
    setup: impl FnMut(&mut dyn Exec) -> Vec<Value>,
) {
    assert_equivalent_with(label, tp, cfg, CompileOptions::default(), entry, setup)
}

/// [`assert_equivalent`] with explicit compile-time optimization switches.
pub fn assert_equivalent_with(
    label: &str,
    tp: &TypedProgram,
    cfg: &MachineConfig,
    opts: CompileOptions,
    entry: &str,
    setup: impl FnMut(&mut dyn Exec) -> Vec<Value>,
) {
    let (reference, candidate) = run_pair_with(tp, cfg, opts, entry, setup);
    match (&reference.result, &candidate.result) {
        (Err(a), Err(b)) => {
            assert_eq!(a, b, "{label}: engines report different errors");
        }
        _ => {
            assert_eq!(
                reference,
                candidate,
                "{label}: VM diverged from the interpreter \
                 (pes={}, speculative={}, detect={}, strict={}, shapes={}, \
                  inline={}, fuse={})",
                cfg.pes,
                cfg.speculative,
                cfg.detect_conflicts,
                cfg.strict_conflicts,
                cfg.check_shapes,
                opts.inline,
                opts.fuse
            );
        }
    }
}

/// Engine-agnostic input builders for the corpus programs, shared by the
/// differential tests and the machine benchmarks.
pub mod workloads {
    use super::*;

    /// Build a `ListNode {coef, exp, next}` chain with `coef = i`,
    /// `exp = 2 i` for i in 0..n; returns the head.
    pub fn scale_list(m: &mut dyn Exec, n: usize) -> Value {
        let mut head = Value::Null;
        for i in (0..n).rev() {
            let node = m.host_alloc("ListNode");
            m.host_store(node, "coef", 0, Value::Int(i as i64));
            m.host_store(node, "exp", 0, Value::Int(2 * i as i64));
            m.host_store(node, "next", 0, head);
            head = Value::Ptr(node);
        }
        head
    }

    /// Build an `L {v, next}` chain with `v = i` for i in 0..n.
    pub fn sum_list(m: &mut dyn Exec, n: usize) -> Value {
        let mut head = Value::Null;
        for i in (0..n).rev() {
            let node = m.host_alloc("L");
            m.host_store(node, "v", 0, Value::Int(i as i64));
            m.host_store(node, "next", 0, head);
            head = Value::Ptr(node);
        }
        head
    }

    /// Build a ragged `OrthList` orthogonal list: row r (of width
    /// `widths[r]`) holds `data = 100 r + j`, entries chained along
    /// `across`, row heads chained along `down`. Returns the row-head
    /// chain.
    pub fn orth_rows(m: &mut dyn Exec, widths: &[usize]) -> Value {
        let mut rows = Value::Null;
        for (r, w) in widths.iter().enumerate().rev() {
            let mut across = Value::Null;
            let mut head = None;
            for j in (0..*w).rev() {
                let node = m.host_alloc("OrthList");
                m.host_store(node, "data", 0, Value::Int((100 * r + j) as i64));
                m.host_store(node, "across", 0, across);
                across = Value::Ptr(node);
                head = Some(node);
            }
            let head = head.expect("non-empty row");
            m.host_store(head, "down", 0, rows);
            rows = Value::Ptr(head);
        }
        rows
    }

    /// Build two one-node `BinTree`s where `p2->left` holds a subtree;
    /// returns `[p1, p2]` for `move_subtree`.
    pub fn bintree_pair(m: &mut dyn Exec) -> Vec<Value> {
        let p1 = m.host_alloc("BinTree");
        let p2 = m.host_alloc("BinTree");
        let sub = m.host_alloc("BinTree");
        m.host_store(p1, "data", 0, Value::Int(1));
        m.host_store(p2, "data", 0, Value::Int(2));
        m.host_store(sub, "data", 0, Value::Int(3));
        m.host_store(p2, "left", 0, Value::Ptr(sub));
        vec![Value::Ptr(p1), Value::Ptr(p2)]
    }
}
