//! Concurrency: 8 real threads hammering get/put/commit on one store
//! while a background thread rotates segments under them — mirroring the
//! single-flight pattern of `crates/serve/tests/server_http.rs`, but at
//! the disk tier. The invariants: no torn read (every `get` is either
//! absent or byte-identical to what was put), the index stays consistent,
//! and a reopen after the storm recovers every committed entry.

use adds_store::{FaultIo, Store, StoreIo, StoreOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const KEYS_PER_THREAD: u8 = 40;

fn key(thread: usize, n: u8) -> [u8; 32] {
    let mut k = [0u8; 32];
    k[0] = thread as u8;
    k[1] = n;
    k[31] = 0xa5;
    k
}

/// Value bytes derived from the key — a torn or cross-wired read cannot
/// produce a byte-identical match.
fn value(thread: usize, n: u8) -> Vec<u8> {
    let mut state = (thread as u64) << 32 | (n as u64) | 0x5eed;
    let len = 16 + ((thread * 31 + n as usize) % 120);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 29) as u8
        })
        .collect()
}

#[test]
fn eight_threads_and_a_rotator_never_tear_a_read() {
    // A small cap so organic rotation happens under load too.
    let io = Arc::new(FaultIo::new());
    let store = Arc::new(
        Store::open_with(
            Arc::clone(&io) as Arc<dyn StoreIo>,
            StoreOptions { segment_cap: 4096 },
        )
        .expect("open"),
    );

    let done = Arc::new(AtomicBool::new(false));
    let rotator = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut rotations = 0u32;
            while !done.load(Ordering::SeqCst) {
                store.rotate();
                rotations += 1;
                std::thread::yield_now();
            }
            rotations
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for n in 0..KEYS_PER_THREAD {
                    let v = value(t, n);
                    assert!(store.put(&key(t, n), "concurrency/v1", &v));
                    // Re-read own writes (pending or committed) and probe
                    // neighbors' keys while the rotator churns segments.
                    let got = store.get(&key(t, n), "concurrency/v1");
                    assert_eq!(got.as_deref(), Some(v.as_slice()), "own write torn");
                    let peer = (t + 1) % THREADS;
                    if let Some(got) = store.get(&key(peer, n), "concurrency/v1") {
                        assert_eq!(got, value(peer, n), "peer read torn");
                    }
                    if n % 5 == 4 {
                        store.commit().expect("commit under load");
                    }
                }
                store.commit().expect("final thread commit");
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker");
    }
    done.store(true, Ordering::SeqCst);
    rotator.join().expect("rotator");

    // Index consistency: every key present exactly once, byte-identical.
    let total = THREADS * KEYS_PER_THREAD as usize;
    assert_eq!(store.len(), total);
    assert_eq!(store.pending(), 0);
    for t in 0..THREADS {
        for n in 0..KEYS_PER_THREAD {
            assert_eq!(
                store.get(&key(t, n), "concurrency/v1").as_deref(),
                Some(value(t, n).as_slice())
            );
        }
    }
    let stats = store.stats();
    assert_eq!(stats.entries, total as u64);
    assert_eq!(stats.commit_failures, 0);
    assert!(stats.segments >= 2, "rotator must have split the stream");

    // Everything committed survives a restart.
    let survivor = Arc::new(io.surviving());
    let reopened =
        Store::open_with(survivor as Arc<dyn StoreIo>, StoreOptions::default()).expect("reopen");
    assert_eq!(reopened.len(), total);
    for t in 0..THREADS {
        for n in 0..KEYS_PER_THREAD {
            assert_eq!(
                reopened.get(&key(t, n), "concurrency/v1").as_deref(),
                Some(value(t, n).as_slice()),
                "committed entry lost across restart"
            );
        }
    }
    assert_eq!(reopened.stats().quarantined_records, 0);
    assert_eq!(reopened.stats().truncated_bytes, 0);
}

/// The duplicate-put race: many threads putting the same key must settle
/// on exactly one stored copy (values are immutable per key).
#[test]
fn concurrent_identical_puts_store_one_copy() {
    let store = Arc::new(
        Store::open_with(
            Arc::new(FaultIo::new()) as Arc<dyn StoreIo>,
            StoreOptions::default(),
        )
        .expect("open"),
    );
    let k = key(0, 7);
    let v = value(0, 7);
    let accepted: usize = {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let store = Arc::clone(&store);
                let v = v.clone();
                std::thread::spawn(move || store.put(&k, "single/v1", &v) as usize)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    };
    assert_eq!(accepted, 1, "exactly one put wins");
    store.commit().expect("commit");
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&k, "single/v1").as_deref(), Some(v.as_slice()));
}
