//! The durability harness: crash the store at **every byte boundary** of
//! its write stream and prove that recovery (a) never loses a committed
//! entry — byte-identical after reopen — (b) truncates torn tails
//! silently, and (c) never serves a damaged record: a flipped byte
//! anywhere is caught by the checksum and quarantined.
//!
//! Run with `cargo test -p adds-store --features fault-injection` — the
//! exhaustive sweeps are gated out of the default workspace run.

#![cfg(feature = "fault-injection")]

use adds_store::{FaultIo, Store, StoreIo, StoreOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn key(n: u8) -> [u8; 32] {
    let mut k = [0u8; 32];
    k[0] = n;
    k[31] = n.wrapping_mul(37);
    k
}

fn fp(n: u8) -> String {
    format!("analyze/v2(effects/v1)#case={n}")
}

/// Deterministic pseudo-random value bytes: length and content both vary
/// with the key, so a served-but-wrong value cannot accidentally match.
fn value_for(n: u8) -> Vec<u8> {
    let len = 5 + (n as usize * 7) % 90;
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (n as u64);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// One step of a schedule: buffer a put or commit everything pending.
#[derive(Clone, Copy, Debug)]
enum Op {
    Put(u8),
    Commit,
}

/// Drive `ops` against a store over `io`, stopping at the injected crash.
/// Returns the entries covered by a commit that returned `Ok` — the
/// durability contract's "committed" set.
fn run_schedule(io: Arc<FaultIo>, ops: &[Op], segment_cap: u64) -> BTreeMap<u8, Vec<u8>> {
    let store = match Store::open_with(io as Arc<dyn StoreIo>, StoreOptions { segment_cap }) {
        Ok(s) => s,
        Err(_) => return BTreeMap::new(),
    };
    let mut pending: Vec<u8> = Vec::new();
    let mut committed = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(n) => {
                if store.put(&key(*n), &fp(*n), &value_for(*n)) {
                    pending.push(*n);
                }
            }
            Op::Commit => match store.commit() {
                Ok(_) => {
                    for n in pending.drain(..) {
                        committed.insert(n, value_for(n));
                    }
                }
                Err(_) => break,
            },
        }
    }
    committed
}

/// Reopen over the surviving bytes and check the two core invariants:
/// every committed entry is served byte-identically, and nothing is ever
/// served with wrong bytes (a key is either absent or exact).
fn check_recovery(io: &FaultIo, committed: &BTreeMap<u8, Vec<u8>>, all_keys: &[u8]) {
    let survivor = Arc::new(io.surviving());
    let store = Store::open_with(survivor as Arc<dyn StoreIo>, StoreOptions::default())
        .expect("recovery must always open");
    for (n, expected) in committed {
        let got = store.get(&key(*n), &fp(*n));
        assert_eq!(
            got.as_deref(),
            Some(expected.as_slice()),
            "committed entry {n} lost or damaged after crash"
        );
    }
    for n in all_keys {
        if let Some(got) = store.get(&key(*n), &fp(*n)) {
            assert_eq!(
                got,
                value_for(*n),
                "entry {n} served with corrupt bytes after crash"
            );
        }
    }
    // The recovered store is fully writable again.
    assert!(store.put(&key(201), "post-recovery/v1", b"fresh"));
    store.commit().expect("post-recovery commit");
    assert_eq!(
        store.get(&key(201), "post-recovery/v1").as_deref(),
        Some(&b"fresh"[..])
    );
}

/// A fixed mixed schedule: several commit batches across a rotation
/// boundary, with interleaved puts left pending at the end.
fn mixed_schedule() -> Vec<Op> {
    let mut ops = Vec::new();
    for n in 0..6u8 {
        ops.push(Op::Put(n));
    }
    ops.push(Op::Commit);
    for n in 6..11u8 {
        ops.push(Op::Put(n));
        if n % 2 == 0 {
            ops.push(Op::Commit);
        }
    }
    ops.push(Op::Commit);
    for n in 11..14u8 {
        ops.push(Op::Put(n));
    }
    ops.push(Op::Commit);
    ops.push(Op::Put(14));
    ops
}

/// (a) + (b): kill the write stream at **every** byte boundary from 0 to
/// the full stream length; after each crash, reopen and verify no
/// committed entry is lost or damaged and torn tails truncate silently.
#[test]
fn every_byte_boundary_crash_preserves_committed_entries() {
    let ops = mixed_schedule();
    let all_keys: Vec<u8> = (0..15).collect();
    // Dry run to learn the total write-stream length.
    let dry = Arc::new(FaultIo::new());
    let full = run_schedule(Arc::clone(&dry), &ops, 400);
    assert_eq!(
        full.len(),
        14,
        "dry run commits everything but the tail put"
    );
    let total = dry.appended();
    assert!(total > 500, "schedule must exercise a real stream: {total}");

    for budget in 0..=total {
        let io = Arc::new(FaultIo::with_budget(budget));
        let committed = run_schedule(Arc::clone(&io), &ops, 400);
        check_recovery(&io, &committed, &all_keys);
    }
}

/// (b) explicitly: a crash strictly inside a record's bytes means the
/// reopened store sees a shorter file than was appended — the torn tail
/// was truncated, silently, and the store still opens and serves.
#[test]
fn torn_tails_are_truncated_not_fatal() {
    let ops = vec![Op::Put(1), Op::Commit, Op::Put(2), Op::Commit];
    let dry = Arc::new(FaultIo::new());
    run_schedule(Arc::clone(&dry), &ops, 1 << 20);
    let total = dry.appended();
    let mut torn_seen = 0u32;
    for budget in 1..total {
        let io = Arc::new(FaultIo::with_budget(budget));
        run_schedule(Arc::clone(&io), &ops, 1 << 20);
        if !io.crashed() {
            continue;
        }
        let survivor = Arc::new(io.surviving());
        let before: u64 = survivor
            .list()
            .unwrap()
            .iter()
            .map(|n| survivor.len(n).unwrap())
            .sum();
        let store = Store::open_with(
            Arc::clone(&survivor) as Arc<dyn StoreIo>,
            StoreOptions::default(),
        )
        .expect("opens despite the torn tail");
        let after: u64 = survivor
            .list()
            .unwrap()
            .iter()
            .map(|n| survivor.len(n).unwrap())
            .sum();
        let stats = store.stats();
        assert_eq!(
            before - after,
            stats.truncated_bytes,
            "truncation accounted"
        );
        if stats.truncated_bytes > 0 {
            torn_seen += 1;
        }
        assert_eq!(
            stats.quarantined_records, 0,
            "a torn tail is not corruption"
        );
    }
    assert!(
        torn_seen > 10,
        "the sweep must hit real torn tails: {torn_seen}"
    );
}

/// (c): flip a byte at **every** offset of the committed segment files —
/// header, length, checksum, key, fingerprint, value — and verify the
/// damaged store opens and never serves wrong bytes: every key is either
/// absent (quarantined) or byte-identical.
#[test]
fn a_flipped_byte_anywhere_is_quarantined_never_served() {
    let ops = vec![
        Op::Put(1),
        Op::Put(2),
        Op::Put(3),
        Op::Commit,
        Op::Put(4),
        Op::Put(5),
        Op::Commit,
    ];
    let io = Arc::new(FaultIo::new());
    let committed = run_schedule(Arc::clone(&io), &ops, 300);
    assert_eq!(committed.len(), 5);
    let files: Vec<(String, u64)> = {
        let clean = io.surviving();
        clean
            .list()
            .unwrap()
            .into_iter()
            .map(|n| {
                let len = clean.len(&n).unwrap();
                (n, len)
            })
            .collect()
    };
    let mut quarantines = 0u64;
    for (name, len) in &files {
        for offset in 0..*len {
            let damaged = Arc::new(io.surviving());
            assert!(damaged.flip_byte(name, offset));
            let store = Store::open_with(
                Arc::clone(&damaged) as Arc<dyn StoreIo>,
                StoreOptions::default(),
            )
            .expect("a damaged store still opens");
            for (n, expected) in &committed {
                match store.get(&key(*n), &fp(*n)) {
                    None => quarantines += 1,
                    Some(got) => assert_eq!(
                        &got, expected,
                        "flip at {name}:{offset} served corrupt bytes for entry {n}"
                    ),
                }
            }
        }
    }
    assert!(
        quarantines > 0,
        "the sweep must actually quarantine damaged records"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random put/commit/crash schedules: the committed set survives
    /// reopen byte-identically and nothing corrupt is ever served, at a
    /// random crash budget and segment cap.
    #[test]
    fn random_schedules_survive_random_crashes(
        raw in proptest::collection::vec((0u8..24, 0u8..4), 1..60),
        budget_permille in 0u64..1100,
        cap in 200u64..2000,
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(n, sel)| if sel == 3 { Op::Commit } else { Op::Put(n) })
            .collect();
        let all_keys: Vec<u8> = (0..24).collect();
        let dry = Arc::new(FaultIo::new());
        run_schedule(Arc::clone(&dry), &ops, cap);
        let total = dry.appended();
        let budget = total * budget_permille / 1000;
        let io = Arc::new(FaultIo::with_budget(budget));
        let committed = run_schedule(Arc::clone(&io), &ops, cap);
        check_recovery(&io, &committed, &all_keys);
    }
}
