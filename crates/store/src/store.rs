//! The append-only segment store: an in-memory index over checksummed,
//! length-prefixed records in numbered segment files, with write-behind
//! `put` (buffered until an explicit [`Store::commit`]), segment rotation
//! at a size cap, offline compaction, and crash-safe recovery — a torn
//! tail truncates silently, a checksum mismatch quarantines the record
//! instead of serving it.

use crate::crc::crc32;
use crate::io::{DiskIo, StoreIo};
use adds_obs::trace;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the on-disk segment record layout.
pub const SEGMENT_SCHEMA: &str = "adds.store-segment/v1";

/// Schema tag of the snapshot stream ([`Store::export`]/[`Store::import`]).
pub const SNAPSHOT_SCHEMA: &str = "adds.store-snapshot/v1";

/// 8-byte magic leading every segment file.
const SEG_MAGIC: &[u8; 8] = b"ADDSSEG1";

/// 8-byte magic leading a snapshot stream.
const SNAP_MAGIC: &[u8; 8] = b"ADDSSNP1";

/// Record header: payload length (u32 LE) + payload CRC-32 (u32 LE).
const REC_HEADER: usize = 8;

/// Minimum payload: 32-byte key + u16 fingerprint length.
const REC_MIN_PAYLOAD: usize = 34;

/// Store construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_cap: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        // Reports are a few KB each; 8 MiB keeps segment counts low while
        // still bounding the recovery scan and compaction unit.
        StoreOptions {
            segment_cap: 8 * 1024 * 1024,
        }
    }
}

/// Monotonic store counters (atomics; shared snapshots via
/// [`Store::stats`]).
#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    puts_ignored: AtomicU64,
    commits: AtomicU64,
    commit_failures: AtomicU64,
    committed_records: AtomicU64,
    committed_bytes: AtomicU64,
    recovered_records: AtomicU64,
    truncated_bytes: AtomicU64,
    quarantined_records: AtomicU64,
    rotations: AtomicU64,
    compactions: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }
}

/// A point-in-time view of every store counter plus the index shape —
/// what `/v1/stats` and `adds-cli store stats` render.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Committed entries in the index.
    pub entries: u64,
    /// Entries written behind but not yet committed.
    pub pending: u64,
    /// Segment files (including the active one).
    pub segments: u64,
    /// Bytes of live (indexed) records, headers included.
    pub live_bytes: u64,
    /// `get` calls.
    pub gets: u64,
    /// `get` calls answered (from the index or the pending buffer).
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// New entries accepted into the pending buffer.
    pub puts: u64,
    /// `put` calls ignored (key already stored, or store poisoned).
    pub puts_ignored: u64,
    /// Successful non-empty commits.
    pub commits: u64,
    /// Commits that failed at the IO layer (store poisoned).
    pub commit_failures: u64,
    /// Records made durable by commits.
    pub committed_records: u64,
    /// Bytes appended by commits.
    pub committed_bytes: u64,
    /// Records re-indexed by recovery on open.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated by recovery.
    pub truncated_bytes: u64,
    /// Records dropped for checksum/framing mismatches (open or read).
    pub quarantined_records: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Compactions completed.
    pub compactions: u64,
}

/// Where a committed record lives.
#[derive(Clone, Copy, Debug)]
struct Loc {
    seg: u64,
    /// Offset of the record header within the segment.
    off: u64,
    /// Payload length.
    len: u32,
}

type Key = ([u8; 32], String);

#[derive(Default)]
struct Inner {
    index: HashMap<Key, Loc>,
    /// Write-behind buffer: insertion order is the commit's append order,
    /// so two stores fed the same puts produce byte-identical segments.
    pending: Vec<(Key, Vec<u8>)>,
    segments: BTreeSet<u64>,
    active: u64,
    active_len: u64,
    live_bytes: u64,
    /// Set when a commit failed mid-append: the on-disk tail is untrusted
    /// until a reopen re-runs recovery, so further writes are refused.
    poisoned: bool,
}

impl Inner {
    fn pending_get(&self, key: &[u8; 32], fp: &str) -> Option<&[u8]> {
        self.pending
            .iter()
            .find(|((k, f), _)| k == key && f == fp)
            .map(|(_, v)| v.as_slice())
    }

    fn has(&self, key: &[u8; 32], fp: &str) -> bool {
        // Cheap scan: the pending buffer stays small (it drains on every
        // commit), and the index probe is a hash lookup.
        self.index.contains_key(&(*key, fp.to_string())) || self.pending_get(key, fp).is_some()
    }
}

/// The crash-safe disk tier: a content-addressed `(key, fingerprint) →
/// bytes` store over append-only segment files. Values are immutable per
/// key — the cache contract guarantees the same `(sha256, fingerprint)`
/// always maps to the same bytes — so `put` of an existing key is a
/// no-op, and recovery's last-record-wins rule only matters across
/// compaction crash windows.
pub struct Store {
    io: Arc<dyn StoreIo>,
    opts: StoreOptions,
    counters: Counters,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Store")
            .field("entries", &s.entries)
            .field("pending", &s.pending)
            .field("segments", &s.segments)
            .field("live_bytes", &s.live_bytes)
            .finish()
    }
}

fn seg_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

fn parse_seg_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Append one framed record (`len | crc | key | fp_len | fp | value`).
fn encode_record(buf: &mut Vec<u8>, key: &[u8; 32], fp: &str, value: &[u8]) -> io::Result<u32> {
    if fp.len() > u16::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "fingerprint longer than 64KiB",
        ));
    }
    let plen = REC_MIN_PAYLOAD + fp.len() + value.len();
    if plen > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "record larger than 4GiB",
        ));
    }
    let mut payload = Vec::with_capacity(plen);
    payload.extend_from_slice(key);
    payload.extend_from_slice(&(fp.len() as u16).to_le_bytes());
    payload.extend_from_slice(fp.as_bytes());
    payload.extend_from_slice(value);
    buf.extend_from_slice(&(plen as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(plen as u32)
}

/// A decoded record payload.
struct Record<'a> {
    key: [u8; 32],
    fp: &'a str,
    value: &'a [u8],
}

fn decode_payload(payload: &[u8]) -> Option<Record<'_>> {
    if payload.len() < REC_MIN_PAYLOAD {
        return None;
    }
    let mut key = [0u8; 32];
    key.copy_from_slice(&payload[..32]);
    let fp_len = u16::from_le_bytes([payload[32], payload[33]]) as usize;
    let fp_end = REC_MIN_PAYLOAD.checked_add(fp_len)?;
    if fp_end > payload.len() {
        return None;
    }
    let fp = std::str::from_utf8(&payload[REC_MIN_PAYLOAD..fp_end]).ok()?;
    Some(Record {
        key,
        fp,
        value: &payload[fp_end..],
    })
}

/// Outcome of a [`Store::compact`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Segment files before.
    pub segments_before: u64,
    /// Segment files after.
    pub segments_after: u64,
    /// Live records rewritten.
    pub live_records: u64,
    /// Bytes reclaimed (old file bytes minus rewritten bytes).
    pub reclaimed_bytes: u64,
}

impl Store {
    /// Open (or create) a store over a real directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with(
            Arc::new(DiskIo::open(dir.as_ref().to_path_buf())?),
            StoreOptions::default(),
        )
    }

    /// Open a store over any [`StoreIo`], running recovery: every segment
    /// is scanned, checksums verified, a torn tail of the newest segment
    /// truncated (crash mid-append), and corrupt records quarantined —
    /// the store always opens, it just refuses to serve damaged data.
    pub fn open_with(io: Arc<dyn StoreIo>, opts: StoreOptions) -> io::Result<Store> {
        let mut span = trace::span("store.open", "store");
        let store = Store {
            io,
            opts,
            counters: Counters::default(),
            inner: Mutex::new(Inner::default()),
        };
        store.recover()?;
        if let Some(s) = span.as_mut() {
            let snap = store.stats();
            s.arg("entries", snap.entries.to_string());
            s.arg("segments", snap.segments.to_string());
        }
        Ok(store)
    }

    /// Rebuild the index by scanning every segment in id order (so a
    /// later record for the same key — compaction's rewrite — wins).
    fn recover(&self) -> io::Result<()> {
        let mut span = trace::span("store.recover", "store");
        let mut ids: Vec<u64> = self
            .io
            .list()?
            .iter()
            .filter_map(|n| parse_seg_name(n))
            .collect();
        ids.sort_unstable();
        let mut inner = self.inner.lock().expect("store inner");
        let last_idx = ids.len().saturating_sub(1);
        for (i, &id) in ids.iter().enumerate() {
            self.scan_segment(&mut inner, id, i == last_idx)?;
            inner.segments.insert(id);
        }
        inner.active = ids.last().copied().unwrap_or(1);
        let active = inner.active;
        inner.segments.insert(active);
        inner.active_len = self.io.len(&seg_name(inner.active)).unwrap_or(0);
        if let Some(s) = span.as_mut() {
            s.arg(
                "recovered",
                self.counters
                    .get(&self.counters.recovered_records)
                    .to_string(),
            );
            s.arg(
                "truncated_bytes",
                self.counters
                    .get(&self.counters.truncated_bytes)
                    .to_string(),
            );
        }
        Ok(())
    }

    fn scan_segment(&self, inner: &mut Inner, id: u64, is_last: bool) -> io::Result<()> {
        let name = seg_name(id);
        let bytes = self.io.read(&name)?;
        // A tail starting at `off` that cannot be a complete record: on
        // the newest segment that is the torn write of a crashed commit —
        // truncate it silently. On an older segment it is corruption
        // (rotation only follows a successful commit), so quarantine the
        // remainder without destroying evidence.
        let torn_tail = |store: &Store, off: usize| -> io::Result<()> {
            if is_last {
                store.io.truncate(&name, off as u64)?;
                store
                    .counters
                    .add(&store.counters.truncated_bytes, (bytes.len() - off) as u64);
            } else {
                store.counters.bump(&store.counters.quarantined_records);
            }
            Ok(())
        };
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
            return torn_tail(self, 0);
        }
        let mut off = SEG_MAGIC.len();
        while off < bytes.len() {
            let rem = bytes.len() - off;
            if rem < REC_HEADER {
                return torn_tail(self, off);
            }
            let plen = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if plen < REC_MIN_PAYLOAD || plen > rem - REC_HEADER {
                return torn_tail(self, off);
            }
            let payload = &bytes[off + REC_HEADER..off + REC_HEADER + plen];
            let end = off + REC_HEADER + plen;
            if crc32(payload) != crc {
                if is_last && end == bytes.len() {
                    // A partially-flushed final record: torn, not rot.
                    return torn_tail(self, off);
                }
                // Mid-file damage: skip this record, never serve it. If
                // the length field itself was hit, the scan resyncs at a
                // wrong offset and the cascade quarantines the rest of
                // the segment — still never serving a damaged byte.
                self.counters.bump(&self.counters.quarantined_records);
                off = end;
                continue;
            }
            match decode_payload(payload) {
                Some(rec) => {
                    let key = (rec.key, rec.fp.to_string());
                    let loc = Loc {
                        seg: id,
                        off: off as u64,
                        len: plen as u32,
                    };
                    if let Some(old) = inner.index.insert(key, loc) {
                        inner.live_bytes -= REC_HEADER as u64 + old.len as u64;
                    }
                    inner.live_bytes += (REC_HEADER + plen) as u64;
                    self.counters.bump(&self.counters.recovered_records);
                }
                None => self.counters.bump(&self.counters.quarantined_records),
            }
            off = end;
        }
        Ok(())
    }

    /// Fetch the committed (or pending) value for `(key, fp)`. Every disk
    /// read re-verifies the record checksum; a mismatch quarantines the
    /// entry — it is dropped from the index and `None` returned, so the
    /// caller recomputes rather than ever seeing damaged bytes.
    pub fn get(&self, key: &[u8; 32], fp: &str) -> Option<Vec<u8>> {
        let mut span = trace::span("store.get", "store");
        self.counters.bump(&self.counters.gets);
        let mut inner = self.inner.lock().expect("store inner");
        if let Some(v) = inner.pending_get(key, fp) {
            let v = v.to_vec();
            self.counters.bump(&self.counters.hits);
            if let Some(s) = span.as_mut() {
                s.arg("outcome", "pending");
            }
            return Some(v);
        }
        let k = (*key, fp.to_string());
        let Some(loc) = inner.index.get(&k).copied() else {
            self.counters.bump(&self.counters.misses);
            if let Some(s) = span.as_mut() {
                s.arg("outcome", "miss");
            }
            return None;
        };
        match self.read_record(loc, key, fp) {
            Some(value) => {
                self.counters.bump(&self.counters.hits);
                if let Some(s) = span.as_mut() {
                    s.arg("outcome", "hit");
                }
                Some(value)
            }
            None => {
                inner.index.remove(&k);
                inner.live_bytes -= REC_HEADER as u64 + loc.len as u64;
                self.counters.bump(&self.counters.quarantined_records);
                self.counters.bump(&self.counters.misses);
                if let Some(s) = span.as_mut() {
                    s.arg("outcome", "quarantined");
                }
                None
            }
        }
    }

    /// Read and fully re-verify one indexed record.
    fn read_record(&self, loc: Loc, key: &[u8; 32], fp: &str) -> Option<Vec<u8>> {
        let bytes = self
            .io
            .read_at(&seg_name(loc.seg), loc.off, REC_HEADER + loc.len as usize)
            .ok()?;
        let plen = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if plen != loc.len {
            return None;
        }
        let payload = &bytes[REC_HEADER..];
        if crc32(payload) != crc {
            return None;
        }
        let rec = decode_payload(payload)?;
        if rec.key != *key || rec.fp != fp {
            return None;
        }
        Some(rec.value.to_vec())
    }

    /// Write-behind: buffer `(key, fp) → value` for the next
    /// [`Store::commit`]. Pending entries are served by [`Store::get`]
    /// immediately but are not durable until committed. Returns `false`
    /// (and changes nothing) when the key is already stored — values are
    /// immutable under the cache contract — or when the store is
    /// poisoned by a failed commit.
    pub fn put(&self, key: &[u8; 32], fp: &str, value: &[u8]) -> bool {
        let mut span = trace::span("store.put", "store");
        let mut inner = self.inner.lock().expect("store inner");
        let accepted = !inner.poisoned && !inner.has(key, fp);
        if accepted {
            inner.pending.push(((*key, fp.to_string()), value.to_vec()));
            self.counters.bump(&self.counters.puts);
        } else {
            self.counters.bump(&self.counters.puts_ignored);
        }
        if let Some(s) = span.as_mut() {
            s.arg("accepted", if accepted { "true" } else { "false" });
        }
        accepted
    }

    /// Entries currently buffered but not yet durable.
    pub fn pending(&self) -> usize {
        self.inner.lock().expect("store inner").pending.len()
    }

    /// Committed entries in the index.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store inner").index.len()
    }

    /// True when no entry is committed or pending.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("store inner");
        inner.index.is_empty() && inner.pending.is_empty()
    }

    /// The durability boundary: append every pending record to the active
    /// segment, `fsync`, and only then move them into the index. An entry
    /// is *committed* — guaranteed to survive any later crash — exactly
    /// when the commit that covered it returned `Ok`. A failed commit
    /// poisons the store (the on-disk tail is untrusted until a reopen
    /// re-runs recovery). Returns the number of records made durable.
    pub fn commit(&self) -> io::Result<usize> {
        let mut span = trace::span("store.commit", "store");
        let mut inner = self.inner.lock().expect("store inner");
        if inner.poisoned {
            return Err(io::Error::other(
                "store poisoned by a failed commit; reopen to recover",
            ));
        }
        if inner.pending.is_empty() {
            return Ok(0);
        }
        let name = seg_name(inner.active);
        let mut buf = Vec::new();
        if inner.active_len == 0 {
            buf.extend_from_slice(SEG_MAGIC);
        }
        let base = inner.active_len;
        let mut placed = Vec::with_capacity(inner.pending.len());
        for ((key, fp), value) in &inner.pending {
            let off = base + buf.len() as u64;
            let plen = encode_record(&mut buf, key, fp, value)?;
            placed.push(((*key, fp.clone()), off, plen));
        }
        if let Err(e) = self
            .io
            .append(&name, &buf)
            .and_then(|()| self.io.sync(&name))
        {
            inner.poisoned = true;
            self.counters.bump(&self.counters.commit_failures);
            return Err(e);
        }
        let seg = inner.active;
        for (key, off, len) in placed {
            if let Some(old) = inner.index.insert(key, Loc { seg, off, len }) {
                inner.live_bytes -= REC_HEADER as u64 + old.len as u64;
            }
            inner.live_bytes += REC_HEADER as u64 + len as u64;
        }
        let committed = inner.pending.len();
        inner.pending.clear();
        inner.active_len += buf.len() as u64;
        self.counters.bump(&self.counters.commits);
        self.counters
            .add(&self.counters.committed_records, committed as u64);
        self.counters
            .add(&self.counters.committed_bytes, buf.len() as u64);
        if inner.active_len >= self.opts.segment_cap {
            self.rotate_locked(&mut inner);
        }
        if let Some(s) = span.as_mut() {
            s.arg("records", committed.to_string());
            s.arg("bytes", buf.len().to_string());
        }
        Ok(committed)
    }

    fn rotate_locked(&self, inner: &mut Inner) {
        inner.active += 1;
        inner.active_len = 0;
        let id = inner.active;
        inner.segments.insert(id);
        self.counters.bump(&self.counters.rotations);
    }

    /// Start a new active segment now (no-op while the active segment is
    /// still empty). Normally rotation happens automatically when a
    /// commit pushes the segment past [`StoreOptions::segment_cap`].
    pub fn rotate(&self) {
        let mut inner = self.inner.lock().expect("store inner");
        if inner.active_len > 0 {
            self.rotate_locked(&mut inner);
        }
    }

    /// Rewrite every live record into fresh segments and delete the old
    /// files. New segments carry higher ids than anything they replace,
    /// so a crash mid-compaction recovers to the rewritten copies (or,
    /// before the first sync, to the intact originals) by the recovery
    /// scan's last-record-wins rule. Pending entries are committed first.
    pub fn compact(&self) -> io::Result<CompactOutcome> {
        let mut span = trace::span("store.compact", "store");
        self.commit()?;
        let mut inner = self.inner.lock().expect("store inner");
        if inner.poisoned {
            return Err(io::Error::other(
                "store poisoned by a failed commit; reopen to recover",
            ));
        }
        let old_segments: Vec<u64> = inner.segments.iter().copied().collect();
        let old_bytes: u64 = old_segments
            .iter()
            .map(|&id| self.io.len(&seg_name(id)).unwrap_or(0))
            .sum();
        // Deterministic rewrite order: sorted by key, so two stores with
        // the same live set compact to byte-identical segments.
        let mut live: Vec<(Key, Loc)> = inner.index.iter().map(|(k, l)| (k.clone(), *l)).collect();
        live.sort_by(|a, b| a.0.cmp(&b.0));

        let mut next = inner.active + 1;
        let mut new_index: HashMap<Key, Loc> = HashMap::new();
        let mut new_segments = BTreeSet::new();
        let mut buf: Vec<u8> = Vec::from(*SEG_MAGIC);
        let mut new_bytes = 0u64;
        let flush = |id: u64, buf: &mut Vec<u8>, new_bytes: &mut u64| -> io::Result<()> {
            let name = seg_name(id);
            self.io.append(&name, buf)?;
            self.io.sync(&name)?;
            *new_bytes += buf.len() as u64;
            buf.clear();
            buf.extend_from_slice(SEG_MAGIC);
            Ok(())
        };
        for ((key, fp), loc) in &live {
            let value = self
                .read_record(*loc, key, fp)
                .ok_or_else(|| io::Error::other("compaction read failed checksum verification"))?;
            let off = buf.len() as u64;
            let plen = encode_record(&mut buf, key, fp, &value)?;
            new_index.insert(
                (*key, fp.clone()),
                Loc {
                    seg: next,
                    off,
                    len: plen,
                },
            );
            if buf.len() as u64 >= self.opts.segment_cap {
                flush(next, &mut buf, &mut new_bytes)?;
                new_segments.insert(next);
                next += 1;
            }
        }
        let tail_len = buf.len() as u64;
        if tail_len > SEG_MAGIC.len() as u64 || live.is_empty() {
            // Always leave an active segment, even an empty one.
            if tail_len > SEG_MAGIC.len() as u64 {
                flush(next, &mut buf, &mut new_bytes)?;
            }
            new_segments.insert(next);
        }
        for &id in &old_segments {
            if !new_segments.contains(&id) {
                let _ = self.io.remove(&seg_name(id));
            }
        }
        inner.index = new_index;
        inner.live_bytes = inner
            .index
            .values()
            .map(|l| REC_HEADER as u64 + l.len as u64)
            .sum();
        inner.active = *new_segments.iter().next_back().unwrap_or(&next);
        inner.active_len = self.io.len(&seg_name(inner.active)).unwrap_or(0);
        inner.segments = new_segments;
        self.counters.bump(&self.counters.compactions);
        let outcome = CompactOutcome {
            segments_before: old_segments.len() as u64,
            segments_after: inner.segments.len() as u64,
            live_records: live.len() as u64,
            reclaimed_bytes: old_bytes.saturating_sub(new_bytes),
        };
        if let Some(s) = span.as_mut() {
            s.arg("live_records", outcome.live_records.to_string());
            s.arg("reclaimed_bytes", outcome.reclaimed_bytes.to_string());
        }
        Ok(outcome)
    }

    /// Write a snapshot of every committed entry (pending entries are
    /// committed first) to `w`: the `ADDSSNP1` magic followed by the same
    /// framed records as segments, sorted by key for byte-stable output.
    /// Returns the number of entries exported.
    pub fn export(&self, w: &mut dyn Write) -> io::Result<usize> {
        self.commit()?;
        let inner = self.inner.lock().expect("store inner");
        let mut live: Vec<(Key, Loc)> = inner.index.iter().map(|(k, l)| (k.clone(), *l)).collect();
        live.sort_by(|a, b| a.0.cmp(&b.0));
        let mut buf = Vec::from(*SNAP_MAGIC);
        for ((key, fp), loc) in &live {
            let value = self
                .read_record(*loc, key, fp)
                .ok_or_else(|| io::Error::other("export read failed checksum verification"))?;
            encode_record(&mut buf, key, fp, &value)?;
        }
        w.write_all(&buf)?;
        Ok(live.len())
    }

    /// Load a snapshot stream produced by [`Store::export`]: every record
    /// is checksum-verified strictly (a damaged snapshot is an error, not
    /// a truncation), put, and committed. Entries already present are
    /// skipped. Returns the number of records read.
    pub fn import(&self, r: &mut dyn Read) -> io::Result<usize> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an adds.store-snapshot/v1 stream",
            ));
        }
        let mut off = SNAP_MAGIC.len();
        let mut count = 0usize;
        while off < bytes.len() {
            let rem = bytes.len() - off;
            let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt snapshot record");
            if rem < REC_HEADER {
                return Err(corrupt());
            }
            let plen = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if plen < REC_MIN_PAYLOAD || plen > rem - REC_HEADER {
                return Err(corrupt());
            }
            let payload = &bytes[off + REC_HEADER..off + REC_HEADER + plen];
            if crc32(payload) != crc {
                return Err(corrupt());
            }
            let rec = decode_payload(payload).ok_or_else(corrupt)?;
            self.put(&rec.key, rec.fp, rec.value);
            count += 1;
            off += REC_HEADER + plen;
        }
        self.commit()?;
        Ok(count)
    }

    /// Snapshot every counter plus the index shape.
    pub fn stats(&self) -> StoreSnapshot {
        let (entries, pending, segments, live_bytes) = {
            let inner = self.inner.lock().expect("store inner");
            (
                inner.index.len() as u64,
                inner.pending.len() as u64,
                inner.segments.len() as u64,
                inner.live_bytes,
            )
        };
        let c = &self.counters;
        StoreSnapshot {
            entries,
            pending,
            segments,
            live_bytes,
            gets: c.get(&c.gets),
            hits: c.get(&c.hits),
            misses: c.get(&c.misses),
            puts: c.get(&c.puts),
            puts_ignored: c.get(&c.puts_ignored),
            commits: c.get(&c.commits),
            commit_failures: c.get(&c.commit_failures),
            committed_records: c.get(&c.committed_records),
            committed_bytes: c.get(&c.committed_bytes),
            recovered_records: c.get(&c.recovered_records),
            truncated_bytes: c.get(&c.truncated_bytes),
            quarantined_records: c.get(&c.quarantined_records),
            rotations: c.get(&c.rotations),
            compactions: c.get(&c.compactions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultIo;

    fn key(n: u8) -> [u8; 32] {
        let mut k = [0u8; 32];
        k[0] = n;
        k[31] = n;
        k
    }

    fn mem_store(cap: u64) -> (Arc<FaultIo>, Store) {
        let io = Arc::new(FaultIo::new());
        let store = Store::open_with(
            Arc::clone(&io) as Arc<dyn StoreIo>,
            StoreOptions { segment_cap: cap },
        )
        .expect("open");
        (io, store)
    }

    fn reopen(io: &Arc<FaultIo>) -> (Arc<FaultIo>, Store) {
        let survivor = Arc::new(io.surviving());
        let store = Store::open_with(
            Arc::clone(&survivor) as Arc<dyn StoreIo>,
            StoreOptions::default(),
        )
        .expect("reopen");
        (survivor, store)
    }

    #[test]
    fn put_get_commit_reopen_round_trip() {
        let (io, store) = mem_store(1 << 20);
        assert!(store.put(&key(1), "analyze/v2", b"report one"));
        assert!(
            !store.put(&key(1), "analyze/v2", b"other"),
            "immutable keys: duplicate put ignored"
        );
        // Pending entries serve immediately but are not yet durable.
        assert_eq!(
            store.get(&key(1), "analyze/v2").as_deref(),
            Some(&b"report one"[..])
        );
        assert_eq!(store.pending(), 1);
        assert_eq!(store.len(), 0);
        assert_eq!(store.commit().expect("commit"), 1);
        assert_eq!(store.pending(), 0);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&key(1), "analyze/v2").as_deref(),
            Some(&b"report one"[..])
        );
        assert_eq!(
            store.get(&key(1), "parse/v1"),
            None,
            "fingerprint separates"
        );
        // Committed data survives the restart byte-identically.
        let (_io2, store2) = reopen(&io);
        assert_eq!(store2.len(), 1);
        assert_eq!(
            store2.get(&key(1), "analyze/v2").as_deref(),
            Some(&b"report one"[..])
        );
        assert_eq!(store2.stats().recovered_records, 1);
    }

    #[test]
    fn uncommitted_puts_do_not_survive_reopen() {
        let (io, store) = mem_store(1 << 20);
        store.put(&key(1), "f", b"committed");
        store.commit().expect("commit");
        store.put(&key(2), "f", b"pending only");
        let (_io2, store2) = reopen(&io);
        assert!(store2.get(&key(1), "f").is_some());
        assert_eq!(store2.get(&key(2), "f"), None);
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let (_io, store) = mem_store(1 << 20);
        assert_eq!(store.commit().expect("commit"), 0);
        assert_eq!(store.stats().commits, 0);
    }

    #[test]
    fn segments_rotate_at_the_cap_and_reads_span_them() {
        let (io, store) = mem_store(256);
        for n in 0..10u8 {
            store.put(&key(n), "f", &[n; 64]);
            store.commit().expect("commit");
        }
        let stats = store.stats();
        assert!(stats.segments > 1, "cap 256 must rotate: {stats:?}");
        assert!(stats.rotations >= 1);
        for n in 0..10u8 {
            assert_eq!(store.get(&key(n), "f").as_deref(), Some(&[n; 64][..]));
        }
        let (_io2, store2) = reopen(&io);
        for n in 0..10u8 {
            assert_eq!(store2.get(&key(n), "f").as_deref(), Some(&[n; 64][..]));
        }
    }

    #[test]
    fn torn_tail_is_truncated_silently_on_open() {
        let (io, store) = mem_store(1 << 20);
        store.put(&key(1), "f", b"whole record");
        store.commit().expect("commit");
        // Simulate a crash mid-append: half a record lands after the good one.
        io.append(&seg_name(1), &[0x55; 11]).expect("raw append");
        let (io2, store2) = reopen(&io);
        assert_eq!(
            store2.get(&key(1), "f").as_deref(),
            Some(&b"whole record"[..])
        );
        let stats = store2.stats();
        assert_eq!(stats.truncated_bytes, 11);
        assert_eq!(stats.quarantined_records, 0);
        // The truncation is durable: a third open sees a clean file.
        let (_io3, store3) = reopen(&io2);
        assert_eq!(store3.stats().truncated_bytes, 0);
        assert_eq!(store3.len(), 1);
    }

    #[test]
    fn flipped_byte_is_quarantined_on_open_never_served() {
        let (io, store) = mem_store(1 << 20);
        store.put(&key(1), "f", b"target value");
        store.put(&key(2), "f", b"later value");
        store.commit().expect("commit");
        // Find and damage a value byte of record 1 (header is 8 bytes of
        // magic; record 1 payload starts at 8 + 8).
        io.flip_byte(&seg_name(1), (8 + 8 + 34 + 1) as u64);
        let (_io2, store2) = reopen(&io);
        assert_eq!(
            store2.get(&key(1), "f"),
            None,
            "damaged record never served"
        );
        assert_eq!(
            store2.get(&key(2), "f").as_deref(),
            Some(&b"later value"[..]),
            "scan resyncs past the quarantined record"
        );
        assert!(store2.stats().quarantined_records >= 1);
        assert_eq!(store2.stats().truncated_bytes, 0, "rot is not truncation");
    }

    #[test]
    fn post_open_corruption_is_caught_by_the_read_path() {
        let (io, store) = mem_store(1 << 20);
        store.put(&key(1), "f", b"value");
        store.commit().expect("commit");
        assert!(store.get(&key(1), "f").is_some());
        // Rot after open: the per-read verification quarantines it.
        io.flip_byte(&seg_name(1), (8 + 8 + 34 + 1) as u64);
        assert_eq!(store.get(&key(1), "f"), None);
        assert_eq!(store.stats().quarantined_records, 1);
        assert_eq!(store.len(), 0, "quarantined entry left the index");
    }

    #[test]
    fn failed_commit_poisons_until_reopen() {
        let io = Arc::new(FaultIo::with_budget(20));
        let store = Store::open_with(Arc::clone(&io) as Arc<dyn StoreIo>, StoreOptions::default())
            .expect("open");
        store.put(&key(1), "f", b"does not fit in 20 bytes");
        assert!(store.commit().is_err());
        assert!(store.commit().is_err(), "poisoned store refuses commits");
        assert!(
            !store.put(&key(2), "f", b"x"),
            "poisoned store refuses puts"
        );
        assert_eq!(store.stats().commit_failures, 1);
        // The restart recovers: the torn record is truncated away.
        let survivor = Arc::new(io.surviving());
        let store2 = Store::open_with(survivor as Arc<dyn StoreIo>, StoreOptions::default())
            .expect("reopen");
        assert_eq!(store2.len(), 0);
        assert!(store2.put(&key(2), "f", b"x"));
        assert_eq!(store2.commit().expect("commit"), 1);
    }

    #[test]
    fn compaction_drops_quarantined_weight_and_preserves_live_data() {
        let (io, store) = mem_store(512);
        for n in 0..20u8 {
            store.put(&key(n), "f", &[n; 40]);
        }
        store.commit().expect("commit");
        let before = store.stats();
        assert!(before.segments > 1);
        let outcome = store.compact().expect("compact");
        assert_eq!(outcome.live_records, 20);
        for n in 0..20u8 {
            assert_eq!(store.get(&key(n), "f").as_deref(), Some(&[n; 40][..]));
        }
        // Compaction survives a restart.
        let (_io2, store2) = reopen(&io);
        assert_eq!(store2.len(), 20);
        for n in 0..20u8 {
            assert_eq!(store2.get(&key(n), "f").as_deref(), Some(&[n; 40][..]));
        }
    }

    #[test]
    fn export_import_round_trips_a_snapshot() {
        let (_io, store) = mem_store(1 << 20);
        for n in 0..5u8 {
            store.put(&key(n), "analyze/v2", &[n; 16]);
        }
        let mut snap = Vec::new();
        assert_eq!(store.export(&mut snap).expect("export"), 5);
        assert_eq!(&snap[..8], SNAP_MAGIC);

        let (_io2, fresh) = mem_store(1 << 20);
        assert_eq!(fresh.import(&mut snap.as_slice()).expect("import"), 5);
        assert_eq!(fresh.len(), 5);
        for n in 0..5u8 {
            assert_eq!(
                fresh.get(&key(n), "analyze/v2").as_deref(),
                Some(&[n; 16][..])
            );
        }
        // Exports are byte-stable: the imported store exports identically.
        let mut snap2 = Vec::new();
        fresh.export(&mut snap2).expect("export");
        assert_eq!(snap, snap2);
        // A damaged snapshot is an error, not a partial import.
        let mut damaged = snap.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x40;
        let (_io3, other) = mem_store(1 << 20);
        assert!(other.import(&mut damaged.as_slice()).is_err());
    }

    #[test]
    fn rotate_is_a_no_op_on_an_empty_active_segment() {
        let (_io, store) = mem_store(1 << 20);
        store.rotate();
        store.rotate();
        assert_eq!(store.stats().rotations, 0);
        store.put(&key(1), "f", b"x");
        store.commit().expect("commit");
        store.rotate();
        assert_eq!(store.stats().rotations, 1);
        store.put(&key(2), "f", b"y");
        store.commit().expect("commit");
        assert_eq!(store.stats().segments, 2);
        assert!(store.get(&key(1), "f").is_some());
        assert!(store.get(&key(2), "f").is_some());
    }
}
